"""Extension: zero-execution retrieval warm start vs the baseline model.

The cold-start question (ROADMAP; PAPERS.md 2503.03826's "zero-execution"
RAG tuning): a workload the tuner has *never executed* needs a first
configuration.  Rockhopper's baseline answer is a surrogate trained on
benchmark traces, scored over a candidate sweep.  The retrieval answer
skips the model: look up the nearest tuned history by workload embedding
(:mod:`repro.retrieval`) and start from the configuration it converged to.

Measured here as **first-observation regret** — the noiseless cost of the
very first configuration each path would run, relative to the best
configuration in the evaluated pool — on two cold-start scenarios:

1. **TPC-DS → TPC-H transfer**: corpora harvested from TPC-DS
   pre-recordings, targets drawn from TPC-H (disjoint benchmarks, the
   Fig.-12 setting sharpened to iteration zero).
2. **Customer population**: half a ``workloads.customer`` population forms
   the corpus; the unseen other half are the targets.

Also exercised end-to-end: the corpus travels through
``StorageManager``/``AutotuneBackend.fetch_warm_start``, so the reported
retrieval regrets come from the *service path* (telemetry-counted hits),
not a shortcut.  The acceptance bar: mean retrieval regret no worse than
the baseline model's on the transfer scenario.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config_space import ConfigSpace
from ..embedding.embedder import WorkloadEmbedder
from ..offline.baseline import default_baseline_model_factory
from ..retrieval import (
    RetrievalCorpus,
    corpus_from_table,
    probe_population,
    recommend_config,
)
from ..service.auth import SasTokenIssuer
from ..service.backend import AutotuneBackend
from ..service.storage import StorageManager
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import no_noise
from ..workloads.customer import generate_population
from ..workloads.tpch import tpch_plan
from .platform_v0 import build_v0_platform, platform_training_table
from .runner import ExperimentResult

__all__ = ["run"]


def _fit_baseline(table):
    model = default_baseline_model_factory()
    model.fit(table.X, table.y)
    return model


def _baseline_pick(model, embedding, candidates, data_size: float) -> int:
    rows = np.hstack([
        np.tile(embedding, (len(candidates), 1)),
        candidates,
        np.full((len(candidates), 1), data_size),
    ])
    return int(np.argmin(model.predict(rows)))


def _regrets(
    simulator: SparkSimulator,
    plan,
    space: ConfigSpace,
    scale: float,
    picks: Dict[str, Dict[str, float]],
    candidates: np.ndarray,
) -> Dict[str, float]:
    """First-observation regret of each pick vs the evaluated pool's best.

    The pool is the candidate sweep plus every pick, so the oracle is the
    best configuration any strategy *could* have chosen here and all
    regrets are >= 0.
    """
    times = simulator.true_time_batch(plan, candidates, space=space, data_scale=scale)
    pick_times = {
        name: simulator.true_time(plan, config, data_scale=scale)
        for name, config in picks.items()
    }
    oracle = min(float(np.min(times)), min(pick_times.values()))
    return {name: (t - oracle) / oracle for name, t in pick_times.items()}


def _serve_corpus(corpus: RetrievalCorpus, space: ConfigSpace, root: str):
    """Publish the corpus through the real storage/backend service path."""
    backend = AutotuneBackend(
        StorageManager(root), SasTokenIssuer("ext-retrieval"), space
    )
    backend.publish_retrieval_corpus(corpus)
    grant = backend.register_job("app-retrieval", "artifact-retrieval", "user-0")
    return backend, grant.model_read_token


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    n_source = 8 if quick else 16
    n_targets = 6 if quick else 14
    n_probe_configs = 24 if quick else 80
    n_candidates = 64 if quick else 128
    scale_factor = 10.0 if quick else 100.0
    pop_size = 8 if quick else 20

    space = query_level_space()
    embedder = WorkloadEmbedder()
    simulator = SparkSimulator(noise=no_noise(), seed=seed)
    rng = np.random.default_rng(seed)
    candidates = space.latin_hypercube(n_candidates, rng)

    result = ExperimentResult(
        name="ext_retrieval_warm_start",
        description=(
            "First-observation regret (noiseless cost of the first config "
            "each path would run, vs the best in the evaluated pool) for "
            "three cold-start strategies: ANN retrieval over tuned "
            "histories, the baseline surrogate over a candidate sweep, and "
            "Spark defaults.  Scenario 1 transfers TPC-DS corpora to TPC-H "
            "targets through the real backend service path; scenario 2 "
            "splits a customer population into corpus and unseen halves."
        ),
    )

    # -- scenario 1: TPC-DS corpus -> TPC-H targets --------------------------------
    platform = build_v0_platform(
        list(range(1, n_source + 1)), benchmark="tpcds",
        scale_factor=scale_factor, n_configs=n_probe_configs, seed=seed,
    )
    table = platform_training_table(platform, space)
    corpus = corpus_from_table(table, space, workload_prefix="tpcds")
    corpus.build_index("flat")
    baseline_model = _fit_baseline(table)

    regrets: Dict[str, List[float]] = {"retrieval": [], "baseline": [], "default": []}
    hits = 0
    with tempfile.TemporaryDirectory() as root:
        backend, token = _serve_corpus(corpus, space, root)
        for q in range(1, n_targets + 1):
            plan = tpch_plan(q, scale_factor)
            embedding = embedder.embed(plan)
            data_size = max(plan.total_leaf_cardinality, 1.0)
            suggestion = backend.fetch_warm_start(
                token, "user-0", plan.signature(), embedding, data_size=data_size
            )
            assert suggestion is not None and suggestion.source == "retrieval"
            hits += 1
            picks = {
                "retrieval": suggestion.config,
                "baseline": space.to_dict(candidates[_baseline_pick(
                    baseline_model, embedding, candidates, data_size
                )]),
                "default": space.default_dict(),
            }
            for name, value in _regrets(
                simulator, plan, space, 1.0, picks, candidates
            ).items():
                regrets[name].append(value)
        assert backend.retrieval_hits == hits

    for name, values in regrets.items():
        result.series[f"tpch_regret_{name}"] = np.array(values)
        result.scalars[f"tpch_mean_regret_{name}"] = float(np.mean(values))
    result.scalars["tpch_targets"] = float(n_targets)
    result.scalars["backend_retrieval_hits"] = float(hits)

    # -- scenario 2: customer population, unseen half ------------------------------
    population = generate_population(pop_size, seed=seed)
    half = pop_size // 2
    pop_corpus, pop_table = probe_population(
        population[:half], space, n_configs=n_probe_configs, seed=seed,
        embedder=embedder,
    )
    pop_corpus.build_index("flat")
    pop_model = _fit_baseline(pop_table)

    pop_regrets: Dict[str, List[float]] = {
        "retrieval": [], "baseline": [], "default": []
    }
    for workload in population[half:]:
        for plan in workload.plans:
            embedding = embedder.embed(plan)
            data_size = max(plan.total_leaf_cardinality, 1.0) * workload.scale
            neighbors = pop_corpus.search(embedding, k=3)
            picks = {
                "retrieval": recommend_config(neighbors, space, data_size=data_size),
                "baseline": space.to_dict(candidates[_baseline_pick(
                    pop_model, embedding, candidates, data_size
                )]),
                "default": space.default_dict(),
            }
            for name, value in _regrets(
                simulator, plan, space, workload.scale, picks, candidates
            ).items():
                pop_regrets[name].append(value)

    for name, values in pop_regrets.items():
        result.series[f"population_regret_{name}"] = np.array(values)
        result.scalars[f"population_mean_regret_{name}"] = float(np.mean(values))
    result.scalars["population_targets"] = float(len(pop_regrets["retrieval"]))

    result.notes.append(
        "Expected shape: both warm starts beat the defaults by a wide "
        "margin; retrieval matches or beats the baseline model at zero "
        "model evaluations (mean TPC-H regret no worse — the acceptance "
        "bar the bench asserts)."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
