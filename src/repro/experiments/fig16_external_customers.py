"""Figure 16: external-customer speed-up distribution + guardrail stats.

From the public-preview analysis (Sec. 6.3): a population of recurring
query signatures tuned with conservative guardrails; "the total execution
time improves by approximately 20%"; a small pathological tail (huge
variance or config-unrelated regressions) exists, and "with further
iterations, the guardrail mechanism automatically disables autotuning for
such queries."  The paper counts 416 signatures, 73 of which kept autotuning
through all iterations under extremely conservative settings.

We reproduce the population-level shape: the speed-up distribution, the
total-time improvement, and the guardrail's disable behavior concentrated
on pathological workloads.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.guardrail import Guardrail
from ..workloads.customer import generate_population
from .fig15_internal_customers import tune_workload
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_workloads = 16 if quick else 90
    n_iterations = 18 if quick else 50
    guardrail_min = 8 if quick else 30
    population = generate_population(
        n_workloads, seed=seed + 1, pathological_fraction=0.10,
        base_noise=(0.2, 0.6),
    )

    def guardrail_factory() -> Guardrail:
        return Guardrail(min_iterations=guardrail_min, threshold=0.15, patience=2)

    def tune_one(indexed_workload) -> dict:
        i, workload = indexed_workload
        return tune_workload(
            workload, n_iterations, seed=seed * 11 + i,
            guardrail_factory=guardrail_factory,
        )

    per_workload = parallel_map(
        tune_one, list(enumerate(population)), n_workers=n_workers
    )
    speedups: List[float] = [s["speedup_pct"] for s in per_workload]
    disabled_flags: List[bool] = [s["disabled"] for s in per_workload]
    pathological_flags: List[bool] = [
        w.pathology is not None for w in population
    ]

    speedups_arr = np.array(speedups)
    disabled = np.array(disabled_flags)
    pathological = np.array(pathological_flags)

    result = ExperimentResult(
        name="fig16_external_customers",
        description=(
            "Speed-up distribution across external-customer recurring "
            "workloads with the production guardrail enabled."
        ),
        series={"speedup_pct_sorted": np.sort(speedups_arr)},
    )
    result.scalars["n_workloads"] = float(n_workloads)
    result.scalars["mean_speedup_pct"] = float(speedups_arr.mean())
    result.scalars["median_speedup_pct"] = float(np.median(speedups_arr))
    result.scalars["n_disabled_by_guardrail"] = float(disabled.sum())
    result.scalars["n_never_disabled"] = float((~disabled).sum())
    result.scalars["n_pathological"] = float(pathological.sum())
    if pathological.any():
        result.scalars["disable_rate_pathological"] = float(
            disabled[pathological].mean()
        )
    if (~pathological).any():
        result.scalars["disable_rate_healthy"] = float(disabled[~pathological].mean())
    result.scalars["fraction_regressed_over_30pct"] = float(
        np.mean(speedups_arr < -30.0)
    )
    result.notes.append(
        "Expected shape: overall mean speed-up around the high teens to 20%; "
        "guardrail disables concentrate on pathological workloads; at most a "
        "tiny fraction regress >30% (paper attributes those to external "
        "factors)."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
