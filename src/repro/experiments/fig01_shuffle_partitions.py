"""Figure 1: execution time vs ``spark.sql.shuffle.partitions`` per query.

"Varying this parameter can significantly alter execution times, with each
query reaching peak efficiency under different settings."  We sweep the knob
over a log grid for several TPC-DS queries (all other knobs at defaults) and
report the per-query response curves and their distinct optima.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..sparksim.configs import SHUFFLE_PARTITIONS, query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import no_noise
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]

# Chosen for diverse per-query optima (≈29 / 13 / 63 / 8 partitions at
# SF=100) and strong knob sensitivity (3-10x worst/best ratios).
DEFAULT_QUERIES = (2, 35, 50, 95)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Optional[Sequence[int]] = None,
    scale_factor: float = 100.0,
    n_workers=None,
) -> ExperimentResult:
    """Sweep shuffle partitions for several queries on the noiseless simulator."""
    query_ids = tuple(query_ids or DEFAULT_QUERIES)
    n_points = 12 if quick else 30
    grid = np.unique(
        np.logspace(
            np.log10(SHUFFLE_PARTITIONS.low),
            np.log10(SHUFFLE_PARTITIONS.high),
            n_points,
        ).round()
    )
    space = query_level_space()
    simulator = SparkSimulator(noise=no_noise(), seed=seed)
    result = ExperimentResult(
        name="fig01_shuffle_partitions",
        description=(
            "Execution time vs spark.sql.shuffle.partitions (other knobs at "
            "defaults); each query has a distinct optimum."
        ),
    )
    result.series["partitions_grid"] = grid

    def sweep(qid: int) -> np.ndarray:
        plan = tpcds_plan(qid, scale_factor)
        base = space.default_dict()
        configs = [
            {**base, "spark.sql.shuffle.partitions": float(partitions)}
            for partitions in grid
        ]
        return simulator.true_time_batch(plan, configs)

    sweeps = parallel_map(sweep, query_ids, n_workers=n_workers)
    optima: List[float] = []
    for qid, times in zip(query_ids, sweeps):
        label = f"tpcds_q{qid:02d}_seconds"
        result.series[label] = times
        best = float(grid[int(np.argmin(times))])
        optima.append(best)
        result.scalars[f"tpcds_q{qid:02d}_best_partitions"] = best
        result.scalars[f"tpcds_q{qid:02d}_range_ratio"] = float(times.max() / times.min())
    result.scalars["n_distinct_optima"] = float(len(set(optima)))
    result.notes.append(
        "range_ratio = worst/best time over the sweep; the paper's point is "
        "that the optima differ across queries (n_distinct_optima > 1)."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
