"""Fault injectors: decorators around the real service components.

Each injector wraps an existing component (backend, storage, simulator,
model factory) and consults a :class:`~repro.faults.plan.FaultPlan` at every
injection point — there are no forked code paths, so a chaos run exercises
exactly the production logic plus scheduled failures.

Injection-point map (one :class:`FaultKind` opportunity per call):

====================  =========================================================
``FaultyBackend``     ``submit_events`` → TOKEN_EXPIRY, STORAGE_WRITE_ERROR,
                      DROP_EVENT (partial write + error), DUPLICATE_EVENT
                      (at-least-once re-delivery), REORDER_EVENTS;
                      ``submit_app_end`` → TOKEN_EXPIRY, DUPLICATE_EVENT;
                      ``fetch_model`` → TOKEN_EXPIRY, STORAGE_READ_ERROR,
                      MODEL_CORRUPTION;
                      ``fetch_warm_start`` → TOKEN_EXPIRY, STORAGE_READ_ERROR.
``FaultyStorage``     ``append_events``/``write_model``/
                      ``write_retrieval_corpus`` → STORAGE_WRITE_ERROR;
                      ``read_model``/``read_*_events``/
                      ``read_retrieval_corpus`` → STORAGE_READ_ERROR
                      (+ MODEL_CORRUPTION on the corpus payload).
``FaultySimulator``   ``run``/``run_batch`` (one opportunity per result, in
                      batch order)/``run_to_event`` → LATENCY_SPIKE
                      (multiplies the *observed* time by the spec magnitude;
                      true time is untouched, mirroring an Eq.-8 spike).
``flaky_model_factory``  ``fit`` → TRAIN_ERROR.
``FaultyShardedService``  ``drain_all`` → SHARD_OUTAGE (one opportunity per
                      drain; kills a deterministically chosen shard via
                      ``fail_shard`` — ring removal, session failover, and
                      requeue run the production path);
                      ``submit`` → QUEUE_OVERFLOW (the request is shed with
                      a synthetic ``queue_full`` verdict before admission).
====================  =========================================================
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

import numpy as np

from ..service.auth import SasToken, TokenError
from ..service.resilience import TransientServiceError
from ..sparksim.events import AppEndEvent, QueryEndEvent
from .plan import FaultKind, FaultPlan

__all__ = [
    "FaultyBackend",
    "FaultyStorage",
    "FaultySimulator",
    "FaultyShardedService",
    "flaky_model_factory",
    "corrupt_payload",
]


def corrupt_payload(payload: str, rng: np.random.Generator) -> str:
    """Deterministically mangle a serialized-model payload."""
    mode = int(rng.integers(0, 3))
    if mode == 0:
        return payload[: max(len(payload) // 2, 1)]          # truncation
    if mode == 1:
        return "{" + payload[1:][::-1]                       # scrambled body
    return '{"__model__": "corrupted", "weights": "\\x00"}'  # wrong schema


class _Delegate:
    """Forward unknown attributes to the wrapped component."""

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan

    def __getattr__(self, name):
        return getattr(self.inner, name)


class FaultyBackend(_Delegate):
    """Wraps an :class:`~repro.service.backend.AutotuneBackend` with a flaky
    transport: the client talks to this exactly as to the real backend."""

    def register_job(self, app_id: str, artifact_id: str, user_id: str):
        return self.inner.register_job(app_id, artifact_id, user_id)

    def submit_events(
        self, token: SasToken, app_id: str, artifact_id: str,
        events: Sequence[QueryEndEvent],
    ) -> int:
        if self.plan.should_fire(FaultKind.TOKEN_EXPIRY):
            raise TokenError("injected: event-write token rejected")
        if self.plan.should_fire(FaultKind.STORAGE_WRITE_ERROR):
            raise TransientServiceError("injected: event upload failed")
        batch = list(events)
        if batch and self.plan.should_fire(FaultKind.REORDER_EVENTS):
            order = self.plan.rng_for(FaultKind.REORDER_EVENTS).permutation(len(batch))
            batch = [batch[i] for i in order]
        if batch and self.plan.should_fire(FaultKind.DUPLICATE_EVENT):
            # At-least-once transport: the whole batch is delivered twice.
            batch = batch + batch
        if batch and self.plan.should_fire(FaultKind.DROP_EVENT):
            # Partial write: a prefix lands, then the connection dies.  The
            # caller sees an error and must retry the full batch; the
            # backend's sequence dedup makes that retry exactly-once.
            rng = self.plan.rng_for(FaultKind.DROP_EVENT)
            kept = int(rng.integers(0, len(batch)))
            if kept:
                self.inner.submit_events(token, app_id, artifact_id, batch[:kept])
            raise TransientServiceError(
                f"injected: transport failed after {kept}/{len(batch)} events"
            )
        return self.inner.submit_events(token, app_id, artifact_id, batch)

    def submit_app_end(self, token: SasToken, event: AppEndEvent) -> None:
        if self.plan.should_fire(FaultKind.TOKEN_EXPIRY):
            raise TokenError("injected: event-write token rejected")
        if self.plan.should_fire(FaultKind.DUPLICATE_EVENT):
            self.inner.submit_app_end(token, event)
        self.inner.submit_app_end(token, event)

    def fetch_model(
        self, token: SasToken, user_id: str, query_signature: str
    ) -> Optional[str]:
        if self.plan.should_fire(FaultKind.TOKEN_EXPIRY):
            raise TokenError("injected: model-read token rejected")
        if self.plan.should_fire(FaultKind.STORAGE_READ_ERROR):
            raise TransientServiceError("injected: model fetch failed")
        payload = self.inner.fetch_model(token, user_id, query_signature)
        if payload is not None and self.plan.should_fire(FaultKind.MODEL_CORRUPTION):
            return corrupt_payload(payload, self.plan.rng_for(FaultKind.MODEL_CORRUPTION))
        return payload

    def fetch_warm_start(self, token, user_id, query_signature, embedding, **kwargs):
        if self.plan.should_fire(FaultKind.TOKEN_EXPIRY):
            raise TokenError("injected: model-read token rejected")
        if self.plan.should_fire(FaultKind.STORAGE_READ_ERROR):
            raise TransientServiceError("injected: warm-start fetch failed")
        return self.inner.fetch_warm_start(
            token, user_id, query_signature, embedding, **kwargs
        )


class FaultyStorage(_Delegate):
    """Wraps a :class:`~repro.service.storage.StorageManager` with flaky IO —
    for exercising the *backend's* tolerance of its own storage tier."""

    def append_events(self, app_id, artifact_id, events) -> None:
        if self.plan.should_fire(FaultKind.STORAGE_WRITE_ERROR):
            raise TransientServiceError("injected: event append failed")
        self.inner.append_events(app_id, artifact_id, events)

    def write_model(self, user_id, query_signature, payload):
        if self.plan.should_fire(FaultKind.STORAGE_WRITE_ERROR):
            raise TransientServiceError("injected: model write failed")
        return self.inner.write_model(user_id, query_signature, payload)

    def read_model(self, user_id, query_signature):
        if self.plan.should_fire(FaultKind.STORAGE_READ_ERROR):
            raise TransientServiceError("injected: model read failed")
        return self.inner.read_model(user_id, query_signature)

    def read_app_events(self, app_id):
        if self.plan.should_fire(FaultKind.STORAGE_READ_ERROR):
            raise TransientServiceError("injected: event read failed")
        return self.inner.read_app_events(app_id)

    def read_artifact_events(self, artifact_id):
        if self.plan.should_fire(FaultKind.STORAGE_READ_ERROR):
            raise TransientServiceError("injected: event read failed")
        return self.inner.read_artifact_events(artifact_id)

    def write_retrieval_corpus(self, payload):
        if self.plan.should_fire(FaultKind.STORAGE_WRITE_ERROR):
            raise TransientServiceError("injected: corpus write failed")
        return self.inner.write_retrieval_corpus(payload)

    def read_retrieval_corpus(self):
        if self.plan.should_fire(FaultKind.STORAGE_READ_ERROR):
            raise TransientServiceError("injected: corpus read failed")
        payload = self.inner.read_retrieval_corpus()
        if payload is not None and self.plan.should_fire(FaultKind.MODEL_CORRUPTION):
            return corrupt_payload(payload, self.plan.rng_for(FaultKind.MODEL_CORRUPTION))
        return payload


class FaultySimulator(_Delegate):
    """Wraps a :class:`~repro.sparksim.executor.SparkSimulator`, injecting
    Eq.-8-style latency spikes into *observed* durations only."""

    def run(self, plan, config, data_scale: float = 1.0):
        result = self.inner.run(plan, config, data_scale)
        if self.plan.should_fire(FaultKind.LATENCY_SPIKE):
            result = replace(
                result,
                elapsed_seconds=result.elapsed_seconds
                * self.plan.magnitude(FaultKind.LATENCY_SPIKE),
            )
        return result

    def observe_true(self, true_seconds: float) -> float:
        # Mirror run(): the inner simulator draws the noise first, then one
        # LATENCY_SPIKE opportunity multiplies the observed time — so a
        # lock-step engine feeding precomputed true times through here sees
        # the same per-session fault stream as sequential run() calls.
        observed = self.inner.observe_true(true_seconds)
        if self.plan.should_fire(FaultKind.LATENCY_SPIKE):
            observed = observed * self.plan.magnitude(FaultKind.LATENCY_SPIKE)
        return observed

    def run_batch(self, plan, configs, *, space=None, data_scale: float = 1.0):
        # The fault schedule is consulted once per result, in batch order, so
        # a batch of N sees exactly the spikes that N sequential run() calls
        # would (fault-stream equivalence).
        results = self.inner.run_batch(
            plan, configs, space=space, data_scale=data_scale
        )
        out = []
        for result in results:
            if self.plan.should_fire(FaultKind.LATENCY_SPIKE):
                result = replace(
                    result,
                    elapsed_seconds=result.elapsed_seconds
                    * self.plan.magnitude(FaultKind.LATENCY_SPIKE),
                )
            out.append(result)
        return out

    def run_to_event(self, plan, config, **kwargs) -> QueryEndEvent:
        event = self.inner.run_to_event(plan, config, **kwargs)
        if self.plan.should_fire(FaultKind.LATENCY_SPIKE):
            event = replace(
                event,
                duration_seconds=event.duration_seconds
                * self.plan.magnitude(FaultKind.LATENCY_SPIKE),
            )
        return event

    def true_time(self, plan, config, data_scale: float = 1.0) -> float:
        return self.inner.true_time(plan, config, data_scale)

    def true_time_batch(
        self, plan, configs, *, space=None, data_scale: float = 1.0,
        data_scales=None,
    ):
        # True times are never spiked (the injection targets observations).
        return self.inner.true_time_batch(
            plan, configs, space=space, data_scale=data_scale,
            data_scales=data_scales,
        )


class FaultyShardedService(_Delegate):
    """Wraps a :class:`~repro.service.sharded.ShardedAutotuneService` with
    scheduled shard outages and forced queue overflows.

    * ``SHARD_OUTAGE`` — one opportunity per :meth:`drain_all`.  On firing,
      the victim shard (chosen deterministically from the kind's payload
      RNG) is killed through the service's own ``fail_shard``, so the ring
      removal, live-session failover, and requeue of its backlog are the
      production code path, not a shortcut.  The last shard is never
      killed (the service forbids it).
    * ``QUEUE_OVERFLOW`` — one opportunity per :meth:`submit`.  On firing,
      the request is rejected with a synthetic ``queue_full`` shed verdict
      *before* admission, exercising every caller's shed-handling path
      even when the real queues have headroom.
    """

    def submit(self, request):
        from ..service.admission import ShedVerdict

        if self.plan.should_fire(FaultKind.QUEUE_OVERFLOW):
            verdict = ShedVerdict(False, "queue_full", retry_after=0.05)
            self.inner.shed += 1
            self.inner.submitted += 1
            return verdict
        return self.inner.submit(request)

    def drain_all(self, parallel: bool = False):
        if self.plan.should_fire(FaultKind.SHARD_OUTAGE) and self.inner.n_shards > 1:
            rng = self.plan.rng_for(FaultKind.SHARD_OUTAGE)
            shard_ids = self.inner.shard_ids
            victim = shard_ids[int(rng.integers(0, len(shard_ids)))]
            self.inner.fail_shard(victim)
        return self.inner.drain_all(parallel=parallel)

    def call(self, request):
        from ..service.admission import ShedError

        verdict = self.submit(request)
        if not verdict.accepted:
            raise ShedError(verdict)
        self.inner.drain_shard(request.shard_id)
        return request.result


def flaky_model_factory(
    inner_factory: Callable[[], object], plan: FaultPlan
) -> Callable[[], object]:
    """A model factory whose products fail to ``fit`` on schedule.

    The returned models are the *real* estimator instances (so trained
    models still serialize through ``ml.serialize``); only ``fit`` is
    shadowed with the scheduled :class:`TransientServiceError`.
    """

    def factory():
        model = inner_factory()
        original_fit = model.fit

        def fit(X, y):
            if plan.should_fire(FaultKind.TRAIN_ERROR):
                raise TransientServiceError("injected: surrogate training failed")
            return original_fit(X, y)

        model.fit = fit
        return model

    return factory
