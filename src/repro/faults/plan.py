"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` decides, for every *opportunity* (one call through an
injection point), whether a fault of a given :class:`FaultKind` fires.  Two
properties make chaos runs reproducible and debuggable:

* **Determinism** — decisions are a pure function of ``(seed, kind,
  opportunity index)``.  Each kind draws from its own generator, so adding
  an injection point for one kind never shifts another kind's schedule.
* **Auditability** — every fired fault is appended to :attr:`FaultPlan.log`
  with its kind and opportunity index, so a failing chaos test prints
  exactly which faults the run saw.

Faults fire either probabilistically (``rate`` per opportunity) or at
explicit opportunity indices (``at``), and can persist for ``duration``
consecutive opportunities — the paper's SAS-token *expiry storms* are a
``duration > 1`` schedule on :attr:`FaultKind.TOKEN_EXPIRY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(str, Enum):
    """The fault taxonomy (see docs/resilience.md)."""

    DROP_EVENT = "drop_event"              # partial event-batch write + error
    DUPLICATE_EVENT = "duplicate_event"    # at-least-once transport re-delivery
    REORDER_EVENTS = "reorder_events"      # batch arrives in shuffled order
    STORAGE_WRITE_ERROR = "storage_write_error"
    STORAGE_READ_ERROR = "storage_read_error"
    MODEL_CORRUPTION = "model_corruption"  # fetched payload is garbage
    TOKEN_EXPIRY = "token_expiry"          # SAS token rejected (storms supported)
    TRAIN_ERROR = "train_error"            # surrogate .fit() raises
    LATENCY_SPIKE = "latency_spike"        # Eq.-8-style observed-time spike
    # Appended after the kinds above on purpose: per-kind child seeds are
    # spawned in enum order, so appending keeps every older kind's fault
    # stream byte-for-byte stable (chaos runs replay identically).
    SHARD_OUTAGE = "shard_outage"          # a service shard dies mid-fleet
    QUEUE_OVERFLOW = "queue_overflow"      # ingress queue forced to shed


@dataclass(frozen=True)
class FaultSpec:
    """Schedule for one fault kind.

    Args:
        kind: which fault this spec schedules.
        rate: per-opportunity firing probability (0 disables random firing).
        at: explicit opportunity indices (0-based) that always fire.
        duration: consecutive opportunities a firing affects (storms).
        magnitude: fault-specific intensity — the observed-time multiplier
            for latency spikes, ignored by binary faults.
    """

    kind: FaultKind
    rate: float = 0.0
    at: Tuple[int, ...] = ()
    duration: int = 1
    magnitude: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be > 0")
        object.__setattr__(self, "at", tuple(sorted(set(self.at))))


@dataclass(frozen=True)
class FiredFault:
    """One audit-log entry: fault ``kind`` fired at opportunity ``index``."""

    kind: FaultKind
    index: int


class FaultPlan:
    """A deterministic schedule of faults across all injection points.

    Args:
        specs: the fault kinds to schedule (at most one spec per kind).
        seed: master seed; per-kind child generators are spawned from it so
            kinds are mutually independent.

    Injectors call :meth:`should_fire` once per opportunity; helper
    accessors (:meth:`magnitude`, :meth:`rng_for`) expose the per-kind
    intensity and a dedicated generator for fault *payloads* (e.g. the
    shuffle permutation of a reordered batch) so payload randomness is as
    deterministic as the firing schedule.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self._specs: Dict[FaultKind, FaultSpec] = {}
        for spec in specs:
            if spec.kind in self._specs:
                raise ValueError(f"duplicate spec for {spec.kind.value}")
            self._specs[spec.kind] = spec
        self.seed = int(seed)
        # One child seed per *possible* kind (stable enum order), so the
        # stream a kind sees does not depend on which other kinds are
        # scheduled in this plan.
        children = np.random.SeedSequence(self.seed).spawn(len(FaultKind))
        self._rng: Dict[FaultKind, np.random.Generator] = {
            kind: np.random.default_rng(children[i])
            for i, kind in enumerate(FaultKind)
        }
        # Payload generators, derived (not shared) so payload draws never
        # consume from the firing stream.
        payload_children = np.random.SeedSequence(self.seed + 0x9E3779B9).spawn(len(FaultKind))
        self._payload_rng: Dict[FaultKind, np.random.Generator] = {
            kind: np.random.default_rng(payload_children[i])
            for i, kind in enumerate(FaultKind)
        }
        self._counters: Dict[FaultKind, int] = {kind: 0 for kind in FaultKind}
        self._storm_until: Dict[FaultKind, int] = {}
        self.log: List[FiredFault] = []

    def spec(self, kind: FaultKind) -> Optional[FaultSpec]:
        return self._specs.get(kind)

    def opportunities(self, kind: FaultKind) -> int:
        """How many injection opportunities this kind has seen."""
        return self._counters[kind]

    def fired(self, kind: Optional[FaultKind] = None) -> int:
        """How many faults have fired (optionally for one kind)."""
        if kind is None:
            return len(self.log)
        return sum(1 for f in self.log if f.kind is kind)

    def magnitude(self, kind: FaultKind) -> float:
        spec = self._specs.get(kind)
        return spec.magnitude if spec is not None else 1.0

    def rng_for(self, kind: FaultKind) -> np.random.Generator:
        """The payload generator for ``kind`` (shuffles, corruption bytes)."""
        return self._payload_rng[kind]

    def should_fire(self, kind: FaultKind) -> bool:
        """Advance ``kind``'s opportunity counter and decide firing.

        The probabilistic draw is consumed on *every* opportunity (even
        inside a storm or on an explicit ``at`` hit), so the decision at
        opportunity ``n`` never depends on earlier outcomes — only on
        ``(seed, kind, n)``.
        """
        n = self._counters[kind]
        self._counters[kind] = n + 1
        spec = self._specs.get(kind)
        draw = float(self._rng[kind].uniform()) if spec is not None else 1.0
        if spec is None:
            return False
        in_storm = n < self._storm_until.get(kind, 0)
        scheduled = n in spec.at
        random_hit = spec.rate > 0.0 and draw < spec.rate
        fire = in_storm or scheduled or random_hit
        if fire:
            if not in_storm and spec.duration > 1:
                self._storm_until[kind] = n + spec.duration
            self.log.append(FiredFault(kind=kind, index=n))
        return fire

    def summary(self) -> Dict[str, int]:
        """Fired-fault counts by kind (for test output and dashboards)."""
        out: Dict[str, int] = {}
        for f in self.log:
            out[f.kind.value] = out.get(f.kind.value, 0) + 1
        return out
