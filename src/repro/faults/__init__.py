"""Deterministic fault injection for the service layer (chaos harness).

``repro.faults`` schedules failures — dropped/duplicated/reordered events,
flaky storage, corrupt model payloads, SAS-token expiry storms, surrogate
training exceptions, Eq.-8-style latency spikes — as a seeded
:class:`FaultPlan`, and injects them through decorators around the real
service components.  See ``docs/resilience.md`` for the taxonomy and the
matching resilience mechanisms in :mod:`repro.service`.
"""

from .injectors import (
    FaultyBackend,
    FaultySimulator,
    FaultyStorage,
    corrupt_payload,
    flaky_model_factory,
)
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyBackend",
    "FaultySimulator",
    "FaultyStorage",
    "corrupt_payload",
    "flaky_model_factory",
]
