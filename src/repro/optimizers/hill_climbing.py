"""Coordinate-descent hill climbing [26] — a greedy-search baseline.

Tries ± step moves on one coordinate at a time (round-robin), accepting a
move iff the (noisy) observation improves on the incumbent; the step shrinks
after a full unproductive cycle.  Like FLOW2 it "relies solely on the last
two rounds of observations" (Sec. 4.3), which is exactly what makes it
fragile under production noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config_space import ConfigSpace
from ..core.observation import Observation
from .base import Optimizer

__all__ = ["HillClimbing"]


class HillClimbing(Optimizer):
    """± coordinate steps with shrink-on-stall.

    Args:
        space: configuration space.
        step_size: initial per-coordinate step (fraction of normalized span).
        min_step: step floor.
        start: internal starting vector (default: space default).
        seed: RNG seed (used only to randomize coordinate order).
    """

    def __init__(
        self,
        space: ConfigSpace,
        step_size: float = 0.1,
        min_step: float = 0.005,
        start: Optional[np.ndarray] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(space, window_size=2)
        if not 0 < min_step <= step_size:
            raise ValueError("need 0 < min_step <= step_size")
        self.step_size = step_size
        self.min_step = min_step
        rng = np.random.default_rng(seed)
        self._coord_order = rng.permutation(space.dim)
        start_vec = space.default_vector() if start is None else np.asarray(start, float)
        self._incumbent = space.normalize(space.clip(start_vec))
        self._incumbent_cost: Optional[float] = None
        self._move_index = 0            # 2·dim moves per cycle (+ and − per coord)
        self._improved_this_cycle = False
        self._pending: Optional[np.ndarray] = None

    def _current_move(self) -> np.ndarray:
        k = self._move_index % (2 * self.space.dim)
        coord = int(self._coord_order[k // 2])
        sign = 1.0 if k % 2 == 0 else -1.0
        delta = np.zeros(self.space.dim)
        delta[coord] = sign * self.step_size
        return delta

    def suggest(self, data_size=None, embedding=None) -> np.ndarray:
        if self._incumbent_cost is None:
            self._pending = self._incumbent.copy()
        else:
            self._pending = np.clip(self._incumbent + self._current_move(), 0.0, 1.0)
        return self.space.denormalize(self._pending)

    def observe(self, obs: Observation) -> None:
        super().observe(obs)
        cost = obs.performance
        unit = self.space.normalize(obs.config)
        if self._incumbent_cost is None:
            self._incumbent_cost = cost
            self._incumbent = unit
            return
        if cost < self._incumbent_cost:
            self._incumbent = unit
            self._incumbent_cost = cost
            self._improved_this_cycle = True
        self._move_index += 1
        if self._move_index % (2 * self.space.dim) == 0:
            if not self._improved_this_cycle:
                self.step_size = max(self.step_size * 0.5, self.min_step)
            self._improved_this_cycle = False

    @property
    def incumbent(self) -> np.ndarray:
        return self.space.denormalize(self._incumbent)
