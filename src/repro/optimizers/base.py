"""Re-export of the shared :class:`Optimizer` interface.

The class lives in :mod:`repro.core.optimizer_base` (the Centroid Learning
implementation subclasses it, and keeping it in ``core`` avoids a circular
package dependency); baselines import it from here.
"""

from ..core.optimizer_base import Optimizer

__all__ = ["Optimizer"]
