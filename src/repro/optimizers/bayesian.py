"""Vanilla Bayesian Optimization — the paper's primary baseline (Fig. 2a).

A GP surrogate is fit on ``config → performance`` observations; the next
configuration maximizes Expected Improvement over a random candidate pool
spanning the whole space.  This is the "vanilla Bayesian Optimization"
configuration whose convergence collapses under Eq.-8 noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config_space import ConfigSpace
from ..ml.acquisition import AcquisitionFunction, ExpectedImprovement
from ..ml.gp import GaussianProcessRegressor
from .base import Optimizer

__all__ = ["BayesianOptimization"]


class BayesianOptimization(Optimizer):
    """GP + acquisition-function search over the full space.

    Args:
        space: configuration space.
        n_init: random (Latin hypercube) initial designs before the GP kicks in.
        n_candidates: random candidate pool size per suggestion.
        acquisition: acquisition function (default EI).
        model: the GP surrogate instance (persisted across iterations so that
            tuned kernel hyperparameters carry over).
        refit_hypers_every: re-optimize kernel hyperparameters every this
            many iterations (refits of the GP itself happen every iteration).
        max_train_points: cap on GP training-set size — the most recent
            observations are kept (O(n³) fits stay tractable on long runs).
        normalize_inputs: work on the unit cube (recommended).
        seed: RNG seed.
    """

    def __init__(
        self,
        space: ConfigSpace,
        n_init: int = 5,
        n_candidates: int = 256,
        acquisition: Optional[AcquisitionFunction] = None,
        model: Optional[GaussianProcessRegressor] = None,
        refit_hypers_every: int = 10,
        max_train_points: int = 150,
        normalize_inputs: bool = True,
        seed: Optional[int] = None,
    ):
        super().__init__(space)
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        if refit_hypers_every < 1:
            raise ValueError("refit_hypers_every must be >= 1")
        if max_train_points < n_init:
            raise ValueError("max_train_points must be >= n_init")
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.acquisition = acquisition or ExpectedImprovement()
        self.refit_hypers_every = refit_hypers_every
        self.max_train_points = max_train_points
        self._model = model or GaussianProcessRegressor(
            noise=1e-2, optimize_hypers=True, n_restarts=1, seed=seed
        )
        self.normalize_inputs = normalize_inputs
        self._rng = np.random.default_rng(seed)
        self._init_designs = None
        # Incremental-fit bookkeeping: the history index the current GP fit
        # starts at (None = no fit yet).  While the training window only
        # *grows*, new observations are absorbed with O(n²) rank-1 updates;
        # hyperparameter cadence or a sliding window forces a full refit.
        self._fitted_start: Optional[int] = None

    def _features(self, vectors: np.ndarray) -> np.ndarray:
        return self.space.normalize(vectors) if self.normalize_inputs else vectors

    def suggest(self, data_size=None, embedding=None) -> np.ndarray:
        t = self.iteration
        if t < self.n_init:
            if self._init_designs is None:
                self._init_designs = self.space.latin_hypercube(self.n_init, self._rng)
            return self._init_designs[t]

        full_history = self.observations.history
        start = max(0, len(full_history) - self.max_train_points)
        history = full_history[start:]
        X = np.array([o.config for o in history])
        y = np.array([o.performance for o in history])
        features = self._features(X)
        # Hyperparameters are re-tuned periodically; in between, the GP
        # absorbs the new observations with rank-1 Cholesky updates (exact
        # for fixed hyperparameters, with drift/numerical fallbacks inside
        # the model).
        hyper_refit_due = (t - self.n_init) % self.refit_hypers_every == 0
        fitted_n = getattr(self._model, "n_observations", 0)
        incremental = (
            not hyper_refit_due
            and self._fitted_start == start
            and 0 < fitted_n <= len(history)
            and hasattr(self._model, "update")
        )
        if incremental:
            for i in range(fitted_n, len(history)):
                self._model.update(features[i : i + 1], float(y[i]))
        else:
            self._model.optimize_hypers = hyper_refit_due
            self._model.fit(features, y)
            self._fitted_start = start

        candidates = self.space.sample_vectors(self.n_candidates, self._rng)
        mean, std = self._model.predict_with_std(self._features(candidates))
        best = float(y.min())
        scores = self.acquisition(mean, std, best)
        return candidates[int(np.argmax(scores))]
