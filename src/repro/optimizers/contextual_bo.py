"""Contextual Bayesian Optimization (CBO) with workload-embedding context.

The surrogate follows Eq. 2: ``f([workload embedding, configs]) = perf``.
A warm-start dataset collected offline from benchmark workloads (Sec. 4.2)
can seed the model before any query-specific observation exists — the
transfer-learning setting of Fig. 12.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.config_space import ConfigSpace
from ..ml.acquisition import AcquisitionFunction, ExpectedImprovement
from ..ml.base import Regressor
from ..ml.forest import RandomForestRegressor
from .base import Optimizer

__all__ = ["ContextualBayesianOptimization"]


class ContextualBayesianOptimization(Optimizer):
    """BO whose surrogate sees ``[embedding, config, data_size]`` features.

    Args:
        space: configuration space.
        embedding_dim: length of the workload-embedding vectors.
        warm_start: optional ``(X, y)`` benchmark dataset with feature rows
            ``[embedding, config, data_size]`` — the offline baseline data.
        model_factory: surrogate constructor with ``predict_with_std``
            support (default: random forest, whose ensemble spread provides
            the uncertainty).
        n_candidates: candidate pool size per suggestion.
        acquisition: acquisition function (default EI).
        n_init: random designs before model-guided search *when no warm
            start is available* (with a warm start the model guides from
            iteration 0).
        seed: RNG seed.
    """

    def __init__(
        self,
        space: ConfigSpace,
        embedding_dim: int,
        warm_start: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        model_factory: Optional[Callable[[], Regressor]] = None,
        n_candidates: int = 256,
        acquisition: Optional[AcquisitionFunction] = None,
        n_init: int = 3,
        seed: Optional[int] = None,
    ):
        super().__init__(space)
        if embedding_dim < 0:
            raise ValueError("embedding_dim must be >= 0")
        self.embedding_dim = embedding_dim
        self.n_candidates = n_candidates
        self.n_init = n_init
        self.acquisition = acquisition or ExpectedImprovement()
        self._seed = seed
        self._model_factory = model_factory or (
            lambda: RandomForestRegressor(n_estimators=40, min_samples_leaf=2, seed=self._seed)
        )
        self._rng = np.random.default_rng(seed)
        # Incremental training-set assembly + model reuse: feature rows for
        # already-seen observations are built once, and the surrogate is
        # only refit when the observation history actually grew.
        self._history_rows: List[np.ndarray] = []
        self._history_targets: List[float] = []
        self._cached_model: Optional[Regressor] = None
        self._cached_n_obs: int = -1
        self._warm_X: Optional[np.ndarray] = None
        self._warm_y: Optional[np.ndarray] = None
        if warm_start is not None:
            X, y = warm_start
            X = np.asarray(X, dtype=float)
            y = np.asarray(y, dtype=float).ravel()
            expected = embedding_dim + space.dim + 1
            if X.ndim != 2 or X.shape[1] != expected:
                raise ValueError(
                    f"warm-start features must have {expected} columns "
                    f"([embedding({embedding_dim}), config({space.dim}), data_size]), "
                    f"got shape {X.shape}"
                )
            self._warm_X, self._warm_y = X, y

    # -- feature assembly ---------------------------------------------------------

    def _row(self, config: np.ndarray, data_size: float, embedding) -> np.ndarray:
        if self.embedding_dim == 0:
            emb = np.empty(0)
        elif embedding is None:
            emb = np.zeros(self.embedding_dim)
        else:
            emb = np.asarray(embedding, dtype=float)
            if emb.shape != (self.embedding_dim,):
                raise ValueError(
                    f"embedding has shape {emb.shape}, expected ({self.embedding_dim},)"
                )
        return np.concatenate([emb, config, [data_size]])

    def _training_data(self) -> Tuple[np.ndarray, np.ndarray]:
        rows, targets = [], []
        if self._warm_X is not None:
            rows.append(self._warm_X)
            targets.append(self._warm_y)
        history = self.observations.history
        # Assemble feature rows only for observations added since last call.
        for obs in history[len(self._history_rows):]:
            self._history_rows.append(self._row(obs.config, obs.data_size, obs.embedding))
            self._history_targets.append(obs.performance)
        if history:
            rows.append(np.array(self._history_rows))
            targets.append(np.array(self._history_targets))
        if not rows:
            raise RuntimeError("no training data available")
        return np.vstack(rows), np.concatenate(targets)

    @property
    def has_warm_start(self) -> bool:
        return self._warm_X is not None

    # -- ask ------------------------------------------------------------------------

    def suggest(self, data_size: Optional[float] = None, embedding=None) -> np.ndarray:
        data_size = 1.0 if data_size is None else float(data_size)
        if not self.has_warm_start and self.iteration < self.n_init:
            return self.space.sample_vector(self._rng)

        n_obs = len(self.observations.history)
        if self._cached_model is None or n_obs != self._cached_n_obs:
            X, y = self._training_data()
            model = self._model_factory()
            model.fit(X, y)
            self._cached_model = model
            self._cached_n_obs = n_obs
        model = self._cached_model

        candidates = self.space.sample_vectors(self.n_candidates, self._rng)
        rows = np.array([self._row(c, data_size, embedding) for c in candidates])
        if hasattr(model, "predict_with_std"):
            mean, std = model.predict_with_std(rows)
        else:
            mean = model.predict(rows)
            std = np.full(len(rows), 1e-9)
        history = self.observations.history
        if history:
            best = min(o.performance for o in history)
        else:
            best = float(np.min(self._warm_y))
        scores = self.acquisition(mean, std, float(best))
        return candidates[int(np.argmax(scores))]
