"""Contextual Bayesian Optimization (CBO) with workload-embedding context.

The surrogate follows Eq. 2: ``f([workload embedding, configs]) = perf``.
A warm-start dataset collected offline from benchmark workloads (Sec. 4.2)
can seed the model before any query-specific observation exists — the
transfer-learning setting of Fig. 12.

With a :class:`~repro.core.switch.TaskSwitchDetector` attached this becomes
the ATO ``contextBO_tsd`` shape: a detected regime change drops the
per-regime observation history (the surrogate stops averaging two regimes),
and an optional ``switch_refresh`` hook replaces the warm-start dataset
with one matched to the new regime — e.g. re-queried from the retrieval
corpus.  A :class:`~repro.core.switch.SafeExplorationGate` mirrors ATO's
``--safe_flag``: candidates predicted worse than the default configuration
by more than the bound never reach the acquisition argmax.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..core.config_space import ConfigSpace
from ..core.observation import Observation, ObservationWindow
from ..core.switch import SafeExplorationGate, TaskSwitchDetector
from ..ml.acquisition import AcquisitionFunction, ExpectedImprovement
from ..ml.base import Regressor
from ..ml.forest import RandomForestRegressor
from .base import Optimizer

__all__ = ["ContextualBayesianOptimization"]


class ContextualBayesianOptimization(Optimizer):
    """BO whose surrogate sees ``[embedding, config, data_size]`` features.

    Args:
        space: configuration space.
        embedding_dim: length of the workload-embedding vectors.
        warm_start: optional ``(X, y)`` benchmark dataset with feature rows
            ``[embedding, config, data_size]`` — the offline baseline data.
        model_factory: surrogate constructor with ``predict_with_std``
            support (default: random forest, whose ensemble spread provides
            the uncertainty).
        n_candidates: candidate pool size per suggestion.
        acquisition: acquisition function (default EI).
        n_init: random designs before model-guided search *when no warm
            start is available* (with a warm start the model guides from
            iteration 0).
        seed: RNG seed.
        switch_detector: optional task-switch detector; a detection drops
            the per-regime history (window, feature rows, cached model) and
            seeds the fresh window with the firing observation.  Without a
            warm start the ``n_init`` random phase restarts — a new regime
            warrants new exploration.
        switch_refresh: ``(Observation) -> Optional[(X, y)]`` consulted on
            each detection for a new-regime warm-start dataset (e.g. from
            the retrieval corpus); ``None``/failure keeps the current one.
        safe_gate: optional bounded-regret candidate gate over the
            surrogate's mean predictions.
    """

    def __init__(
        self,
        space: ConfigSpace,
        embedding_dim: int,
        warm_start: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        model_factory: Optional[Callable[[], Regressor]] = None,
        n_candidates: int = 256,
        acquisition: Optional[AcquisitionFunction] = None,
        n_init: int = 3,
        seed: Optional[int] = None,
        switch_detector: Optional[TaskSwitchDetector] = None,
        switch_refresh: Optional[Callable[[Observation], Optional[Tuple]]] = None,
        safe_gate: Optional[SafeExplorationGate] = None,
    ):
        super().__init__(space)
        if embedding_dim < 0:
            raise ValueError("embedding_dim must be >= 0")
        self.embedding_dim = embedding_dim
        self.n_candidates = n_candidates
        self.n_init = n_init
        self.acquisition = acquisition or ExpectedImprovement()
        self._seed = seed
        self._model_factory = model_factory or (
            lambda: RandomForestRegressor(n_estimators=40, min_samples_leaf=2, seed=self._seed)
        )
        self._rng = np.random.default_rng(seed)
        # Incremental training-set assembly + model reuse: feature rows for
        # already-seen observations are built once, and the surrogate is
        # only refit when the observation history actually grew.
        self._history_rows: List[np.ndarray] = []
        self._history_targets: List[float] = []
        self._cached_model: Optional[Regressor] = None
        self._cached_n_obs: int = -1
        self._warm_X: Optional[np.ndarray] = None
        self._warm_y: Optional[np.ndarray] = None
        self.switch_detector = switch_detector
        self.switch_refresh = switch_refresh
        self.safe_gate = safe_gate
        self.reanchor_count = 0
        if warm_start is not None:
            self._set_warm_start(warm_start)

    def _set_warm_start(self, warm_start: Tuple[np.ndarray, np.ndarray]) -> None:
        X, y = warm_start
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        expected = self.embedding_dim + self.space.dim + 1
        if X.ndim != 2 or X.shape[1] != expected:
            raise ValueError(
                f"warm-start features must have {expected} columns "
                f"([embedding({self.embedding_dim}), config({self.space.dim}), "
                f"data_size]), got shape {X.shape}"
            )
        self._warm_X, self._warm_y = X, y

    # -- feature assembly ---------------------------------------------------------

    def _row(self, config: np.ndarray, data_size: float, embedding) -> np.ndarray:
        if self.embedding_dim == 0:
            emb = np.empty(0)
        elif embedding is None:
            emb = np.zeros(self.embedding_dim)
        else:
            emb = np.asarray(embedding, dtype=float)
            if emb.shape != (self.embedding_dim,):
                raise ValueError(
                    f"embedding has shape {emb.shape}, expected ({self.embedding_dim},)"
                )
        return np.concatenate([emb, config, [data_size]])

    def _training_data(self) -> Tuple[np.ndarray, np.ndarray]:
        rows, targets = [], []
        if self._warm_X is not None:
            rows.append(self._warm_X)
            targets.append(self._warm_y)
        history = self.observations.history
        # Assemble feature rows only for observations added since last call.
        for obs in history[len(self._history_rows):]:
            self._history_rows.append(self._row(obs.config, obs.data_size, obs.embedding))
            self._history_targets.append(obs.performance)
        if history:
            rows.append(np.array(self._history_rows))
            targets.append(np.array(self._history_targets))
        if not rows:
            raise RuntimeError("no training data available")
        return np.vstack(rows), np.concatenate(targets)

    @property
    def has_warm_start(self) -> bool:
        return self._warm_X is not None

    # -- tell (with task-switch re-anchoring) ----------------------------------------

    def observe(self, obs) -> None:
        super().observe(obs)
        if self.switch_detector is None:
            return
        decision = self.switch_detector.update(
            obs.performance, obs.data_size,
            embedding=obs.embedding, iteration=obs.iteration,
        )
        if not decision.detected:
            return
        # Regime change: the history rows belong to the old regime and would
        # only mislead the surrogate.  Keep the firing observation — it is
        # the first evidence of the new regime.
        window = ObservationWindow(self.observations.window_size)
        window.append(obs)
        self.observations = window
        self._history_rows = []
        self._history_targets = []
        self._cached_model = None
        self._cached_n_obs = -1
        if self.switch_refresh is not None:
            try:
                refreshed = self.switch_refresh(obs)
            except Exception:  # noqa: BLE001 — a lost warm start beats a lost session
                telemetry.counter("switch.warm_start_failures").inc()
                refreshed = None
            if refreshed is not None:
                self._set_warm_start(refreshed)
                telemetry.counter("switch.warm_starts").inc()
        self.reanchor_count += 1
        telemetry.counter("switch.reanchors", reason=decision.reason).inc()
        telemetry.emit(
            "switch.reanchor",
            iteration=obs.iteration,
            reason=decision.reason,
            statistic=decision.statistic,
        )

    # -- ask ------------------------------------------------------------------------

    def suggest(self, data_size: Optional[float] = None, embedding=None) -> np.ndarray:
        data_size = 1.0 if data_size is None else float(data_size)
        if not self.has_warm_start and self.iteration < self.n_init:
            return self.space.sample_vector(self._rng)

        n_obs = len(self.observations.history)
        if self._cached_model is None or n_obs != self._cached_n_obs:
            X, y = self._training_data()
            model = self._model_factory()
            model.fit(X, y)
            self._cached_model = model
            self._cached_n_obs = n_obs
        model = self._cached_model

        candidates = self.space.sample_vectors(self.n_candidates, self._rng)
        rows = np.array([self._row(c, data_size, embedding) for c in candidates])
        if hasattr(model, "predict_with_std"):
            mean, std = model.predict_with_std(rows)
        else:
            mean = model.predict(rows)
            std = np.full(len(rows), 1e-9)
        history = self.observations.history
        if history:
            best = min(o.performance for o in history)
        else:
            best = float(np.min(self._warm_y))
        scores = self.acquisition(mean, std, float(best))
        if (
            self.safe_gate is not None
            and n_obs >= self.safe_gate.min_observations
        ):
            default_row = self._row(self.space.default_vector(), data_size, embedding)
            default_mean = float(model.predict(default_row[None, :])[0])
            mask = self.safe_gate.safe_mask(mean, default_mean)
            if not mask.any():
                telemetry.counter("safe.fallbacks").inc()
                return self.space.default_vector()
            scores = np.where(mask, scores, -np.inf)
        return candidates[int(np.argmax(scores))]
