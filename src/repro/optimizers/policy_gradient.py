"""A policy-gradient (REINFORCE-style) tuner — the RL baseline family.

The related work the paper positions against includes reinforcement-learning
tuners (CDBTune's actor-critic, OPPerTune's bandit/RL hybrid).  This
implementation keeps the canonical core: a diagonal-Gaussian policy over the
normalized configuration space, updated by the score-function estimator with
a moving-average baseline,

    μ ← μ + η · (b − r) · (x − μ) / σ²        (lower time = higher reward)

with σ annealed multiplicatively.  The moving baseline and scale-free
advantage make it markedly more noise-tolerant than last-two-rounds greedy
search — on stationary synthetic objectives it is competitive with Centroid
Learning's convergence.  What it lacks is everything else the production
setting needs: no warm start from benchmark models, no restriction of the
search to a safe neighborhood (every suggestion is a fresh Gaussian draw),
no data-size attribution for FIND_BEST-style anchoring, and no guardrail.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config_space import ConfigSpace
from ..core.observation import Observation
from .base import Optimizer

__all__ = ["PolicyGradientTuner"]


class PolicyGradientTuner(Optimizer):
    """REINFORCE over a diagonal Gaussian in the unit cube.

    Args:
        space: configuration space.
        learning_rate: η for the mean update.
        sigma: initial per-dimension policy std (normalized units).
        sigma_decay: multiplicative σ decay per observation.
        sigma_min: σ floor.
        baseline_momentum: moving-average factor for the reward baseline.
        start: initial policy mean (internal axes); defaults to the space
            default.
        seed: RNG seed.
    """

    def __init__(
        self,
        space: ConfigSpace,
        learning_rate: float = 0.1,
        sigma: float = 0.12,
        sigma_decay: float = 0.995,
        sigma_min: float = 0.02,
        start: Optional[np.ndarray] = None,
        baseline_momentum: float = 0.9,
        seed: Optional[int] = None,
    ):
        super().__init__(space, window_size=2)
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if not 0 < sigma_min <= sigma:
            raise ValueError("need 0 < sigma_min <= sigma")
        if not 0 < sigma_decay <= 1:
            raise ValueError("sigma_decay must be in (0, 1]")
        if not 0 <= baseline_momentum < 1:
            raise ValueError("baseline_momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.sigma = sigma
        self.sigma_decay = sigma_decay
        self.sigma_min = sigma_min
        self.baseline_momentum = baseline_momentum
        self._rng = np.random.default_rng(seed)
        start_vec = space.default_vector() if start is None else np.asarray(start, float)
        self._mean = space.normalize(space.clip(start_vec))
        self._baseline: Optional[float] = None

    @property
    def policy_mean(self) -> np.ndarray:
        """Current policy mean as an internal-axis vector."""
        return self.space.denormalize(self._mean)

    def suggest(self, data_size=None, embedding=None) -> np.ndarray:
        sample = self._mean + self._rng.normal(0.0, self.sigma, size=self.space.dim)
        return self.space.denormalize(np.clip(sample, 0.0, 1.0))

    def observe(self, obs: Observation) -> None:
        super().observe(obs)
        x = self.space.normalize(obs.config)
        r = obs.performance
        if self._baseline is None:
            self._baseline = r
            return
        # Advantage: positive when the run was faster than the baseline.
        advantage = self._baseline - r
        # Normalize by the baseline so the step size is scale-free.
        scale = max(abs(self._baseline), 1e-12)
        grad = advantage / scale * (x - self._mean) / (self.sigma ** 2)
        step = self.learning_rate * self.sigma ** 2 * grad  # = η·(adv/scale)·(x−μ)
        self._mean = np.clip(self._mean + step, 0.0, 1.0)
        self._baseline = (
            self.baseline_momentum * self._baseline
            + (1.0 - self.baseline_momentum) * r
        )
        self.sigma = max(self.sigma * self.sigma_decay, self.sigma_min)
