"""FLOW2 — frugal randomized direct search (Wu, Wang & Huang, AAAI'21).

The FLAML local-search baseline the paper evaluates in Fig. 2b.  FLOW2
maintains an incumbent, samples a random unit direction ``u`` in the
normalized space, and tries ``x + s·u``; on failure it tries the opposite
direction before drawing a new one.  The step size shrinks after ``2^d``
consecutive no-improvement proposals (lower-bounded), which gives FLOW2 its
convergence guarantee — and, with production-grade noise, its tendency to
wander, since a single lucky noisy observation moves the incumbent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config_space import ConfigSpace
from ..core.observation import Observation
from .base import Optimizer

__all__ = ["FLOW2"]


class FLOW2(Optimizer):
    """Randomized direct search on the unit cube.

    Args:
        space: configuration space.
        step_size: initial step as a fraction of the (normalized) space.
        step_lower_bound: step-size floor.
        start: internal-axis start vector (default: the space default —
            FLOW2 tunes from the current configuration).
        seed: RNG seed.
    """

    def __init__(
        self,
        space: ConfigSpace,
        step_size: float = 0.1,
        step_lower_bound: float = 0.005,
        start: Optional[np.ndarray] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(space, window_size=2)
        if not 0 < step_lower_bound <= step_size:
            raise ValueError("need 0 < step_lower_bound <= step_size")
        self._rng = np.random.default_rng(seed)
        self.step_size = step_size
        self.step_lower_bound = step_lower_bound
        start_vec = space.default_vector() if start is None else np.asarray(start, float)
        self._incumbent_unit = space.normalize(space.clip(start_vec))
        self._incumbent_cost: Optional[float] = None
        self._direction: Optional[np.ndarray] = None
        self._tried_opposite = False
        self._pending_unit: Optional[np.ndarray] = None
        self._no_improvement = 0
        # FLOW2 shrinks the step after 2^d failed proposals (capped for
        # high-dimensional spaces where that would stall shrinking entirely).
        self._shrink_after = min(2 ** space.dim, 4 * space.dim)

    def _new_direction(self) -> np.ndarray:
        u = self._rng.normal(size=self.space.dim)
        norm = np.linalg.norm(u)
        return u / norm if norm > 0 else np.ones(self.space.dim) / np.sqrt(self.space.dim)

    def suggest(self, data_size=None, embedding=None) -> np.ndarray:
        if self._incumbent_cost is None:
            # First evaluation: measure the starting point itself.
            self._pending_unit = self._incumbent_unit.copy()
        elif self._direction is not None and not self._tried_opposite:
            # We just failed on +u (observe() kept _direction): try −u.
            unit = self._incumbent_unit - self.step_size * self._direction
            self._pending_unit = np.clip(unit, 0.0, 1.0)
            self._tried_opposite = True
        else:
            self._direction = self._new_direction()
            self._tried_opposite = False
            unit = self._incumbent_unit + self.step_size * self._direction
            self._pending_unit = np.clip(unit, 0.0, 1.0)
        return self.space.denormalize(self._pending_unit)

    def observe(self, obs: Observation) -> None:
        super().observe(obs)
        unit = self.space.normalize(obs.config)
        cost = obs.performance
        if self._incumbent_cost is None:
            self._incumbent_unit = unit
            self._incumbent_cost = cost
            return
        if cost < self._incumbent_cost:
            self._incumbent_unit = unit
            self._incumbent_cost = cost
            self._direction = None
            self._tried_opposite = False
            self._no_improvement = 0
            return
        self._no_improvement += 1
        if self._tried_opposite:
            # Both directions failed; next suggest() draws a fresh one.
            self._direction = None
        if self._no_improvement >= self._shrink_after:
            self.step_size = max(self.step_size * 0.5, self.step_lower_bound)
            self._no_improvement = 0

    @property
    def incumbent(self) -> np.ndarray:
        """Current incumbent as an internal-axis vector."""
        return self.space.denormalize(self._incumbent_unit)
