"""Uniform random search — the weakest sensible baseline."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config_space import ConfigSpace
from .base import Optimizer

__all__ = ["RandomSearch"]


class RandomSearch(Optimizer):
    """Samples configurations uniformly on the internal axes."""

    def __init__(self, space: ConfigSpace, seed: Optional[int] = None):
        super().__init__(space)
        self._rng = np.random.default_rng(seed)

    def suggest(self, data_size=None, embedding=None) -> np.ndarray:
        return self.space.sample_vector(self._rng)
