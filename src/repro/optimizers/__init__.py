"""Baseline optimizers Rockhopper is evaluated against."""

from .base import Optimizer
from .bayesian import BayesianOptimization
from .contextual_bo import ContextualBayesianOptimization
from .flow2 import FLOW2
from .hill_climbing import HillClimbing
from .policy_gradient import PolicyGradientTuner
from .random_search import RandomSearch

__all__ = [
    "BayesianOptimization",
    "ContextualBayesianOptimization",
    "FLOW2",
    "HillClimbing",
    "Optimizer",
    "PolicyGradientTuner",
    "RandomSearch",
]
