"""Hypothesis strategies for repro's core domain objects.

This is the only module in :mod:`repro.verify` allowed to import
``hypothesis`` (declared by the ``test`` extra); the registry and the
differential oracles stay dependency-free so ``import repro.verify`` works
in production environments — ``tests/verify/test_import_guard.py`` pins
that split.

Strategies:

* :func:`parameters` / :func:`config_spaces` — mixed linear/log/integer
  knobs with sane spans (log ratios ≥ 10, linear spans ≥ 8) so normalized
  encodings stay well-conditioned.
* :func:`internal_vectors` / :func:`unit_vectors` — points inside a given
  space, on the internal axes or the unit cube.
* :func:`physical_plans` — TPC-H plans across query shapes and scale
  factors (scan-only, multi-join, sorted/limited).
* :func:`fault_specs` / :func:`fault_plans` — seeded chaos schedules.
* :func:`noise_models` — Eq.-8 noise across the FL/SL range.
* :func:`observations` — valid ``(c, p, r)`` triples for a space.
* :func:`lockstep_populations` — a zero-arg *builder* of fresh lock-step
  session populations (mixed plans, noise, per-session hyperparameters,
  drifting sizes, optional guardrails and fault plans).  Call it once per
  engine under comparison so each side starts from identical fresh state.

The metamorphic properties themselves (permutation-invariance of
FIND_BEST, noise-free convergence, scale-invariance of normalized
encodings, fault/noise determinism) live in
``tests/verify/test_properties.py`` under the ``verify`` marker.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from ..core.centroid import CentroidLearning
from ..core.config_space import ConfigSpace, Parameter
from ..core.guardrail import Guardrail
from ..core.observation import Observation
from ..experiments.lockstep import SessionSpec
from ..faults.injectors import FaultySimulator
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpch import tpch_plan

__all__ = [
    "config_spaces",
    "fault_plans",
    "fault_specs",
    "internal_vectors",
    "lockstep_populations",
    "noise_models",
    "observations",
    "parameters",
    "physical_plans",
    "seeds",
    "unit_vectors",
]


def seeds(max_value: int = 2**16) -> st.SearchStrategy:
    """Deterministic RNG seeds."""
    return st.integers(min_value=0, max_value=max_value)


@st.composite
def parameters(
    draw,
    index: int = 0,
    allow_log: bool = True,
    allow_integer: bool = True,
) -> Parameter:
    """One tunable knob with well-conditioned bounds."""
    log_scale = draw(st.booleans()) if allow_log else False
    integer = (
        draw(st.booleans()) if (allow_integer and not log_scale) else False
    )
    if log_scale:
        low = draw(st.floats(min_value=1e-2, max_value=1e2))
        ratio = draw(st.floats(min_value=10.0, max_value=1e4))
        high = low * ratio
    else:
        low = draw(st.floats(min_value=-1e3, max_value=1e3))
        span = draw(st.floats(min_value=8.0, max_value=1e4))
        high = low + span
    fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    default = min(max(low + (high - low) * fraction, low), high)
    return Parameter(
        name=f"knob{index}",
        low=low,
        high=high,
        default=default,
        log_scale=log_scale,
        integer=integer,
    )


@st.composite
def config_spaces(
    draw,
    min_dim: int = 1,
    max_dim: int = 4,
    allow_log: bool = True,
    allow_integer: bool = True,
) -> ConfigSpace:
    dim = draw(st.integers(min_value=min_dim, max_value=max_dim))
    return ConfigSpace([
        draw(parameters(index=i, allow_log=allow_log, allow_integer=allow_integer))
        for i in range(dim)
    ])


@st.composite
def unit_vectors(draw, space: ConfigSpace) -> np.ndarray:
    """A point on the unit cube ``[0, 1]^dim`` of ``space``."""
    return np.array([
        draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(space.dim)
    ])


@st.composite
def internal_vectors(draw, space: ConfigSpace) -> np.ndarray:
    """An in-bounds point on the internal (possibly log) axes of ``space``."""
    return np.array([
        draw(st.floats(min_value=p.internal_low, max_value=p.internal_high))
        for p in space
    ])


@st.composite
def observations(draw, space: ConfigSpace, iteration: int = 0) -> Observation:
    """A valid ``(c_i, p_i, r_i)`` triple for ``space``."""
    return Observation(
        config=draw(internal_vectors(space)),
        data_size=draw(st.floats(min_value=1.0, max_value=1e9)),
        performance=draw(st.floats(min_value=1e-3, max_value=1e6)),
        iteration=iteration,
    )


@st.composite
def physical_plans(draw):
    """TPC-H plans across shapes (scan-only, multi-join, sort/limit)."""
    query_id = draw(st.sampled_from([1, 3, 5, 6]))
    scale = draw(st.floats(min_value=0.1, max_value=4.0))
    return tpch_plan(query_id, scale_factor=scale)


@st.composite
def noise_models(draw) -> NoiseModel:
    """Eq.-8 noise spanning the no-noise → beyond-high-noise range."""
    return NoiseModel(
        fluctuation_level=draw(st.floats(min_value=0.0, max_value=2.0)),
        spike_level=draw(st.floats(min_value=0.0, max_value=10.0)),
    )


@st.composite
def fault_specs(draw, kind: FaultKind = None) -> FaultSpec:
    if kind is None:
        kind = draw(st.sampled_from(list(FaultKind)))
    return FaultSpec(
        kind=kind,
        rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        at=tuple(draw(st.lists(
            st.integers(min_value=0, max_value=50), max_size=4
        ))),
        duration=draw(st.integers(min_value=1, max_value=3)),
        magnitude=draw(st.floats(min_value=0.5, max_value=8.0)),
    )


@st.composite
def lockstep_populations(draw, min_sessions: int = 1, max_sessions: int = 5):
    """A zero-arg builder of one fresh lock-step session population.

    All randomness is drawn here; the returned ``build()`` closure only
    *constructs* — so calling it twice yields two populations with
    identical parameters but independent mutable state (simulators,
    optimizers, guardrails, fault plans).  That is exactly what the
    lock-step-vs-sequential and permutation-invariance properties need:
    one fresh population per engine run.

    Per-session variation: TPC-H query shape and scale factor, Eq.-8 noise
    levels, simulator/optimizer seeds, ``alpha``/``alpha_decay``/``beta``,
    an optional linear data-size drift, and an optional latency-spike
    fault plan.  Guardrail presence and parameters are population-wide
    (the engine requires them uniform).
    """
    k = draw(st.integers(min_value=min_sessions, max_value=max_sessions))
    guardrailed = draw(st.booleans())
    cooldown = draw(st.sampled_from([None, 3])) if guardrailed else None
    sessions = []
    for _ in range(k):
        sessions.append({
            "query": draw(st.sampled_from([1, 3, 5, 6])),
            "scale_factor": draw(st.floats(min_value=0.5, max_value=2.0)),
            "fluctuation": draw(st.floats(min_value=0.0, max_value=1.0)),
            "spike": draw(st.floats(min_value=0.0, max_value=4.0)),
            "sim_seed": draw(seeds()),
            "opt_seed": draw(seeds()),
            "alpha": draw(st.floats(min_value=0.02, max_value=0.3)),
            "alpha_decay": draw(st.floats(min_value=0.0, max_value=0.5)),
            "beta": draw(st.floats(min_value=0.05, max_value=0.3)),
            "growth": draw(st.sampled_from([None, 0.02, 0.1])),
            "fault_at": tuple(draw(st.lists(
                st.integers(min_value=0, max_value=12), max_size=3
            ))) if draw(st.booleans()) else (),
            "fault_magnitude": draw(st.floats(min_value=1.5, max_value=6.0)),
        })

    def build():
        space = query_level_space()
        specs = []
        for s in sessions:
            simulator = SparkSimulator(
                noise=NoiseModel(
                    fluctuation_level=s["fluctuation"], spike_level=s["spike"]
                ),
                seed=s["sim_seed"],
            )
            if s["fault_at"]:
                simulator = FaultySimulator(simulator, FaultPlan(
                    [FaultSpec(FaultKind.LATENCY_SPIKE, at=s["fault_at"],
                               magnitude=s["fault_magnitude"])],
                    seed=s["sim_seed"],
                ))
            guardrail = Guardrail(
                min_iterations=4, threshold=0.15, patience=2, cooldown=cooldown
            ) if guardrailed else None
            optimizer = CentroidLearning(
                space,
                alpha=s["alpha"], alpha_decay=s["alpha_decay"], beta=s["beta"],
                guardrail=guardrail, seed=s["opt_seed"],
            )
            growth = s["growth"]
            scale_fn = (
                (lambda t, _g=growth: 1.0 + _g * t) if growth is not None
                else None
            )
            specs.append(SessionSpec(
                plan=tpch_plan(s["query"], scale_factor=s["scale_factor"]),
                simulator=simulator,
                optimizer=optimizer,
                scale_fn=scale_fn,
            ))
        return specs

    return build


@st.composite
def fault_plans(draw, max_kinds: int = 3) -> FaultPlan:
    """A fresh, unconsumed fault plan.

    Rebuild an identical twin with
    ``FaultPlan([p.spec(k) for k in FaultKind if p.spec(k)], seed=p.seed)``
    when a property needs to drive the same schedule twice.
    """
    kinds = draw(st.lists(
        st.sampled_from(list(FaultKind)), unique=True, max_size=max_kinds
    ))
    specs = [draw(fault_specs(kind=k)) for k in kinds]
    return FaultPlan(specs, seed=draw(seeds()))
