"""Differential oracles: one seeded workload, two redundant paths, diffed.

The repo maintains nine pairs of execution paths that must agree:

==========================  ==============================================  =========
pair                        contract                                        compare
==========================  ==============================================  =========
scalar vs. batch            ``SparkSimulator.run`` × N element-wise equals  bitwise
                            one ``run_batch`` (noise stream included)
serial vs. parallel         ``run_replicated_parallel`` is worker-count     bitwise
                            invariant (derived seeds, forked workers)
refit vs. incremental       ``GaussianProcessRegressor.update`` tracks a    atol
                            frozen-hyper full ``fit`` (rank-1 Cholesky
                            vs. O(n³) factorization — numerically equal,
                            not bit-equal)
live vs. replay             a JSONL-stored trace replays to the live        bitwise
                            observation history and guardrail verdicts,
                            through reordered/duplicated deliveries
lockstep vs. sequential     ``LockstepSessions`` advances a K-session       bitwise
                            fleet (noisy, guardrailed, fault-injected)
                            identically to K independent
                            ``TuningSession`` loops — records,
                            observation histories, guardrail verdicts
index vs. brute force       ``FlatIndex`` / full-probe ``IVFIndex`` top-k   ids exact,
                            equals an einsum brute-force stable sort over   atol dist
                            the same corpus (dgemm vs. einsum kernels —
                            equal ranking, distances to tolerance)
armed vs. unarmed detector  a ``TaskSwitchDetector``-armed session on a     bitwise
                            drift-free stream is indistinguishable from
                            its detector-free twin — the detector is
                            inert unless a regime actually changes
sharded vs. single          a fleet served by the sharded, queue-driven     bitwise
                            service (consistent-hash routing, batched
                            shard drains, per-shard backends) leaves
                            every tenant session's observation trail,
                            centroid walk, and counter map identical to
                            the single-backend scalar deployment —
                            minus ``service.*`` (deployment-shaped)
pruned vs. frozen full      a ``TuningSession`` over a                      bitwise
                            ``PrunedSpace`` (kept knobs tuned, dropped
                            knobs pinned to defaults) is
                            indistinguishable from the same session
                            tuning the kept knobs directly with the
                            dropped knobs frozen in the config dict —
                            every suggestion, full-space config,
                            observation, guardrail verdict and
                            centroid move
==========================  ==============================================  =========

Each driver runs both paths from the same seed, flattens them into *trails*
(one dict of comparable fields per step), and returns a :class:`DiffReport`
naming the first divergent step/field.  Where telemetry counters are part of
the contract the driver captures both sides' counter maps and diffs those
too, excluding namespaces that legitimately differ between modes (e.g.
``parallel.*`` counters carry a ``mode`` label).

``run_all`` sweeps all nine drivers — the one command every future PR can
run to show "the paths still agree".
"""

from __future__ import annotations

import tempfile
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..core.centroid import CentroidLearning
from ..core.config_space import ConfigSpace
from ..core.guardrail import Guardrail
from ..core.observation import Observation
from ..core.switch import SafeExplorationGate, TaskSwitchDetector
from ..experiments.fig15_internal_customers import workload_specs
from ..experiments.lockstep import LockstepSessions, SessionSpec, run_sequential
from ..experiments.parallel import run_replicated_parallel
from ..faults.injectors import FaultySimulator
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..ml.gp import GaussianProcessRegressor
from ..ml.kernels import Matern52Kernel
from ..service.replay import audit_guardrail, replay_artifact
from ..service.storage import StorageManager
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import low_noise
from ..workloads.customer import generate_population
from ..workloads.synthetic import default_synthetic_objective
from ..workloads.tpch import tpch_plan

__all__ = [
    "DiffReport",
    "Divergence",
    "diff_live_replay",
    "diff_lockstep_sequential",
    "diff_pruned_full",
    "diff_refit_incremental",
    "diff_retrieval_bruteforce",
    "diff_scalar_batch",
    "diff_serial_parallel",
    "diff_sharded_single",
    "diff_switch_inert",
    "diff_trails",
    "run_all",
]


@dataclass(frozen=True)
class Divergence:
    """The first step/field where two trails disagree."""

    step: int
    field: str
    lhs: object
    rhs: object

    def __str__(self) -> str:
        return f"step {self.step}: {self.field}: {self.lhs!r} != {self.rhs!r}"


@dataclass
class DiffReport:
    """Outcome of one differential-oracle run."""

    name: str
    steps_compared: int
    tolerance: float = 0.0
    divergence: Optional[Divergence] = None
    length_mismatch: Optional[Tuple[int, int]] = None
    counter_diffs: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return (
            self.divergence is None
            and self.length_mismatch is None
            and not self.counter_diffs
        )

    def summary(self) -> str:
        if self.equivalent:
            return (
                f"{self.name}: equivalent over {self.steps_compared} steps"
                + (f" (atol={self.tolerance:g})" if self.tolerance else "")
            )
        parts = [f"{self.name}: NOT equivalent"]
        if self.length_mismatch is not None:
            parts.append(f"trail lengths {self.length_mismatch[0]} != {self.length_mismatch[1]}")
        if self.divergence is not None:
            parts.append(str(self.divergence))
        if self.counter_diffs:
            parts.append(f"{len(self.counter_diffs)} counter(s) diverge: "
                         + ", ".join(sorted(self.counter_diffs)))
        return "; ".join(parts)


def _values_equal(a, b, tolerance: float) -> bool:
    """Field-level comparison: exact by default, atol for float payloads."""
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if set(a) != set(b):
            return False
        return all(_values_equal(a[k], b[k], tolerance) for k in a)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        if a.shape != b.shape:
            return False
        if tolerance:
            return bool(np.allclose(a, b, rtol=0.0, atol=tolerance, equal_nan=True))
        return bool(np.array_equal(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if np.isnan(a) and np.isnan(b):
            return True
        if tolerance:
            return abs(a - b) <= tolerance
        return a == b
    return a == b


def diff_trails(
    name: str,
    trail_a: Sequence[Mapping[str, object]],
    trail_b: Sequence[Mapping[str, object]],
    tolerance: float = 0.0,
    counters_a: Optional[Mapping[str, float]] = None,
    counters_b: Optional[Mapping[str, float]] = None,
    ignore_counter_prefixes: Sequence[str] = (),
) -> DiffReport:
    """Diff two per-step trails (and optionally two counter maps).

    Steps are compared field-by-field in sorted field order; the first
    mismatch is recorded as the report's :class:`Divergence`.  A length
    mismatch is reported alongside whatever common prefix compared clean.
    """
    report = DiffReport(
        name=name,
        steps_compared=min(len(trail_a), len(trail_b)),
        tolerance=tolerance,
    )
    if len(trail_a) != len(trail_b):
        report.length_mismatch = (len(trail_a), len(trail_b))
    for step, (sa, sb) in enumerate(zip(trail_a, trail_b)):
        for fname in sorted(set(sa) | set(sb)):
            if fname not in sa or fname not in sb:
                report.divergence = Divergence(
                    step, fname, sa.get(fname, "<missing>"), sb.get(fname, "<missing>")
                )
                break
            if not _values_equal(sa[fname], sb[fname], tolerance):
                report.divergence = Divergence(step, fname, sa[fname], sb[fname])
                break
        if report.divergence is not None:
            break
    if counters_a is not None or counters_b is not None:
        counters_a = dict(counters_a or {})
        counters_b = dict(counters_b or {})
        for key in sorted(set(counters_a) | set(counters_b)):
            if any(key.startswith(prefix) for prefix in ignore_counter_prefixes):
                continue
            va, vb = counters_a.get(key, 0.0), counters_b.get(key, 0.0)
            if va != vb:
                report.counter_diffs[key] = (va, vb)
    telemetry.counter(
        "verify.diffs",
        driver=name,
        outcome="equivalent" if report.equivalent else "divergent",
    ).inc()
    return report


# -- driver 1: scalar vs. batch -----------------------------------------------------


def diff_scalar_batch(
    plan=None,
    space=None,
    n_configs: int = 32,
    seed: int = 0,
    data_scale: float = 1.0,
    noise=None,
) -> DiffReport:
    """N sequential ``run()`` calls vs. one ``run_batch`` — bitwise.

    Two identically-seeded simulators consume the same sampled configs; the
    batch side must reproduce observed/true seconds, configs, and metrics
    element-for-element (the noise stream advances per element, in batch
    order).  Counter trails are compared minus ``sparksim.*`` (batch-path
    cache counters differ by design).
    """
    plan = plan if plan is not None else tpch_plan(3)
    space = space if space is not None else query_level_space()
    noise = noise if noise is not None else low_noise()
    vectors = space.sample_vectors(n_configs, np.random.default_rng(seed))

    sim_scalar = SparkSimulator(noise=noise, seed=seed)
    sim_batch = SparkSimulator(noise=noise, seed=seed)
    with telemetry.capture() as cap_scalar:
        scalar_results = [
            sim_scalar.run(plan, space.to_dict(v), data_scale=data_scale)
            for v in vectors
        ]
    with telemetry.capture() as cap_batch:
        batch_results = sim_batch.run_batch(
            plan, vectors, space=space, data_scale=data_scale
        )

    def trail(results):
        return [
            {
                "observed_seconds": r.elapsed_seconds,
                "true_seconds": r.true_seconds,
                "data_size": r.data_size,
                "config": r.config,
                "metrics": r.metrics,
                "plan_signature": r.plan_signature,
            }
            for r in results
        ]

    return diff_trails(
        "scalar_vs_batch",
        trail(scalar_results),
        trail(batch_results),
        counters_a=cap_scalar.counters(),
        counters_b=cap_batch.counters(),
        ignore_counter_prefixes=("sparksim.",),
    )


# -- driver 2: serial vs. parallel --------------------------------------------------


def diff_serial_parallel(
    seed: int = 0,
    n_runs: int = 8,
    n_iterations: int = 12,
    n_workers: int = 2,
) -> DiffReport:
    """``run_replicated_parallel`` with 1 worker vs. ``n_workers`` — bitwise.

    Each replicate derives its RNG from ``seed*10007 + i`` and owns a fresh
    optimizer, so the runs matrix must be identical regardless of worker
    count.  Counter trails are compared minus ``parallel.*`` (those carry a
    ``mode`` label by design).  If the pool degrades to serial (e.g. no
    ``fork``), the comparison still holds — that fallback path is exactly
    what the bit-equality contract promises.
    """
    objective = default_synthetic_objective(seed=11)

    def factory(i: int) -> CentroidLearning:
        return CentroidLearning(objective.space, window_size=6, seed=1000 + i)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with telemetry.capture() as cap_serial:
            serial_runs, _ = run_replicated_parallel(
                factory, objective, n_iterations, n_runs, seed=seed, n_workers=1
            )
        with telemetry.capture() as cap_parallel:
            parallel_runs, _ = run_replicated_parallel(
                factory, objective, n_iterations, n_runs, seed=seed,
                n_workers=n_workers,
            )

    def trail(runs: np.ndarray):
        return [{"true_values": runs[i]} for i in range(runs.shape[0])]

    return diff_trails(
        "serial_vs_parallel",
        trail(serial_runs),
        trail(parallel_runs),
        counters_a=cap_serial.counters(),
        counters_b=cap_parallel.counters(),
        ignore_counter_prefixes=("parallel.",),
    )


# -- driver 3: full refit vs. incremental update ------------------------------------


def diff_refit_incremental(
    seed: int = 0,
    n_points: int = 40,
    n_init: int = 8,
    dim: int = 3,
    n_probes: int = 16,
    tolerance: float = 1e-7,
) -> DiffReport:
    """Rank-1 ``update`` vs. full ``fit`` after every appended point.

    Hyperparameters and normalization are frozen (``normalize_y=False``,
    ``optimize_hypers=False``) so both paths solve the same linear system;
    the rank-1 Cholesky append is numerically — not bitwise — equal to the
    full factorization, hence the atol.  Counters are not compared: the two
    paths increment ``gp.fits`` vs. ``gp.updates`` by design.
    """
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n_points, dim))
    w = rng.normal(size=dim)
    y = np.sin(X @ w) + 0.1 * np.sum(X * X, axis=1)
    probes = rng.uniform(-1.0, 1.0, size=(n_probes, dim))

    def fresh_gp() -> GaussianProcessRegressor:
        return GaussianProcessRegressor(
            kernel=Matern52Kernel(),
            noise=1e-4,
            normalize_y=False,
            optimize_hypers=False,
        )

    incremental = fresh_gp().fit(X[:n_init], y[:n_init])
    trail_inc, trail_ref = [], []
    for m in range(n_init, n_points):
        incremental.update(X[m:m + 1], float(y[m]))
        mean, std = incremental.predict_with_std(probes)
        trail_inc.append({"n": m + 1, "mean": mean, "std": std})
        reference = fresh_gp().fit(X[:m + 1], y[:m + 1])
        mean_r, std_r = reference.predict_with_std(probes)
        trail_ref.append({"n": m + 1, "mean": mean_r, "std": std_r})
    return diff_trails(
        "refit_vs_incremental", trail_inc, trail_ref, tolerance=tolerance
    )


# -- driver 4: live session vs. JSONL-trace replay ----------------------------------


def diff_live_replay(
    seed: int = 0,
    n_iterations: int = 40,
    cooldown: int = 5,
) -> DiffReport:
    """A live tuning loop vs. its trajectory replayed from stored events.

    The live loop emits sequenced ``QueryEndEvent``s into a file-backed
    :class:`StorageManager` — deliberately reversed, split across batches,
    and with a duplicated prefix — and ``replay_artifact`` must canonicalize
    that back to the exact live history.  The guardrail is then re-run over
    the replayed trajectory (``audit_guardrail``) and its full decision
    trail must match the live guardrail's, verdict for verdict.
    """
    plan = tpch_plan(6)
    space = query_level_space()

    def make_guardrail() -> Guardrail:
        return Guardrail(min_iterations=10, patience=2, cooldown=cooldown)

    simulator = SparkSimulator(noise=low_noise(), seed=seed)
    optimizer = CentroidLearning(
        space, window_size=8, seed=seed, guardrail=make_guardrail()
    )
    estimated = max(plan.total_leaf_cardinality, 1.0)
    events = []
    for t in range(n_iterations):
        vector = optimizer.suggest(data_size=estimated)
        config = space.to_dict(vector)
        event = simulator.run_to_event(
            plan, config,
            app_id="app-000", artifact_id="artifact-000", user_id="user-0",
            iteration=t,
        )
        event = replace(event, sequence=t)
        events.append(event)
        optimizer.observe(Observation(
            config=vector,
            data_size=event.data_size,
            performance=event.duration_seconds,
            iteration=t,
        ))

    with tempfile.TemporaryDirectory() as root:
        storage = StorageManager(root)
        # Adversarial delivery: reversed order, two batches, duplicated
        # prefix — replay must canonicalize all of it away.
        shuffled = list(reversed(events))
        half = len(shuffled) // 2
        storage.append_events("app-000", "artifact-000", shuffled[:half])
        storage.append_events("app-000", "artifact-000", shuffled[half:])
        storage.append_events("app-000", "artifact-000", events[:3])
        trajectories = replay_artifact(storage, "artifact-000")
    trajectory = trajectories[plan.signature()]
    audit = audit_guardrail(trajectory, space, guardrail_factory=make_guardrail)

    live_trail = [
        {
            "iteration": obs.iteration,
            "duration_seconds": obs.performance,
            "data_size": obs.data_size,
            "config": event.config,
        }
        for obs, event in zip(optimizer.observations.history, events)
    ]
    replay_trail = [
        {
            "iteration": e.iteration,
            "duration_seconds": e.duration_seconds,
            "data_size": e.data_size,
            "config": e.config,
        }
        for e in trajectory.events
    ]
    live_decisions = optimizer.guardrail.decisions
    for decisions, trail in (
        (live_decisions, live_trail), (audit.decisions, replay_trail)
    ):
        trail.extend(
            {
                "decision_iteration": d.iteration,
                "predicted_next": d.predicted_next,
                "previous": d.previous,
                "violated": d.violated,
            }
            for d in decisions
        )
    return diff_trails("live_vs_replay", live_trail, replay_trail)


# -- driver 5: lock-step fleet vs. sequential sessions ------------------------------


def diff_lockstep_sequential(
    seed: int = 0,
    n_workloads: int = 26,
    n_iterations: int = 12,
    fault_every: int = 5,
    lockstep_factory=None,
    switching: bool = False,
    safe: bool = False,
) -> DiffReport:
    """A lock-step session fleet vs. its K independent sequential twins.

    The population is fig-15-shaped: customer workloads with per-query
    plans, heteroscedastic noise, drifting data sizes, ``variance``/``drift``
    pathologies, a guardrail on every session, and every ``fault_every``-th
    session's simulator wrapped in a :class:`FaultySimulator` scheduling
    latency spikes.  Both engines build the population from the same seeds;
    the trails compare, bitwise:

    - per-iteration trace records across the fleet (config, observed/true
      seconds, data size, tuning-active flag) — the first divergent *step*
      names the iteration where lock-step left the sequential trajectory;
    - each optimizer's synced observation history (what downstream
      consumers — selectors, guardrails, replay — actually read);
    - each guardrail's full decision trail and final active flag;
    - telemetry counters, minus ``sparksim.*`` (the batched estimator path
      legitimately counts one batch where sequential counts K calls).

    ``lockstep_factory`` swaps the engine under test (the sensitivity suite
    passes a deliberately-broken subclass to prove the oracle catches a
    single-session perturbation at the faulting step).

    ``switching=True`` arms every session with a
    :class:`~repro.core.switch.TaskSwitchDetector` and gives each a
    staggered step-change in data scale (a 5× jump at ``4 + q % 4``), so
    sessions re-anchor at *different* steps — the ragged-epoch case the
    vectorized detector state must keep bit-identical.  Odd sessions get a
    deterministic warm-start hook; every sixth a failing one (the swallowed
    -failure path).  ``safe=True`` adds a uniform
    :class:`~repro.core.switch.SafeExplorationGate` to every session.
    """
    guardrail_factory = lambda: Guardrail(
        min_iterations=4, threshold=0.15, patience=2
    )
    space = query_level_space()

    def build_specs():
        population = generate_population(
            n_workloads, seed=seed, pathological_fraction=0.3,
            base_noise=(0.2, 0.5),
        )
        specs = []
        for i, workload in enumerate(population):
            for spec in workload_specs(
                workload, seed * 7 + i, guardrail_factory=guardrail_factory
            ):
                q = len(specs)
                if fault_every and q % fault_every == 0:
                    plan = FaultPlan(
                        [FaultSpec(FaultKind.LATENCY_SPIKE, at=(2, 7),
                                   magnitude=4.0)],
                        seed=seed * 31 + q,
                    )
                    spec = replace(
                        spec, simulator=FaultySimulator(spec.simulator, plan)
                    )
                if switching:
                    opt = spec.optimizer
                    opt.switch_detector = TaskSwitchDetector(
                        warmup=4, threshold=4.0, size_jump=3.0
                    )
                    if q % 2 == 1:
                        if q % 6 == 5:
                            def _failing_warm_start(obs):
                                raise RuntimeError("warm-start backend down")
                            opt.switch_warm_start = _failing_warm_start
                        else:
                            target = space.sample_vector(
                                np.random.default_rng(seed * 97 + q)
                            )
                            opt.switch_warm_start = (
                                lambda obs, _v=target: _v
                            )
                    base = spec.scale_fn
                    step_at = 4 + (q % 4)
                    spec.scale_fn = (
                        lambda t, _base=base, _at=step_at: (
                            (_base(t) if _base is not None else 1.0)
                            * (5.0 if t >= _at else 1.0)
                        )
                    )
                if safe:
                    spec.optimizer.safe_gate = SafeExplorationGate(
                        bound=0.5, min_observations=3
                    )
                specs.append(spec)
        return specs

    with telemetry.capture() as cap_seq:
        seq_specs = build_specs()
        seq_traces = run_sequential(seq_specs, n_iterations)
    with telemetry.capture() as cap_lock:
        lock_specs = build_specs()
        engine = (lockstep_factory or LockstepSessions)(lock_specs)
        lock_traces = engine.run(n_iterations)

    def trail(specs, traces):
        steps = []
        for t in range(n_iterations):
            records = [trace.records[t] for trace in traces]
            steps.append({
                "config": [r.config for r in records],
                "observed_seconds": np.array([r.observed_seconds for r in records]),
                "true_seconds": np.array([r.true_seconds for r in records]),
                "data_size": np.array([r.data_size for r in records]),
                "tuning_active": [r.tuning_active for r in records],
            })
        for spec in specs:
            history = spec.optimizer.observations.history
            steps.append({
                "obs_iterations": [o.iteration for o in history],
                "obs_configs": np.array([o.config for o in history]),
                "obs_performance": np.array([o.performance for o in history]),
                "obs_data_size": np.array([o.data_size for o in history]),
            })
        for spec in specs:
            guardrail = spec.optimizer.guardrail
            steps.append({
                "decisions": [
                    (d.iteration, d.predicted_next, d.previous, d.violated)
                    for d in guardrail.decisions
                ],
                "guardrail_active": guardrail.active,
                "guardrail_resets": guardrail.reset_count,
            })
        if switching:
            for spec in specs:
                det = spec.optimizer.switch_detector
                steps.append({
                    "switch_decisions": [
                        (d.iteration, d.statistic, d.bound, d.reason)
                        for d in det.detections
                    ],
                    "detector_state": det.to_state(),
                    "reanchors": spec.optimizer.reanchor_count,
                })
        return steps

    return diff_trails(
        "lockstep_vs_sequential",
        trail(seq_specs, seq_traces),
        trail(lock_specs, lock_traces),
        counters_a=cap_seq.counters(),
        counters_b=cap_lock.counters(),
        ignore_counter_prefixes=("sparksim.",),
    )


# -- driver 7: switch detector inert on drift-free streams --------------------------


def diff_switch_inert(
    seed: int = 0,
    n_sessions: int = 4,
    n_iterations: int = 16,
    detector_factory=None,
) -> DiffReport:
    """Detector-armed sessions vs. detector-free twins on drift-free streams.

    The task-switch detector must be *inert* when nothing switches: on a
    stationary workload (constant data scale, Eq.-8 noise only) a session
    with a :class:`~repro.core.switch.TaskSwitchDetector` attached must be
    bitwise identical to the same session without one — every suggestion,
    observation, guardrail verdict and centroid move.  The detector consumes
    no RNG and a non-detection changes no optimizer state, so any divergence
    means the detector fired a false alarm (or mutated state it must not
    touch).  Counter trails are compared minus ``switch.*`` (the armed side
    legitimately counts its per-step checks).

    ``detector_factory`` (``(session_index) -> TaskSwitchDetector``) swaps
    the detector under test — the sensitivity suite passes one rigged to
    fire at a planted step and pins the first divergence to the very next
    suggestion.
    """
    space = query_level_space()
    factory = detector_factory or (lambda q: TaskSwitchDetector())

    def build_specs(armed: bool):
        specs = []
        for q in range(n_sessions):
            specs.append(SessionSpec(
                plan=tpch_plan(1 + 2 * q),
                simulator=SparkSimulator(noise=low_noise(), seed=seed * 101 + q),
                optimizer=CentroidLearning(
                    space,
                    guardrail=Guardrail(
                        min_iterations=4, threshold=0.15, patience=2
                    ),
                    seed=seed * 13 + q,
                    switch_detector=factory(q) if armed else None,
                ),
            ))
        return specs

    with telemetry.capture() as cap_plain:
        plain_specs = build_specs(armed=False)
        plain_traces = run_sequential(plain_specs, n_iterations)
    with telemetry.capture() as cap_armed:
        armed_specs = build_specs(armed=True)
        armed_traces = run_sequential(armed_specs, n_iterations)

    def trail(specs, traces):
        steps = []
        for t in range(n_iterations):
            records = [trace.records[t] for trace in traces]
            steps.append({
                "config": [r.config for r in records],
                "observed_seconds": np.array(
                    [r.observed_seconds for r in records]
                ),
                "true_seconds": np.array([r.true_seconds for r in records]),
                "data_size": np.array([r.data_size for r in records]),
                "tuning_active": [r.tuning_active for r in records],
            })
        for spec in specs:
            history = spec.optimizer.observations.history
            steps.append({
                "obs_iterations": [o.iteration for o in history],
                "obs_configs": np.array([o.config for o in history]),
                "obs_performance": np.array([o.performance for o in history]),
                "reanchors": spec.optimizer.reanchor_count,
                "guardrail_resets": spec.optimizer.guardrail.reset_count,
            })
        return steps

    return diff_trails(
        "switch_inert",
        trail(plain_specs, plain_traces),
        trail(armed_specs, armed_traces),
        counters_a=cap_plain.counters(),
        counters_b=cap_armed.counters(),
        ignore_counter_prefixes=("switch.",),
    )


# -- driver 6: ANN index vs. brute force --------------------------------------------


def diff_retrieval_bruteforce(
    seed: int = 0,
    n_entries: int = 400,
    n_queries: int = 12,
    dim: int = 24,
    k: int = 10,
    tolerance: float = 1e-9,
) -> DiffReport:
    """ANN index search vs. an einsum brute-force reference — both metrics.

    The reference ranks the full corpus with the shape-independent einsum
    kernel of :mod:`repro.offline.similarity` and a stable
    ``lexsort(ids, distance)``; the :class:`~repro.retrieval.index
    .FlatIndex` (and an :class:`~repro.retrieval.index.IVFIndex` probing
    *every* list, whose candidate set is then the whole corpus) rank with
    the fast ``dgemm`` kernel.  The contract: identical neighbor ids —
    ordering and deterministic tie-breaks included (the corpus carries
    duplicated rows and self-queries to force exact ties) — with distances
    agreeing to ``tolerance`` (the two kernels reassociate differently, so
    distances are numerically, not bitwise, equal).  Euclidean distances
    are compared *squared*: the index recovers them from the norm
    expansion ``sqrt(|q|^2 - score)``, whose cancellation error near zero
    (~``sqrt(eps)·|q|``) dwarfs ``tolerance`` even when the squared
    distances agree to machine precision.
    """
    from ..retrieval.index import FlatIndex, IVFIndex

    rng = np.random.default_rng(seed)
    entries = rng.normal(size=(n_entries, dim))
    entries[n_entries // 2] = entries[0]       # duplicate rows → exact score ties
    entries[n_entries // 2 + 1] = entries[0]
    queries = rng.normal(size=(n_queries, dim))
    queries[0] = entries[0]                    # self-query over the duplicates
    ids = np.arange(n_entries)

    def reference(metric: str):
        if metric == "euclidean":
            dists = np.linalg.norm(entries[None, :, :] - queries[:, None, :], axis=2)
        else:
            dots = np.einsum("nd,qd->qn", entries, queries)
            norms = np.sqrt(np.einsum("nd,nd->n", entries, entries))
            qnorms = np.sqrt(np.einsum("qd,qd->q", queries, queries))
            dists = 1.0 - dots / np.maximum(norms[None, :] * qnorms[:, None], 1e-12)
        steps = []
        for row in range(n_queries):
            order = np.lexsort((ids, dists[row]))[:k]
            out = dists[row][order]
            if metric == "euclidean":
                out = out * out
            steps.append({"ids": ids[order], "distances": out})
        return steps

    def indexed(index, metric):
        got_ids, got_dists = index.search(queries, k)
        if metric == "euclidean":
            got_dists = got_dists * got_dists
        return [
            {"ids": got_ids[row], "distances": got_dists[row]}
            for row in range(n_queries)
        ]

    reports = []
    for metric in ("cosine", "euclidean"):
        flat = FlatIndex(dim, metric=metric)
        flat.add(entries)
        ivf = IVFIndex(dim, n_lists=8, metric=metric, nprobe=8, seed=seed)
        ivf.add(entries)
        ref = reference(metric)
        reports.append(diff_trails(
            f"retrieval_vs_bruteforce[{metric},flat]", indexed(flat, metric), ref,
            tolerance=tolerance,
        ))
        reports.append(diff_trails(
            f"retrieval_vs_bruteforce[{metric},ivf]", indexed(ivf, metric), ref,
            tolerance=tolerance,
        ))
    merged = DiffReport(
        name="retrieval_vs_bruteforce",
        steps_compared=sum(r.steps_compared for r in reports),
        tolerance=tolerance,
    )
    for r in reports:
        if r.divergence is not None and merged.divergence is None:
            merged.divergence = r.divergence
        if r.length_mismatch is not None and merged.length_mismatch is None:
            merged.length_mismatch = r.length_mismatch
    return merged


# -- driver 8: sharded service vs. single backend -----------------------------------


def diff_sharded_single(
    seed: int = 0,
    n_workloads: int = 8,
    n_iterations: int = 8,
    n_shards: int = 4,
    events: bool = True,
    mutate_sharded=None,
) -> DiffReport:
    """One fleet, two deployments: sharded batched service vs. single scalar.

    The same fleet spec (customer workload population, derived seeds) runs
    once against an ``n_shards``-way :class:`ShardedAutotuneService` with
    batched drains and per-shard backends, and once against the
    single-shard, scalar (``coalesce=False``) reference with one backend.
    The contract: every tenant session's observation history, centroid
    walk, update count, and request count — plus the whole telemetry
    counter map minus ``service.*`` (shard counts, queue stats, and
    handoffs are deployment-shaped by design) — is **bitwise identical**.
    This is what makes sharding and request coalescing safe to deploy: a
    tenant cannot tell how the fleet is sharded.

    Each trail step carries a ``session`` field, so a divergence names the
    offending tenant session and observation index directly.

    ``mutate_sharded`` (``(service) -> None``) perturbs the sharded arm
    before the fleet runs — the sensitivity suite passes
    ``lambda svc: svc.plant_misroute(...)`` to prove a hash-ring misroute
    (a session landing on the wrong shard without state handoff) is caught
    and pinned to the first divergent session/step.
    """
    from ..service.backend import AutotuneBackend
    from ..service.auth import SasTokenIssuer
    from ..service.fleet import (
        build_fleet, default_optimizer_factory, fleet_user_map, run_fleet,
    )
    from ..service.sharded import ShardedAutotuneService

    def backend_factory(root):
        def build(shard_id: str) -> AutotuneBackend:
            return AutotuneBackend(
                storage=StorageManager(f"{root}/{shard_id}"),
                issuer=SasTokenIssuer(f"secret-{shard_id}"),
                query_space=query_level_space(),
                min_events_for_model=3,
            )
        return build

    def run_arm(root, arm_shards, coalesce, mutate=None):
        fleet = build_fleet(n_workloads, seed=seed)
        service = ShardedAutotuneService(
            arm_shards,
            default_optimizer_factory(fleet, base_seed=seed),
            coalesce=coalesce,
            backend_factory=backend_factory(root) if events else None,
            user_id_fn=fleet_user_map(fleet),
            queue_capacity=max(4096, 4 * len(fleet)),
        )
        if mutate is not None:
            mutate(service)
        with telemetry.capture() as cap:
            run_fleet(service, fleet, n_iterations, events=events)
        return service, cap

    def trail(service):
        steps = []
        for key in sorted(service.sessions()):
            session = service.sessions()[key]
            optimizer = session.optimizer
            for index, obs in enumerate(optimizer.observations.history):
                steps.append({
                    "session": key,
                    "index": index,
                    "config": obs.config,
                    "performance": obs.performance,
                    "data_size": obs.data_size,
                    "iteration": obs.iteration,
                })
            steps.append({
                "session": key,
                "index": "summary",
                "centroid": optimizer._centroid,
                "n_updates": optimizer._n_updates,
                "requests": session.requests,
            })
        return steps

    with tempfile.TemporaryDirectory() as root_sharded, \
            tempfile.TemporaryDirectory() as root_single:
        sharded, cap_sharded = run_arm(
            root_sharded, n_shards, coalesce=True, mutate=mutate_sharded
        )
        single, cap_single = run_arm(root_single, 1, coalesce=False)
        return diff_trails(
            "sharded_vs_single",
            trail(sharded),
            trail(single),
            counters_a=cap_sharded.counters(),
            counters_b=cap_single.counters(),
            ignore_counter_prefixes=("service.",),
        )


# -- driver 9: pruned subspace vs. frozen full space --------------------------------


class _FrozenFullSpace(ConfigSpace):
    """Independent reference arm for :func:`diff_pruned_full`.

    An ordinary :class:`ConfigSpace` over the kept parameters whose
    ``to_dict`` merges the frozen natural values of the dropped knobs back
    in, walking the full space's name order.  Deliberately *not* built on
    :class:`~repro.core.importance.PrunedSpace` — it shares no decode code
    with the arm under test, so agreement is evidence, not tautology.
    """

    def __init__(self, full_space, keep, frozen: Mapping[str, float]):
        keep = set(keep)
        super().__init__([p for p in full_space if p.name in keep])
        self._full_names = list(full_space.names)
        self._frozen = dict(frozen)

    def to_dict(self, vector):
        kept = super().to_dict(vector)
        return {
            name: kept[name] if name in kept else self._frozen[name]
            for name in self._full_names
        }

    def default_dict(self):
        return self.to_dict(self.default_vector())


def diff_pruned_full(
    seed: int = 0,
    n_iterations: int = 20,
    top_k: int = 3,
    pruned_space_factory=None,
) -> DiffReport:
    """Pruned-subspace tuning vs. frozen-knob full-space tuning — bitwise.

    A knob ranking (noiseless OAT + radial-Morris sweep) selects the
    ``top_k`` knobs of the 8-knob catalog.  Arm A runs a
    :class:`~repro.core.session.TuningSession` over a
    :class:`~repro.core.importance.PrunedSpace` (dropped knobs pinned at
    their defaults through the decode path); arm B runs the *same* session
    over a :class:`_FrozenFullSpace` — the kept parameters as a plain
    space, with the dropped knobs' natural defaults merged into every
    config dict by an independent code path.  Both optimizers see
    identical kept-knob spaces, so their RNG streams align; the contract
    is that every materialized full-space config, observation, guardrail
    verdict and centroid move matches bitwise.  Any decode misalignment —
    a pruned knob silently unpinned, a kept coordinate perturbed — breaks
    the config dict at the first step it materializes.

    ``pruned_space_factory`` (``(full_space, keep) -> PrunedSpace``) swaps
    arm A's space — the sensitivity suite passes a subclass that silently
    unpins one dropped knob from a planted step onward and pins the first
    divergence to exactly that step, on the ``config`` field.
    """
    from ..core.importance import PrunedSpace, rank_knobs
    from ..core.session import TuningSession
    from ..sparksim.configs import full_space as full_space_factory

    space = full_space_factory()
    plan = tpch_plan(3)
    ranking = rank_knobs(
        plan, space,
        simulator=SparkSimulator(noise=low_noise(), seed=seed),
        seed=seed,
    )
    keep = ranking.top(top_k)
    factory = pruned_space_factory or (
        lambda full, kept: PrunedSpace(full, kept)
    )
    pruned = factory(space, keep)
    frozen = _FrozenFullSpace(space, keep, pruned.pinned_dict())

    def run_arm(arm_space):
        simulator = SparkSimulator(noise=low_noise(), seed=seed * 101 + 1)
        optimizer = CentroidLearning(
            arm_space, window_size=8, seed=seed * 13 + 7,
            guardrail=Guardrail(min_iterations=4, threshold=0.15, patience=2),
        )
        session = TuningSession(plan, simulator, optimizer)
        with telemetry.capture() as cap:
            trace = session.run(n_iterations)
        return optimizer, trace, cap

    def trail(optimizer, trace):
        steps = [
            {
                "config": r.config,
                "observed_seconds": r.observed_seconds,
                "true_seconds": r.true_seconds,
                "data_size": r.data_size,
                "tuning_active": r.tuning_active,
            }
            for r in trace.records
        ]
        history = optimizer.observations.history
        steps.append({
            "obs_iterations": [o.iteration for o in history],
            "obs_configs": np.array([o.config for o in history]),
            "obs_performance": np.array([o.performance for o in history]),
        })
        steps.append({
            "centroid": optimizer._centroid,
            "n_updates": optimizer._n_updates,
            "decisions": [
                (d.iteration, d.predicted_next, d.previous, d.violated)
                for d in optimizer.guardrail.decisions
            ],
            "guardrail_active": optimizer.guardrail.active,
        })
        return steps

    opt_pruned, trace_pruned, cap_pruned = run_arm(pruned)
    opt_frozen, trace_frozen, cap_frozen = run_arm(frozen)
    return diff_trails(
        "pruned_vs_full",
        trail(opt_pruned, trace_pruned),
        trail(opt_frozen, trace_frozen),
        counters_a=cap_pruned.counters(),
        counters_b=cap_frozen.counters(),
    )


def run_all(seed: int = 0) -> Dict[str, DiffReport]:
    """Run every differential driver; keys are the report names."""
    reports: List[DiffReport] = [
        diff_scalar_batch(seed=seed),
        diff_serial_parallel(seed=seed),
        diff_refit_incremental(seed=seed),
        diff_live_replay(seed=seed),
        diff_lockstep_sequential(seed=seed),
        diff_retrieval_bruteforce(seed=seed),
        diff_switch_inert(seed=seed),
        diff_sharded_single(seed=seed),
        diff_pruned_full(seed=seed),
    ]
    return {report.name: report for report in reports}
