"""repro.verify — the differential verification subsystem.

Three layers, one goal: make "the redundant paths still agree and the
optimizer state is still sane" a one-command check instead of a per-PR
burden (see ``docs/testing.md``):

* :mod:`repro.verify.invariants` — an :class:`InvariantRegistry` of cheap,
  composable state checkers (centroid in-bounds, guardrail cooldown
  discipline, window-statistics recompute, GP posterior sanity, noise-stream
  purity) that runs inline in any session via ``TuningSession(verify=...)``.
* :mod:`repro.verify.diff` — differential oracles driving one seeded
  workload through both sides of each redundant path pair (scalar/batch,
  serial/parallel, refit/incremental, live/replay, lockstep/sequential,
  retrieval-index/brute-force) and reporting the first divergent step.
* :mod:`repro.verify.properties` — Hypothesis strategies for spaces, plans,
  fault plans, and noise models.  **Not** imported here: hypothesis is a
  test-extra dependency, and ``import repro.verify`` must stay
  dependency-free (run ``pytest -m verify`` / ``make verify`` for the
  property suite).
"""

from . import diff
from .diff import (
    DiffReport,
    Divergence,
    diff_pruned_full,
    diff_retrieval_bruteforce,
    diff_switch_inert,
    diff_trails,
    run_all,
)
from .invariants import (
    CheckResult,
    Invariant,
    InvariantRegistry,
    InvariantViolation,
    VerificationContext,
    default_registry,
)

__all__ = [
    "CheckResult",
    "DiffReport",
    "Divergence",
    "Invariant",
    "InvariantRegistry",
    "InvariantViolation",
    "VerificationContext",
    "default_registry",
    "diff",
    "diff_pruned_full",
    "diff_retrieval_bruteforce",
    "diff_switch_inert",
    "diff_trails",
    "run_all",
]
