"""Composable runtime invariant checkers.

The optimizer/guardrail/simulator stack maintains a handful of state
invariants that, when broken, produce *silently wrong* tuning rather than a
crash — a centroid drifting out of bounds still suggests configurations, a
guardrail re-enabling mid-cooldown still records decisions.  This module
packages those invariants as cheap, composable checkers that can run inline
in any :class:`~repro.core.session.TuningSession` (via its ``verify=`` hook)
or on demand against a live optimizer.

Built-in checkers (see :func:`default_registry`):

====================  =========================================================
``centroid_in_bounds``    the Alg.-1 centroid ``e_t`` stays finite and inside
                          the space's internal bounds (``ConfigSpace.clip``
                          post-condition).
``guardrail_cooldown``    guardrail state machine sanity: a disabled guardrail
                          with a cooldown never sits past it, a
                          disabled→active transition only happens after the
                          cooldown elapsed, and ``cooldown=None`` never
                          re-enables (the paper's permanent disable).
``window_statistics``     the :class:`ObservationWindow`'s dense views
                          (``configs``/``performances``/``data_sizes``/
                          ``design_matrix``) match a brute-force recompute
                          from the raw history.
``gp_posterior``          a fitted GP surrogate's posterior variance is
                          finite and non-negative at its own training inputs.
``noise_stream``          Eq.-8 noise draws are a pure function of the RNG
                          stream (the contract ``run_batch`` relies on for
                          scalar/batch bit-equality) and never deflate the
                          baseline time.
====================  =========================================================

Checkers *skip* (``CheckResult.checked`` is False) when their subject is
absent — e.g. ``gp_posterior`` on a Centroid Learning optimizer — so one
registry serves every optimizer type.  Violations raise
:class:`InvariantViolation` (an ``AssertionError`` subclass, so plain
``pytest.raises(AssertionError)`` works too).

This module is dependency-free beyond numpy: importing :mod:`repro.verify`
must not require hypothesis (pinned by ``tests/verify/test_import_guard.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from .. import telemetry

__all__ = [
    "CheckResult",
    "Invariant",
    "InvariantRegistry",
    "InvariantViolation",
    "VerificationContext",
    "check_centroid_in_bounds",
    "check_gp_posterior",
    "check_guardrail_cooldown",
    "check_noise_stream",
    "check_window_statistics",
    "default_registry",
]


class InvariantViolation(AssertionError):
    """An invariant checker observed an impossible state."""

    def __init__(self, invariant: str, message: str):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.message = message


@dataclass
class VerificationContext:
    """What one inline check sees — live objects, never copies.

    Attributes:
        optimizer: the optimizer under test (any
            :class:`~repro.core.optimizer_base.Optimizer`).
        session: the owning :class:`~repro.core.session.TuningSession`
            (``None`` when checking a bare optimizer).
        simulator: the execution substrate (for noise-model checks).
        record: the just-appended
            :class:`~repro.core.session.IterationRecord`, when running as a
            session hook.
        extras: free-form extension slots for custom checkers.
    """

    optimizer: Optional[object] = None
    session: Optional[object] = None
    simulator: Optional[object] = None
    record: Optional[object] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_session(cls, session, record=None) -> "VerificationContext":
        return cls(
            optimizer=session.optimizer,
            session=session,
            simulator=session.simulator,
            record=record,
        )

    # -- common lookups (None when the subject is absent) ----------------------

    @property
    def space(self):
        return getattr(self.optimizer, "space", None)

    @property
    def guardrail(self):
        return getattr(self.optimizer, "guardrail", None)

    @property
    def window(self):
        return getattr(self.optimizer, "observations", None)

    def gp(self):
        """The optimizer's fitted GP surrogate, if it has one."""
        from ..ml.gp import GaussianProcessRegressor

        for attr in ("_model", "model", "surrogate", "_gp"):
            candidate = getattr(self.optimizer, attr, None)
            if isinstance(candidate, GaussianProcessRegressor):
                return candidate
        return None


@dataclass(frozen=True)
class Invariant:
    """One named checker.

    ``check(ctx)`` returns True when it actually verified something, False
    when its subject was absent (a skip), and raises
    :class:`InvariantViolation` on a broken invariant.
    """

    name: str
    check: Callable[[VerificationContext], bool]
    description: str = ""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one checker run (collected by ``check_all``)."""

    invariant: str
    checked: bool
    violation: Optional[InvariantViolation] = None


class InvariantRegistry:
    """An ordered, composable collection of :class:`Invariant` checkers.

    Registries plug directly into a session::

        session = TuningSession(plan, simulator, optimizer,
                                verify=default_registry())

    and every ``step()`` then runs the full sweep against live state,
    raising :class:`InvariantViolation` at the first broken invariant.
    """

    def __init__(self, invariants=()):
        self._invariants: "OrderedDict[str, Invariant]" = OrderedDict()
        for inv in invariants:
            self.add(inv)

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._invariants)

    def __iter__(self) -> Iterator[Invariant]:
        return iter(self._invariants.values())

    def __contains__(self, name: str) -> bool:
        return name in self._invariants

    def names(self) -> List[str]:
        return list(self._invariants)

    # -- composition -----------------------------------------------------------

    def add(self, invariant: Invariant) -> "InvariantRegistry":
        if invariant.name in self._invariants:
            raise ValueError(f"duplicate invariant {invariant.name!r}")
        self._invariants[invariant.name] = invariant
        return self

    def register(self, name: str, description: str = ""):
        """Decorator form of :meth:`add` for custom checkers."""

        def decorate(fn: Callable[[VerificationContext], bool]):
            self.add(Invariant(name=name, check=fn, description=description))
            return fn

        return decorate

    def without(self, *names: str) -> "InvariantRegistry":
        """A new registry minus the named checkers (order preserved)."""
        unknown = set(names) - set(self._invariants)
        if unknown:
            raise KeyError(f"unknown invariants: {sorted(unknown)}")
        return InvariantRegistry(
            inv for name, inv in self._invariants.items() if name not in names
        )

    # -- execution ---------------------------------------------------------------

    def check_all(
        self, ctx: VerificationContext, raise_on_violation: bool = True
    ) -> List[CheckResult]:
        """Run every checker against ``ctx``.

        With ``raise_on_violation`` (the default, what the session hook
        wants) the first violation propagates; otherwise violations are
        collected into the returned :class:`CheckResult` list.
        """
        results: List[CheckResult] = []
        for inv in self:
            try:
                checked = bool(inv.check(ctx))
            except InvariantViolation as violation:
                telemetry.counter("verify.violations", invariant=inv.name).inc()
                if raise_on_violation:
                    raise
                results.append(CheckResult(inv.name, True, violation))
                continue
            telemetry.counter(
                "verify.checks", outcome="checked" if checked else "skipped"
            ).inc()
            results.append(CheckResult(inv.name, checked))
        return results

    def check_session(
        self, session, record=None, raise_on_violation: bool = True
    ) -> List[CheckResult]:
        """Sweep a live session — the ``verify=`` hook entry point."""
        return self.check_all(
            VerificationContext.from_session(session, record),
            raise_on_violation=raise_on_violation,
        )


# -- built-in checkers ----------------------------------------------------------


def check_centroid_in_bounds(ctx: VerificationContext) -> bool:
    """The Alg.-1 centroid stays finite and inside the internal bounds."""
    centroid = getattr(ctx.optimizer, "centroid", None)
    space = ctx.space
    if centroid is None or space is None:
        return False
    centroid = np.asarray(centroid, dtype=float)
    if centroid.shape != (space.dim,):
        raise InvariantViolation(
            "centroid_in_bounds",
            f"centroid shape {centroid.shape} != ({space.dim},)",
        )
    if not np.all(np.isfinite(centroid)):
        raise InvariantViolation(
            "centroid_in_bounds", f"non-finite centroid {centroid.tolist()}"
        )
    if not space.contains_vector(centroid):
        bounds = space.internal_bounds
        raise InvariantViolation(
            "centroid_in_bounds",
            f"centroid {centroid.tolist()} outside internal bounds "
            f"{bounds.tolist()}",
        )
    return True


_GUARDRAIL_STASH = "_verify_guardrail_snapshot"


def check_guardrail_cooldown(ctx: VerificationContext) -> bool:
    """Guardrail state-machine sanity, including cooldown re-enable timing.

    The checker keeps a small snapshot of the last-seen state on the
    guardrail object itself, so consecutive sweeps can verify *transitions*:
    a disabled→active flip with ``d`` intervening observations is only legal
    when the cooldown could actually have elapsed
    (``since_disable + d >= cooldown``).
    """
    g = ctx.guardrail
    if g is None:
        return False
    since = g._since_disable
    violations = g._consecutive_violations
    if g.active != (not g._disabled):
        raise InvariantViolation(
            "guardrail_cooldown", "active property disagrees with _disabled"
        )
    if since < 0:
        raise InvariantViolation(
            "guardrail_cooldown", f"_since_disable is negative ({since})"
        )
    if g.cooldown is None:
        # The paper's permanent disable: no probation path exists at all.
        if g.reenable_count != 0:
            raise InvariantViolation(
                "guardrail_cooldown",
                f"re-enabled {g.reenable_count}x with cooldown=None",
            )
        if since != 0:
            raise InvariantViolation(
                "guardrail_cooldown",
                f"_since_disable={since} advanced with cooldown=None",
            )
    elif not g.active and since >= g.cooldown:
        raise InvariantViolation(
            "guardrail_cooldown",
            f"still disabled with _since_disable={since} >= cooldown={g.cooldown}",
        )
    if g.active and violations >= g.patience:
        raise InvariantViolation(
            "guardrail_cooldown",
            f"active with {violations} consecutive violations >= patience={g.patience}",
        )

    previous = g.__dict__.get(_GUARDRAIL_STASH)
    current = {
        "active": g.active,
        "since_disable": since,
        "n_observations": g.n_observations,
        "reenable_count": g.reenable_count,
    }
    if previous is not None:
        delta = current["n_observations"] - previous["n_observations"]
        if delta < 0:
            raise InvariantViolation(
                "guardrail_cooldown", "observation count moved backwards"
            )
        if current["reenable_count"] < previous["reenable_count"]:
            raise InvariantViolation(
                "guardrail_cooldown", "reenable_count moved backwards"
            )
        if not previous["active"] and current["active"]:
            if g.cooldown is None:
                raise InvariantViolation(
                    "guardrail_cooldown", "re-enabled despite cooldown=None"
                )
            if previous["since_disable"] + delta < g.cooldown:
                raise InvariantViolation(
                    "guardrail_cooldown",
                    f"re-enabled during cooldown: sat "
                    f"{previous['since_disable']} + {delta} new observations "
                    f"< cooldown={g.cooldown}",
                )
    g.__dict__[_GUARDRAIL_STASH] = current
    return True


def check_window_statistics(ctx: VerificationContext) -> bool:
    """The window's dense views match a brute-force recompute (bitwise)."""
    window = ctx.window
    if window is None or len(window) == 0:
        return False
    history = list(window.history)
    expected = history[-window.window_size:]
    actual = list(window.window)
    if len(actual) != len(expected) or any(
        a is not b for a, b in zip(actual, expected)
    ):
        raise InvariantViolation(
            "window_statistics",
            f"window is not the last {window.window_size} history entries",
        )
    if window.latest is not history[-1]:
        raise InvariantViolation(
            "window_statistics", "latest is not the last appended observation"
        )
    if window.version < len(history):
        raise InvariantViolation(
            "window_statistics",
            f"version {window.version} < history length {len(history)} "
            "(must bump at least once per append)",
        )
    recomputed = {
        "configs": np.array([o.config for o in expected]),
        "performances": np.array([o.performance for o in expected]),
        "data_sizes": np.array([o.data_size for o in expected]),
    }
    recomputed["design_matrix"] = np.column_stack(
        [recomputed["configs"], recomputed["data_sizes"]]
    )
    for name, want in recomputed.items():
        got = getattr(window, name)()
        if got.shape != want.shape or not np.array_equal(got, want):
            raise InvariantViolation(
                "window_statistics",
                f"{name}() diverges from brute-force recompute",
            )
    return True


def check_gp_posterior(ctx: VerificationContext) -> bool:
    """A fitted GP's posterior is finite with non-negative variance."""
    gp = ctx.gp()
    if gp is None or gp.n_observations == 0:
        return False
    probe = gp._X[-min(5, gp.n_observations):]
    mean, std = gp.predict_with_std(probe)
    if not np.all(np.isfinite(mean)):
        raise InvariantViolation(
            "gp_posterior", f"non-finite posterior mean {mean.tolist()}"
        )
    if not np.all(np.isfinite(std)) or np.any(std < 0):
        raise InvariantViolation(
            "gp_posterior",
            f"posterior std must be finite and >= 0, got {std.tolist()}",
        )
    return True


_NOISE_PROBE = (3.0, 1.5, 0.25, 8.0)
_NOISE_PROBE_SEED = 0x5EED


def check_noise_stream(ctx: VerificationContext) -> bool:
    """Eq.-8 draws are stream-pure and never deflate the baseline.

    ``SparkSimulator.run_batch`` stays bit-identical to sequential ``run``
    calls only because ``NoiseModel.apply`` is a pure function of
    ``(g0, rng state)`` — the same seeded stream must replay the same
    per-element draws.  The full cross-path comparison lives in
    :func:`repro.verify.diff.diff_scalar_batch`; this inline probe pins the
    contract it rests on.
    """
    from ..sparksim.noise import NoiseModel

    noise = getattr(ctx.simulator, "noise", None)
    if noise is None:
        noise = ctx.extras.get("noise")
    if not isinstance(noise, NoiseModel):
        return False
    rng_a = np.random.default_rng(_NOISE_PROBE_SEED)
    rng_b = np.random.default_rng(_NOISE_PROBE_SEED)
    draws = [noise.apply(g0, rng_a) for g0 in _NOISE_PROBE]
    replayed = [noise.apply(g0, rng_b) for g0 in _NOISE_PROBE]
    if draws != replayed:
        raise InvariantViolation(
            "noise_stream",
            "per-element noise draws are not a pure function of the stream: "
            f"{draws} != {replayed}",
        )
    for g0, g in zip(_NOISE_PROBE, draws):
        if not (np.isfinite(g) and g >= g0):
            raise InvariantViolation(
                "noise_stream",
                f"Eq.-8 noise deflated the baseline: apply({g0}) = {g}",
            )
    many = noise.apply_many(
        np.array(_NOISE_PROBE), np.random.default_rng(_NOISE_PROBE_SEED)
    )
    if not np.all(many >= np.array(_NOISE_PROBE)):
        raise InvariantViolation(
            "noise_stream", f"apply_many deflated the baseline: {many.tolist()}"
        )
    return True


def default_registry() -> InvariantRegistry:
    """The standard five-checker registry (order = cheapest first)."""
    return InvariantRegistry([
        Invariant(
            "centroid_in_bounds",
            check_centroid_in_bounds,
            "Alg.-1 centroid stays finite and inside internal bounds",
        ),
        Invariant(
            "guardrail_cooldown",
            check_guardrail_cooldown,
            "guardrail never re-enables during cooldown; state machine sane",
        ),
        Invariant(
            "window_statistics",
            check_window_statistics,
            "observation-window views match brute-force recompute",
        ),
        Invariant(
            "gp_posterior",
            check_gp_posterior,
            "GP posterior variance is finite and non-negative",
        ),
        Invariant(
            "noise_stream",
            check_noise_stream,
            "Eq.-8 noise draws are stream-pure and never deflate",
        ),
    ])
