"""Structured event log: discrete, append-only facts about a run.

Where metrics aggregate and spans time, events *narrate*: "the guardrail
disabled tuning at iteration 41", "the parallel engine fell back to
serial because the pool died".  Each event is a name plus free-form
fields, stamped with a monotone sequence number (no wall clock — chaos
replays must produce bit-identical logs).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List

__all__ = ["TelemetryEvent", "EventLog"]


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured log entry."""

    name: str
    sequence: int
    fields: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"name": self.name, "sequence": self.sequence, "fields": self.fields},
            sort_keys=True,
        )


class EventLog:
    """Bounded, thread-safe event buffer (oldest entries drop first)."""

    def __init__(self, max_events: int = 10_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._events: Deque[TelemetryEvent] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._next_sequence = 0

    def emit(self, name: str, **fields: object) -> TelemetryEvent:
        with self._lock:
            event = TelemetryEvent(name=name, sequence=self._next_sequence,
                                   fields=fields)
            self._next_sequence += 1
            self._events.append(event)
        return event

    @property
    def records(self) -> List[TelemetryEvent]:
        with self._lock:
            return list(self._events)

    def by_name(self, name: str) -> List[TelemetryEvent]:
        with self._lock:
            return [e for e in self._events if e.name == name]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._next_sequence = 0

    def to_jsonl(self, path) -> int:
        """Write the buffered events to ``path``; returns the line count."""
        events = self.records
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(event.to_json() + "\n")
        return len(events)
