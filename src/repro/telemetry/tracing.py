"""Context-manager tracing spans with in-memory and JSONL exporters.

A :class:`Tracer` hands out :class:`Span` context managers; nesting is
tracked per thread, so a span opened inside another span records it as
its parent.  Finished spans become immutable :class:`SpanRecord`s and are
pushed to every registered exporter — :class:`InMemoryExporter` for test
assertions, :class:`JsonlExporter` for on-disk traces that a session can
be reconstructed from (one JSON object per line, see
``docs/observability.md`` for the schema).

Span ids are small monotone integers assigned at span *start*, so a
sorted-by-id read of an exported trace replays the session in the order
work began even though exporters see spans in completion order.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["SpanRecord", "Span", "Tracer", "InMemoryExporter",
           "JsonlExporter", "read_jsonl"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    start_seconds: float            # perf_counter timebase
    duration_seconds: float
    status: str = "ok"              # "ok" | "error"
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attributes": self.attributes,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "SpanRecord":
        data = json.loads(line)
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            trace_id=data["trace_id"],
            start_seconds=data["start_seconds"],
            duration_seconds=data["duration_seconds"],
            status=data["status"],
            attributes=data["attributes"],
        )


class Span:
    """An open span; use as a context manager.

    Attributes set through :meth:`set_attr` land on the exported record.
    An exception propagating through the span marks it ``status="error"``
    (and re-raises — tracing never swallows failures).
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "trace_id",
                 "attributes", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.trace_id = -1
        self._start = 0.0

    def set_attr(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attributes.setdefault("exception", f"{exc_type.__name__}: {exc}")
        self.tracer._pop(self, duration, "error" if exc_type else "ok")
        return False


class InMemoryExporter:
    """Collects finished spans for test assertions (completion order)."""

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self._lock = threading.Lock()

    def export(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def by_name(self, name: str) -> List[SpanRecord]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()


class JsonlExporter:
    """Appends one JSON object per finished span to ``path``.

    Lines are flushed per span so a crashed run still leaves a readable
    trace prefix.  Call :meth:`close` (or use as a context manager) when
    done; :func:`read_jsonl` round-trips the file back into records.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None

    def export(self, record: SpanRecord) -> None:
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(record.to_json() + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_jsonl(path) -> List[SpanRecord]:
    """Load an exported trace; records come back in file (completion) order."""
    records = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_json(line))
    return records


class Tracer:
    """Creates spans and fans finished records out to exporters."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._exporters: List[object] = []
        self._lock = threading.Lock()

    def add_exporter(self, exporter) -> None:
        with self._lock:
            self._exporters.append(exporter)

    def remove_exporter(self, exporter) -> bool:
        with self._lock:
            try:
                self._exporters.remove(exporter)
                return True
            except ValueError:
                return False

    def span(self, name: str, **attributes: object) -> Span:
        return Span(self, name, dict(attributes))

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- span lifecycle (called by Span) ------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        span.span_id = next(self._ids)
        if stack:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        else:
            span.parent_id = None
            span.trace_id = span.span_id
        stack.append(span)

    def _pop(self, span: Span, duration: float, status: str) -> None:
        stack = self._local.stack
        assert stack and stack[-1] is span, "span exit out of order"
        stack.pop()
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            trace_id=span.trace_id,
            start_seconds=span._start,
            duration_seconds=duration,
            status=status,
            attributes=span.attributes,
        )
        with self._lock:
            exporters = list(self._exporters)
        for exporter in exporters:
            exporter.export(record)
