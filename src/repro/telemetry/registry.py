"""A dependency-free, thread-safe metrics registry.

Instruments come in three flavors:

* :class:`Counter` — monotone accumulator (events, retries, verdicts);
* :class:`Gauge` — last-written value (centroid drift, utilization);
* :class:`Histogram` — value distribution with quantile summaries
  (latencies, chunk timings).

Series are keyed by ``(name, labels)``; requesting the same key twice
returns the same instrument.  Per-name label cardinality is bounded:
once ``max_label_sets`` distinct label sets exist for a name, further
label sets collapse into a shared overflow series (labeled
``{"overflow": "true"}``) instead of growing without bound — a runaway
label (e.g. a per-request id) degrades that one metric, never the
process.

:meth:`MetricsRegistry.snapshot` renders everything into plain dicts for
test assertions and dashboards; :meth:`MetricsRegistry.dump` /
:meth:`MetricsRegistry.merge` round-trip the raw series so child-process
registries (forked experiment workers) can be folded into the parent's.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "render_key"]

LabelKey = Tuple[Tuple[str, str], ...]

_OVERFLOW_LABELS = (("overflow", "true"),)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_key(name: str, labels) -> str:
    """Canonical text form: ``name{k=v,k2=v2}`` (sorted), or bare ``name``.

    ``labels`` may be a plain dict or an already-canonical label-key tuple.
    """
    if isinstance(labels, dict):
        labels = _label_key(labels)
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotone accumulator.  ``inc`` never accepts negative deltas."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-written value (plus inc/dec for running levels)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Value distribution with exact quantiles over retained samples.

    Count/sum/min/max are always exact.  Raw samples are retained up to
    ``max_samples`` (quantiles are computed over what is retained); after
    that the scalar aggregates keep updating but no further samples are
    stored — a bounded-memory summary, not a silent reset.
    """

    __slots__ = ("_samples", "_count", "_sum", "_min", "_max",
                 "_truncated", "max_samples", "_lock")

    def __init__(self, max_samples: int = 65536) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._truncated = False
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self._truncated = True

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    @property
    def samples(self) -> List[float]:
        """The retained raw samples (at most ``max_samples`` of them)."""
        with self._lock:
            return list(self._samples)

    @property
    def truncated(self) -> bool:
        """True once observations stopped being retained as raw samples."""
        return self._truncated

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile over retained samples, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            raise ValueError("empty histogram has no quantiles")
        if len(samples) == 1:
            return samples[0]
        pos = q * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def summary(self) -> Dict[str, float]:
        """``{count, sum, min, max, mean, p50, p90, p99}`` (zeros when empty)."""
        if self._count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Thread-safe labeled-series store for counters, gauges and histograms.

    Args:
        max_label_sets: per-name cap on distinct label sets; excess label
            sets share one overflow series (see module docstring).
        histogram_max_samples: retained-sample bound for each histogram.
    """

    def __init__(self, max_label_sets: int = 256,
                 histogram_max_samples: int = 65536) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self.max_label_sets = max_label_sets
        self.histogram_max_samples = histogram_max_samples
        self._lock = threading.Lock()
        # name -> (kind, {label_key -> instrument})
        self._series: Dict[str, Tuple[str, Dict[LabelKey, object]]] = {}
        self.overflowed_label_sets = 0

    # -- instrument access --------------------------------------------------------

    def _get(self, kind: str, name: str, labels: Dict[str, object]):
        key = _label_key(labels)
        with self._lock:
            entry = self._series.get(name)
            if entry is None:
                entry = (kind, {})
                self._series[name] = entry
            elif entry[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {entry[0]}, "
                    f"requested as a {kind}"
                )
            series = entry[1]
            instrument = series.get(key)
            if instrument is None:
                if key != _OVERFLOW_LABELS and len(series) >= self.max_label_sets:
                    self.overflowed_label_sets += 1
                    return self._get_locked(kind, series, _OVERFLOW_LABELS)
                instrument = self._make(kind)
                series[key] = instrument
            return instrument

    def _get_locked(self, kind: str, series: Dict[LabelKey, object], key: LabelKey):
        instrument = series.get(key)
        if instrument is None:
            instrument = self._make(kind)
            series[key] = instrument
        return instrument

    def _make(self, kind: str):
        if kind == "counter":
            return Counter()
        if kind == "gauge":
            return Gauge()
        return Histogram(max_samples=self.histogram_max_samples)

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get("histogram", name, labels)

    # -- snapshot / reset / merge -------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view: ``{"counters": {key: value}, "gauges": {...},
        "histograms": {key: summary-dict}}`` with canonical render keys."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        with self._lock:
            items = [(name, kind, dict(series))
                     for name, (kind, series) in self._series.items()]
        for name, kind, series in items:
            for key, instrument in series.items():
                rkey = render_key(name, key)
                if kind == "counter":
                    out["counters"][rkey] = instrument.value
                elif kind == "gauge":
                    out["gauges"][rkey] = instrument.value
                else:
                    out["histograms"][rkey] = instrument.summary()
        return out

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self.overflowed_label_sets = 0

    def dump(self) -> List[Tuple[str, str, LabelKey, object]]:
        """Raw mergeable form: ``[(kind, name, label_key, payload)]`` where
        the payload is a float (counter/gauge) or the histogram's
        ``(samples, count, sum, min, max)`` tuple.  Picklable — the
        experiment engine ships worker dumps back through pool queues."""
        out: List[Tuple[str, str, LabelKey, object]] = []
        with self._lock:
            items = [(name, kind, dict(series))
                     for name, (kind, series) in self._series.items()]
        for name, kind, series in items:
            for key, instrument in series.items():
                if kind == "histogram":
                    with instrument._lock:
                        payload = (list(instrument._samples), instrument._count,
                                   instrument._sum, instrument._min, instrument._max)
                else:
                    payload = instrument.value
                out.append((kind, name, key, payload))
        return out

    def merge(self, dumped: List[Tuple[str, str, LabelKey, object]]) -> None:
        """Fold a :meth:`dump` into this registry.

        Counters and histogram aggregates add; gauges take the incoming
        value (last writer wins — workers report levels, not deltas).
        """
        for kind, name, key, payload in dumped:
            labels = dict(key)
            if kind == "counter":
                self.counter(name, **labels).inc(float(payload))
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(payload))
            else:
                hist = self.histogram(name, **labels)
                samples, count, total, vmin, vmax = payload
                with hist._lock:
                    room = hist.max_samples - len(hist._samples)
                    hist._samples.extend(samples[:room])
                    if len(samples) > room:
                        hist._truncated = True
                    hist._count += count
                    hist._sum += total
                    if count:
                        hist._min = min(hist._min, vmin)
                        hist._max = max(hist._max, vmax)

    # -- rendering ----------------------------------------------------------------

    def render_text(self, title: Optional[str] = None) -> str:
        """Fixed-width text render (the dashboard's metrics view)."""
        snap = self.snapshot()
        lines: List[str] = []
        if title:
            lines += [title, "=" * len(title)]
        for section in ("counters", "gauges"):
            entries = snap[section]
            if not entries:
                continue
            lines.append(f"[{section}]")
            width = max(len(k) for k in entries)
            for key in sorted(entries):
                lines.append(f"  {key:<{width}}  {entries[key]:g}")
        if snap["histograms"]:
            lines.append("[histograms]")
            width = max(len(k) for k in snap["histograms"])
            for key in sorted(snap["histograms"]):
                s = snap["histograms"][key]
                lines.append(
                    f"  {key:<{width}}  count={s['count']:g} mean={s['mean']:.6g} "
                    f"p50={s['p50']:.6g} p99={s['p99']:.6g} max={s['max']:.6g}"
                )
        return "\n".join(lines) if lines else "(no metrics)"
