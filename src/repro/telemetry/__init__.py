"""``repro.telemetry`` — metrics, tracing spans, and structured events.

The observability layer every production component reports through (see
``docs/observability.md`` for naming conventions and the test contract).
Three kinds of signal:

* **metrics** (:mod:`.registry`) — counters / gauges / histograms with
  labels, thread-safe, snapshot/reset/merge for tests and for folding
  forked-worker registries back into the parent;
* **spans** (:mod:`.tracing`) — nested timing contexts exported in-memory
  or as JSONL, from which a tuning session can be reconstructed;
* **events** (:mod:`.events`) — discrete structured facts (fallbacks,
  guardrail flips) with deterministic sequence numbers.

The module-level facade (``telemetry.counter(...)``, ``telemetry.span(...)``,
…) is what instrumented code calls.  **Telemetry is off by default** and the
disabled path is a single branch returning a shared no-op singleton — no
allocation, no locking, no timing — so instrumented hot paths cost nothing
until someone opts in (`make bench-telemetry` pins the overhead at <5%).

Tests use :func:`capture`::

    from repro import telemetry

    with telemetry.capture() as cap:
        run_workload()
    assert cap.registry.snapshot()["counters"]["guardrail.checks"] > 0
    assert cap.spans.by_name("centroid.update")

Everything inside the ``with`` records into a fresh registry/tracer/event
log; the previous global state (usually: disabled) is restored on exit, so
captures never leak across tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .events import EventLog, TelemetryEvent
from .registry import Counter, Gauge, Histogram, MetricsRegistry, render_key
from .tracing import (
    InMemoryExporter,
    JsonlExporter,
    Span,
    SpanRecord,
    Tracer,
    read_jsonl,
)

__all__ = [
    # facade
    "enabled", "enable", "disable", "counter", "gauge", "histogram",
    "span", "current_span", "emit", "snapshot", "dump", "merge", "reset",
    "registry", "tracer", "events", "capture", "Capture",
    # building blocks
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "render_key",
    "Tracer", "Span", "SpanRecord", "InMemoryExporter", "JsonlExporter",
    "read_jsonl", "EventLog", "TelemetryEvent",
]


# -- no-op singletons -------------------------------------------------------------
#
# Returned by the facade while telemetry is disabled.  They are stateless and
# reusable (including re-entrant ``with`` nesting), so the disabled path is
# exactly one branch plus an attribute call.

class _NoopInstrument:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NoopSpan:
    __slots__ = ()

    def set_attr(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_INSTRUMENT = _NoopInstrument()
NOOP_SPAN = _NoopSpan()


# -- global state -----------------------------------------------------------------

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()
_events = EventLog()


def enabled() -> bool:
    """Whether the facade records anything (the hot-path guard)."""
    return _enabled


def enable(
    registry_: Optional[MetricsRegistry] = None,
    tracer_: Optional[Tracer] = None,
    events_: Optional[EventLog] = None,
) -> None:
    """Turn the facade on, optionally swapping in fresh sinks."""
    global _enabled, _registry, _tracer, _events
    if registry_ is not None:
        _registry = registry_
    if tracer_ is not None:
        _tracer = tracer_
    if events_ is not None:
        _events = events_
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def registry() -> MetricsRegistry:
    return _registry


def tracer() -> Tracer:
    return _tracer


def events() -> EventLog:
    return _events


# -- the facade instrumented code calls --------------------------------------------

def counter(name: str, **labels: object):
    if not _enabled:
        return NOOP_INSTRUMENT
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: object):
    if not _enabled:
        return NOOP_INSTRUMENT
    return _registry.gauge(name, **labels)


def histogram(name: str, **labels: object):
    if not _enabled:
        return NOOP_INSTRUMENT
    return _registry.histogram(name, **labels)


def span(name: str, **attributes: object):
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attributes)


def current_span():
    """The innermost open span (a no-op span while disabled / outside spans)."""
    if not _enabled:
        return NOOP_SPAN
    active = _tracer.current_span()
    return active if active is not None else NOOP_SPAN


def emit(name: str, **fields: object) -> Optional[TelemetryEvent]:
    if not _enabled:
        return None
    return _events.emit(name, **fields)


def snapshot() -> Dict[str, Dict[str, object]]:
    """The active registry's snapshot (works whether or not enabled)."""
    return _registry.snapshot()


def dump():
    return _registry.dump()


def merge(dumped) -> None:
    _registry.merge(dumped)


def reset() -> None:
    """Clear the active registry, the event log, and nothing else."""
    _registry.reset()
    _events.clear()


# -- test harness -----------------------------------------------------------------

class Capture:
    """Handle yielded by :func:`capture`."""

    def __init__(self, registry_: MetricsRegistry, tracer_: Tracer,
                 events_: EventLog, spans_: InMemoryExporter) -> None:
        self.registry = registry_
        self.tracer = tracer_
        self.events = events_
        self.spans = spans_

    def counters(self) -> Dict[str, float]:
        return dict(self.registry.snapshot()["counters"])


@contextmanager
def capture(jsonl: Optional[object] = None) -> Iterator[Capture]:
    """Enable telemetry into fresh sinks for the duration of a block.

    An :class:`InMemoryExporter` is always attached; pass ``jsonl=<path>``
    to additionally stream spans to a JSONL trace file (closed on exit).
    Prior global state — including "disabled" — is restored afterwards.
    """
    global _enabled, _registry, _tracer, _events
    saved = (_enabled, _registry, _tracer, _events)
    reg, tr, ev = MetricsRegistry(), Tracer(), EventLog()
    memory = InMemoryExporter()
    tr.add_exporter(memory)
    jsonl_exporter = None
    if jsonl is not None:
        jsonl_exporter = JsonlExporter(jsonl)
        tr.add_exporter(jsonl_exporter)
    enable(registry_=reg, tracer_=tr, events_=ev)
    try:
        yield Capture(reg, tr, ev, memory)
    finally:
        if jsonl_exporter is not None:
            jsonl_exporter.close()
        _enabled, _registry, _tracer, _events = saved
