"""Benchmark and synthetic workloads: TPC-H, TPC-DS, Sec.-6.1 objectives,
data-size dynamics, and customer workload populations."""

from .customer import CustomerWorkload, generate_population
from .dynamics import (
    ConstantSize,
    DataSizeProcess,
    LinearGrowth,
    PeriodicSize,
    RandomWalkSize,
)
from .generator import QuerySpec, build_plan
from .streaming import BurstyArrivals, MicroBatchStream, micro_batch_plan
from .synthetic import SyntheticObjective, default_synthetic_objective, synthetic_space
from .tables import TPCDS_TABLES, TPCH_TABLES, Table
from .tpcds import TPCDS_QUERY_IDS, tpcds_plan, tpcds_spec, tpcds_suite
from .tpch import TPCH_QUERY_IDS, tpch_plan, tpch_spec, tpch_suite

__all__ = [
    "BurstyArrivals",
    "ConstantSize",
    "CustomerWorkload",
    "MicroBatchStream",
    "micro_batch_plan",
    "DataSizeProcess",
    "LinearGrowth",
    "PeriodicSize",
    "QuerySpec",
    "RandomWalkSize",
    "SyntheticObjective",
    "TPCDS_QUERY_IDS",
    "TPCDS_TABLES",
    "TPCH_QUERY_IDS",
    "TPCH_TABLES",
    "Table",
    "build_plan",
    "default_synthetic_objective",
    "generate_population",
    "synthetic_space",
    "tpcds_plan",
    "tpcds_spec",
    "tpcds_suite",
    "tpch_plan",
    "tpch_spec",
    "tpch_suite",
]
