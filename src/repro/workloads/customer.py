"""Simulated customer workload populations (Sec. 6.3 deployment analysis).

The paper's deployment numbers (Figs. 15–16) come from recurring internal
and external customer notebooks: >60 internal notebooks averaging ~17%
speed-up, and an external population of 416 query signatures where autotune
improves total execution time by ~20% — including a small pathological tail
(queries with huge variance or regressions unrelated to configuration).

This module generates such populations: each :class:`CustomerWorkload` is a
recurring "notebook" with its own query plans, data-size drift, noise level,
and (for a small fraction) pathologies that the guardrail must catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..sparksim.noise import NoiseModel
from ..sparksim.plan import PhysicalPlan
from .dynamics import DataSizeProcess, RandomWalkSize
from .generator import QuerySpec, build_plan
from .tables import TPCDS_TABLES, Table

__all__ = ["CustomerWorkload", "fleet_priority_class", "generate_population"]

# Deterministic interactive / batch / best-effort mix for fleet-scale
# serving: every 4th workload is an interactive notebook, every other one a
# scheduled batch job, the rest best-effort backfill.  Index-keyed (not
# random) so the same population gets the same priorities on every run.
_PRIORITY_CYCLE = ("interactive", "batch", "best_effort", "batch")


def fleet_priority_class(workload_index: int) -> str:
    """Admission-priority class name for the ``workload_index``-th workload."""
    return _PRIORITY_CYCLE[workload_index % len(_PRIORITY_CYCLE)]

_FACTS: Tuple[Table, ...] = (
    TPCDS_TABLES["store_sales"],
    TPCDS_TABLES["catalog_sales"],
    TPCDS_TABLES["web_sales"],
    TPCDS_TABLES["inventory"],
)
_DIMS: Tuple[Table, ...] = (
    TPCDS_TABLES["date_dim"],
    TPCDS_TABLES["item"],
    TPCDS_TABLES["customer"],
    TPCDS_TABLES["store"],
    TPCDS_TABLES["promotion"],
    TPCDS_TABLES["customer_address"],
)


@dataclass
class CustomerWorkload:
    """One recurring customer notebook.

    Attributes:
        workload_id: stable identifier (maps to ``artifact_id``).
        user_id: owning customer (models are never shared across users).
        plans: the queries the notebook executes each run.
        size_process: per-iteration input-size drift.
        noise: the workload's observational noise level.
        scale: base data scale multiplier.
        pathology: ``None``, ``"variance"`` (wild unexplained variance) or
            ``"drift"`` (performance regresses over time regardless of
            config) — the tail the guardrail exists for.
    """

    workload_id: str
    user_id: str
    plans: List[PhysicalPlan]
    size_process: DataSizeProcess
    noise: NoiseModel
    scale: float = 1.0
    pathology: Optional[str] = None

    def data_scale(self, iteration: int) -> float:
        """Relative input scale for run ``iteration``."""
        return self.scale * self.size_process(iteration) / self.size_process(0)

    def pathology_multiplier(self, iteration: int, rng: np.random.Generator) -> float:
        """Extra, configuration-independent slowdown for pathological workloads."""
        if self.pathology == "variance":
            return float(np.exp(rng.normal(0.0, 0.8)))
        if self.pathology == "drift":
            return 1.0 + 0.02 * iteration
        return 1.0


def _random_spec(name: str, rng: np.random.Generator) -> QuerySpec:
    fact = _FACTS[int(rng.integers(0, len(_FACTS)))]
    n_dims = int(rng.integers(0, 4))
    dim_idx = rng.choice(len(_DIMS), size=n_dims, replace=False) if n_dims else []
    dims = tuple(_DIMS[i] for i in dim_idx)
    return QuerySpec(
        name=name,
        fact=fact,
        dimensions=dims,
        fact_selectivity=float(10 ** rng.uniform(-1.5, 0.0)),
        dim_selectivities=tuple(float(10 ** rng.uniform(-1.5, 0.0)) for _ in dims),
        agg_reduction=float(10 ** rng.uniform(-4.0, -1.0)),
        has_sort=bool(rng.uniform() < 0.5),
        has_limit=bool(rng.uniform() < 0.4),
    )


def generate_population(
    n_workloads: int,
    seed: int = 0,
    pathological_fraction: float = 0.05,
    queries_per_workload: Tuple[int, int] = (1, 4),
    base_noise: Tuple[float, float] = (0.2, 0.6),
) -> List[CustomerWorkload]:
    """Generate a population of recurring customer workloads.

    Args:
        n_workloads: number of notebooks.
        seed: RNG seed — the population is fully deterministic.
        pathological_fraction: share of workloads with a pathology.
        queries_per_workload: inclusive range of queries per notebook.
        base_noise: range of fluctuation levels drawn per workload.
    """
    if n_workloads < 1:
        raise ValueError("n_workloads must be >= 1")
    if not 0 <= pathological_fraction < 1:
        raise ValueError("pathological_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    population: List[CustomerWorkload] = []
    for i in range(n_workloads):
        n_queries = int(rng.integers(queries_per_workload[0], queries_per_workload[1] + 1))
        plans = [
            build_plan(
                _random_spec(f"customer_w{i}_q{j}", rng),
                scale_factor=float(10 ** rng.uniform(-0.5, 1.0)),
            )
            for j in range(n_queries)
        ]
        fl = float(rng.uniform(*base_noise))
        sl = float(rng.uniform(0.1, 1.0))
        pathology: Optional[str] = None
        if rng.uniform() < pathological_fraction:
            pathology = "variance" if rng.uniform() < 0.5 else "drift"
        population.append(
            CustomerWorkload(
                workload_id=f"artifact-{i:04d}",
                user_id=f"user-{int(rng.integers(0, max(2, n_workloads // 4))):03d}",
                plans=plans,
                size_process=RandomWalkSize(
                    volatility=float(rng.uniform(0.02, 0.2)),
                    seed=int(rng.integers(0, 2**31 - 1)),
                ),
                noise=NoiseModel(fluctuation_level=fl, spike_level=sl),
                scale=1.0,
                pathology=pathology,
            )
        )
    return population
