"""TPC-H and TPC-DS table catalogs (row counts at scale factor 1).

Row counts follow the TPC specifications; plan generators scale them by the
benchmark scale factor (``SF``).  Dimension tables that the specs keep fixed
or sub-linear are scaled accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Table", "TPCH_TABLES", "TPCDS_TABLES"]


@dataclass(frozen=True)
class Table:
    """A benchmark base table.

    Attributes:
        name: table name.
        rows_sf1: row count at scale factor 1.
        row_bytes: average row width in bytes.
        scaling: ``"linear"`` (grows with SF), ``"log"`` (sub-linear, e.g.
            TPC-DS customer), or ``"fixed"`` (constant dimension).
    """

    name: str
    rows_sf1: float
    row_bytes: float
    scaling: str = "linear"

    def rows_at(self, scale_factor: float) -> float:
        if scale_factor <= 0:
            raise ValueError("scale factor must be > 0")
        if self.scaling == "linear":
            return self.rows_sf1 * scale_factor
        if self.scaling == "log":
            import math
            return self.rows_sf1 * (1.0 + math.log10(max(scale_factor, 1.0)) * 2.0)
        if self.scaling == "fixed":
            return self.rows_sf1
        raise ValueError(f"unknown scaling {self.scaling!r}")

    def bytes_at(self, scale_factor: float) -> float:
        return self.rows_at(scale_factor) * self.row_bytes


TPCH_TABLES: Dict[str, Table] = {
    t.name: t
    for t in [
        Table("lineitem", 6_001_215, 120),
        Table("orders", 1_500_000, 110),
        Table("partsupp", 800_000, 140),
        Table("part", 200_000, 150),
        Table("customer", 150_000, 160),
        Table("supplier", 10_000, 150),
        Table("nation", 25, 120, scaling="fixed"),
        Table("region", 5, 120, scaling="fixed"),
    ]
}

TPCDS_TABLES: Dict[str, Table] = {
    t.name: t
    for t in [
        Table("store_sales", 2_880_404, 100),
        Table("catalog_sales", 1_441_548, 160),
        Table("web_sales", 719_384, 160),
        Table("store_returns", 287_514, 90),
        Table("catalog_returns", 144_067, 110),
        Table("web_returns", 71_763, 110),
        Table("inventory", 11_745_000, 24),
        Table("customer", 100_000, 180, scaling="log"),
        Table("customer_address", 50_000, 110, scaling="log"),
        Table("customer_demographics", 1_920_800, 40, scaling="fixed"),
        Table("item", 18_000, 280, scaling="log"),
        Table("date_dim", 73_049, 140, scaling="fixed"),
        Table("time_dim", 86_400, 60, scaling="fixed"),
        Table("store", 12, 260, scaling="log"),
        Table("catalog_page", 11_718, 140, scaling="log"),
        Table("web_site", 30, 290, scaling="log"),
        Table("web_page", 60, 100, scaling="log"),
        Table("warehouse", 5, 120, scaling="log"),
        Table("promotion", 300, 130, scaling="log"),
        Table("household_demographics", 7_200, 30, scaling="fixed"),
    ]
}
