"""Streaming micro-batch workloads.

The Sec.-2.1 user study spans "'micro-batch' jobs lasting a few minutes ...
as well as exploratory notebook jobs and streaming workloads".  A structured
streaming job looks to the tuner like an extremely recurrent query: the same
small plan executed every batch interval over bursty input volumes.  This is
the regime where Spark's defaults hurt most — 200 shuffle partitions on a
few-MB micro-batch is pure scheduling overhead — and where per-query tuning
has the most iterations to learn from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparksim.plan import Operator, OpType, PhysicalPlan
from .dynamics import DataSizeProcess

__all__ = ["micro_batch_plan", "BurstyArrivals", "MicroBatchStream"]


def micro_batch_plan(
    events_per_batch: float = 200_000.0,
    row_bytes: float = 60.0,
    name: str = "stream_aggregate",
) -> PhysicalPlan:
    """A canonical streaming micro-batch: scan → filter → keyed aggregate.

    Args:
        events_per_batch: expected events in one batch at burst factor 1.
        row_bytes: average event width.
        name: plan name.
    """
    if events_per_batch <= 0:
        raise ValueError("events_per_batch must be > 0")
    rows = events_per_batch
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes),
        Operator(op_id=1, op_type=OpType.FILTER, est_rows_in=rows,
                 est_rows_out=rows * 0.8, row_bytes=row_bytes, children=(0,)),
        Operator(op_id=2, op_type=OpType.HASH_AGGREGATE, est_rows_in=rows * 0.8,
                 est_rows_out=max(rows * 0.01, 1.0), row_bytes=row_bytes * 0.5,
                 children=(1,)),
        Operator(op_id=3, op_type=OpType.PROJECT, est_rows_in=max(rows * 0.01, 1.0),
                 est_rows_out=max(rows * 0.01, 1.0), row_bytes=row_bytes * 0.5,
                 children=(2,)),
    ], name=name)


class BurstyArrivals(DataSizeProcess):
    """Batch volumes with a diurnal wave plus log-normal bursts.

    ``p(t) = base · (1 + wave·sin(2πt/period)) · burst_t`` with
    ``burst_t ~ LogNormal(0, burst_sigma)``, clamped to ``[0.1, 20]×base``.
    Deterministic and memoized per seed.
    """

    def __init__(
        self,
        base: float = 200_000.0,
        wave_amplitude: float = 0.5,
        period: int = 48,
        burst_sigma: float = 0.35,
        seed: Optional[int] = None,
    ):
        if base <= 0:
            raise ValueError("base must be > 0")
        if not 0 <= wave_amplitude < 1:
            raise ValueError("wave_amplitude must be in [0, 1)")
        if period < 2:
            raise ValueError("period must be >= 2")
        if burst_sigma < 0:
            raise ValueError("burst_sigma must be >= 0")
        self.base = base
        self.wave_amplitude = wave_amplitude
        self.period = period
        self.burst_sigma = burst_sigma
        self._rng = np.random.default_rng(seed)
        self._bursts: list = []

    def size(self, t: int) -> float:
        while len(self._bursts) <= t:
            self._bursts.append(float(np.exp(self._rng.normal(0.0, self.burst_sigma))))
        wave = 1.0 + self.wave_amplitude * np.sin(2.0 * np.pi * t / self.period)
        value = self.base * wave * self._bursts[t]
        return float(np.clip(value, 0.1 * self.base, 20.0 * self.base))


@dataclass
class MicroBatchStream:
    """One streaming job: a micro-batch plan plus its arrival process.

    ``scale(t)`` converts the arrival volume of batch ``t`` into the relative
    data scale that :class:`~repro.core.session.TuningSession` consumes.
    """

    plan: PhysicalPlan
    arrivals: BurstyArrivals

    @classmethod
    def create(
        cls,
        events_per_batch: float = 200_000.0,
        burst_sigma: float = 0.35,
        seed: Optional[int] = None,
    ) -> "MicroBatchStream":
        return cls(
            plan=micro_batch_plan(events_per_batch),
            arrivals=BurstyArrivals(base=events_per_batch,
                                    burst_sigma=burst_sigma, seed=seed),
        )

    def scale(self, t: int) -> float:
        return self.arrivals(t) / self.arrivals.base
