"""Plan construction from declarative query specs.

Real benchmark kits compile SQL through Spark's optimizer; here a
:class:`QuerySpec` (fact table, dimension tables, selectivities, shape flags)
is compiled into a :class:`PhysicalPlan` with consistent cardinality
estimates.  Specs are deterministic per query id so that "recurrent
workloads" share a plan signature across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from ..sparksim.plan import Operator, OpType, PhysicalPlan
from .tables import Table

__all__ = ["QuerySpec", "build_plan"]


@dataclass(frozen=True)
class QuerySpec:
    """Declarative description of a star-schema analytic query.

    Attributes:
        name: query name (e.g. ``tpch_q3``).
        fact: fact table scanned at full scale.
        dimensions: dimension tables joined against the fact, in join order.
        fact_selectivity: fraction of fact rows surviving the initial filter.
        dim_selectivities: per-dimension filter selectivity (same order).
        agg_reduction: output rows of the final aggregate as a fraction of
            its input (0 disables aggregation).
        has_sort: append an ORDER BY (Sort operator).
        has_window: append a window function.
        has_limit: append a LIMIT.
        second_fact: optional second fact table (UNION branch), e.g. TPC-DS
            cross-channel queries.
    """

    name: str
    fact: Table
    dimensions: Tuple[Table, ...] = ()
    fact_selectivity: float = 0.5
    dim_selectivities: Tuple[float, ...] = ()
    agg_reduction: float = 0.01
    has_sort: bool = False
    has_window: bool = False
    has_limit: bool = False
    second_fact: Optional[Table] = None

    def __post_init__(self) -> None:
        if not 0 < self.fact_selectivity <= 1:
            raise ValueError("fact_selectivity must be in (0, 1]")
        if self.dim_selectivities and len(self.dim_selectivities) != len(self.dimensions):
            raise ValueError("dim_selectivities must match dimensions")
        if not 0 <= self.agg_reduction <= 1:
            raise ValueError("agg_reduction must be in [0, 1]")


def build_plan(spec: QuerySpec, scale_factor: float = 1.0) -> PhysicalPlan:
    """Compile a :class:`QuerySpec` into a physical plan at ``scale_factor``."""
    ops: List[Operator] = []
    next_id = 0

    def add(op_type: str, rows_in: float, rows_out: float, row_bytes: float,
            children: Sequence[int] = ()) -> int:
        nonlocal next_id
        op = Operator(
            op_id=next_id,
            op_type=op_type,
            est_rows_in=max(rows_in, 1.0),
            est_rows_out=max(rows_out, 1.0),
            row_bytes=row_bytes,
            children=tuple(children),
        )
        ops.append(op)
        next_id += 1
        return op.op_id

    def scan_filter(table: Table, selectivity: float) -> Tuple[int, float, float]:
        rows = table.rows_at(scale_factor)
        scan = add(OpType.TABLE_SCAN, rows, rows, table.row_bytes)
        out_rows = rows * selectivity
        filt = add(OpType.FILTER, rows, out_rows, table.row_bytes, [scan])
        return filt, out_rows, table.row_bytes

    # Fact side (possibly a union of two channels).
    current, fact_rows, fact_width = scan_filter(spec.fact, spec.fact_selectivity)
    if spec.second_fact is not None:
        other, other_rows, _ = scan_filter(spec.second_fact, spec.fact_selectivity)
        union_rows = fact_rows + other_rows
        current = add(OpType.UNION, union_rows, union_rows, fact_width, [current, other])
        fact_rows = union_rows

    # Join dimensions one at a time (left-deep).
    dim_sels = spec.dim_selectivities or tuple(0.3 for _ in spec.dimensions)
    rows = fact_rows
    width = fact_width
    for dim, sel in zip(spec.dimensions, dim_sels):
        dim_node, dim_rows, dim_width = scan_filter(dim, sel)
        rows = rows * min(sel * 1.5, 1.0)  # each dim filter prunes the fact side
        width = width + dim_width * 0.3    # a few projected columns widen rows
        current = add(OpType.JOIN, fact_rows + dim_rows, rows, width, [current, dim_node])
        fact_rows = rows

    if spec.agg_reduction > 0:
        out = max(rows * spec.agg_reduction, 1.0)
        current = add(OpType.HASH_AGGREGATE, rows, out, width * 0.6, [current])
        rows, width = out, width * 0.6

    if spec.has_window:
        current = add(OpType.WINDOW, rows, rows, width, [current])

    if spec.has_sort:
        current = add(OpType.SORT, rows, rows, width, [current])

    if spec.has_limit:
        out = min(rows, 100.0)
        current = add(OpType.LIMIT, rows, out, width, [current])
        rows = out

    final = add(OpType.PROJECT, rows, rows, width, [current])
    return PhysicalPlan(ops, name=spec.name)
