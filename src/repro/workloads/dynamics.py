"""Data-size processes for dynamic workloads (Sec. 6.1).

The paper evaluates two dynamic regimes: "workloads with data sizes
increasing linearly over time" and "workloads with periodic changes in data
size, where the input data size follows f(t) = t %% K".  A drifting
random-walk process is added for the customer-workload simulations, where
"recurring workloads in production typically involve varying input sizes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "DataSizeProcess",
    "ConstantSize",
    "LinearGrowth",
    "PeriodicSize",
    "RandomWalkSize",
    "StepSize",
    "RampSize",
    "FlipFlopSize",
]


class DataSizeProcess:
    """Maps an iteration index ``t`` to an input data size ``p(t) > 0``."""

    def size(self, t: int) -> float:
        raise NotImplementedError

    def __call__(self, t: int) -> float:
        if t < 0:
            raise ValueError("iteration index must be >= 0")
        value = self.size(t)
        if value <= 0:
            raise RuntimeError(f"{type(self).__name__} produced non-positive size {value}")
        return value


@dataclass(frozen=True)
class ConstantSize(DataSizeProcess):
    """Fixed input size — the 'constant workloads' setting."""

    value: float = 1000.0

    def size(self, t: int) -> float:
        return self.value


@dataclass(frozen=True)
class LinearGrowth(DataSizeProcess):
    """``p(t) = p0 + slope · t`` — linearly increasing data."""

    initial: float = 1000.0
    slope: float = 20.0

    def size(self, t: int) -> float:
        return self.initial + self.slope * t


@dataclass(frozen=True)
class PeriodicSize(DataSizeProcess):
    """``p(t) = p0 + slope · (t mod K)`` — the paper's periodic ``f(t) = t %% K``."""

    initial: float = 1000.0
    slope: float = 50.0
    period: int = 20

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")

    def size(self, t: int) -> float:
        return self.initial + self.slope * (t % self.period)


@dataclass(frozen=True)
class StepSize(DataSizeProcess):
    """``p(t) = p0`` before ``at``, ``p0 · factor`` from ``at`` on.

    The canonical adversarial regime change: a pipeline repointed at a
    ``factor``× input overnight.  Used by the ``ext_drift_adversarial``
    schedules and the task-switch test battery.
    """

    initial: float = 1000.0
    factor: float = 6.0
    at: int = 20

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be > 0")
        if self.at < 0:
            raise ValueError("at must be >= 0")

    def size(self, t: int) -> float:
        return self.initial * self.factor if t >= self.at else self.initial


@dataclass(frozen=True)
class RampSize(DataSizeProcess):
    """Linear ramp from ``p0`` to ``p0 · factor`` over ``length`` steps.

    The slow-drift adversary: each individual step is too small for a
    signature check, so only the accumulated cost shift reveals the change.
    """

    initial: float = 1000.0
    factor: float = 6.0
    start: int = 10
    length: int = 10

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be > 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.length < 1:
            raise ValueError("length must be >= 1")

    def size(self, t: int) -> float:
        if t < self.start:
            return self.initial
        frac = min((t - self.start) / self.length, 1.0)
        return self.initial * (1.0 + (self.factor - 1.0) * frac)


@dataclass(frozen=True)
class FlipFlopSize(DataSizeProcess):
    """A→B→A square wave: ``period`` steps at ``p0``, ``period`` at ``p0 · factor``.

    The flip-flop adversary — every boundary is a fresh regime change, and
    returning to A tests that the detector re-anchors instead of treating
    the original regime as one long anomaly.
    """

    initial: float = 1000.0
    factor: float = 6.0
    period: int = 15

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be > 0")
        if self.period < 1:
            raise ValueError("period must be >= 1")

    def size(self, t: int) -> float:
        return self.initial * self.factor if (t // self.period) % 2 else self.initial


class RandomWalkSize(DataSizeProcess):
    """Multiplicative log-normal random walk, clamped to a band.

    Models production inputs that drift without a clean trend.  The walk is
    deterministic given the seed, and memoized so ``size(t)`` is consistent
    across repeated calls.
    """

    def __init__(
        self,
        initial: float = 1000.0,
        volatility: float = 0.1,
        min_factor: float = 0.25,
        max_factor: float = 4.0,
        seed: Optional[int] = None,
    ):
        if initial <= 0:
            raise ValueError("initial must be > 0")
        if volatility < 0:
            raise ValueError("volatility must be >= 0")
        if not 0 < min_factor <= 1 <= max_factor:
            raise ValueError("need min_factor <= 1 <= max_factor")
        self.initial = initial
        self.volatility = volatility
        self.min_factor = min_factor
        self.max_factor = max_factor
        self._rng = np.random.default_rng(seed)
        self._path = [initial]

    def size(self, t: int) -> float:
        while len(self._path) <= t:
            step = float(np.exp(self._rng.normal(0.0, self.volatility)))
            nxt = self._path[-1] * step
            nxt = min(max(nxt, self.initial * self.min_factor), self.initial * self.max_factor)
            self._path.append(nxt)
        return self._path[t]
