"""The Sec.-6.1 synthetic optimization function.

"We design a synthetic optimization function that models the relationship
between observed performance (e.g., execution time), data size, and three
tunable configurations as a convex function" — with Eq.-8 noise injected on
top (Fig. 8).  Performance scales with data size, so the optimizer must
separate configuration effects from data-size effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config_space import ConfigSpace, Parameter
from ..sparksim.noise import NoiseModel, high_noise

__all__ = ["SyntheticObjective", "synthetic_space", "default_synthetic_objective"]


def synthetic_space(dim: int = 3) -> ConfigSpace:
    """A generic continuous space with ``dim`` knobs in [0, 100]."""
    return ConfigSpace(
        [Parameter(name=f"conf{i + 1}", low=0.0, high=100.0, default=50.0) for i in range(dim)]
    )


@dataclass
class SyntheticObjective:
    """Convex quadratic bowl over the internal config axes, scaled by data size.

    ``g0(c, p) = (p / p_ref)^γ · (base + Σ_i w_i · ((c_i − opt_i) / span_i)²)``

    Attributes:
        space: the configuration space.
        optimum: internal-axis location of the noiseless minimum.
        weights: per-dimension curvature weights ``w_i``.
        base_time: time at the optimum for ``p = reference_size``.
        curvature_scale: overall multiplier on the quadratic term.
        reference_size: data size at which ``g0(opt) = base_time``.
        size_exponent: γ — how execution time scales with data size.  1.0 is
            proportional; production systems are typically sub-linear
            (γ < 1), which is exactly why the paper found the ``r/p``
            normalization of FIND_BEST v2 biased ("the ratio r/p often
            decreases as p increases").
        noise: Eq.-8 observational noise (``None`` = deterministic).
    """

    space: ConfigSpace
    optimum: np.ndarray
    weights: np.ndarray
    base_time: float = 100.0
    curvature_scale: float = 4.0
    reference_size: float = 1000.0
    size_exponent: float = 1.0
    noise: Optional[NoiseModel] = None

    def __post_init__(self) -> None:
        self.optimum = self.space.clip(np.asarray(self.optimum, dtype=float))
        self.weights = np.asarray(self.weights, dtype=float)
        if self.weights.shape != (self.space.dim,):
            raise ValueError("weights must have one entry per dimension")
        if np.any(self.weights < 0):
            raise ValueError("weights must be >= 0")
        if self.base_time <= 0 or self.reference_size <= 0:
            raise ValueError("base_time and reference_size must be > 0")
        if self.size_exponent <= 0:
            raise ValueError("size_exponent must be > 0")

    # -- noiseless ----------------------------------------------------------------

    def true_value(self, vector: np.ndarray, data_size: Optional[float] = None) -> float:
        """Noiseless execution time ``g0`` at internal vector ``vector``."""
        data_size = self.reference_size if data_size is None else data_size
        vector = np.asarray(vector, dtype=float)
        spans = self.space.internal_bounds[:, 1] - self.space.internal_bounds[:, 0]
        z = (vector - self.optimum) / spans
        quad = float(np.sum(self.weights * z * z))
        scale = (data_size / self.reference_size) ** self.size_exponent
        return scale * self.base_time * (1.0 + self.curvature_scale * quad)

    @property
    def optimal_value(self) -> float:
        """``g0`` at the optimum for the reference data size."""
        return self.base_time

    def optimality_gap(self, vector: np.ndarray, dimension: Optional[int] = None) -> float:
        """|distance| from the optimum — overall (L2) or along one dimension.

        The paper reports "the absolute difference from the optimal value for
        the most impactful configuration" (Figs. 10b, 11d).
        """
        vector = np.asarray(vector, dtype=float)
        diff = vector - self.optimum
        if dimension is None:
            return float(np.linalg.norm(diff))
        return float(abs(diff[dimension]))

    @property
    def most_impactful_dimension(self) -> int:
        return int(np.argmax(self.weights))

    # -- noisy observation ----------------------------------------------------------

    def observe(
        self, vector: np.ndarray, data_size: Optional[float], rng: np.random.Generator
    ) -> float:
        """Noisy observed time — Eq. 8 applied to :meth:`true_value`."""
        g0 = self.true_value(vector, data_size)
        if self.noise is None:
            return g0
        return self.noise.apply(g0, rng)


def default_synthetic_objective(
    noise: Optional[NoiseModel] = None,
    seed: int = 7,
    dim: int = 3,
    size_exponent: float = 1.0,
) -> SyntheticObjective:
    """The canonical objective used across the Sec.-6.1 experiments.

    The optimum sits away from the default (center) configuration so tuning
    has real work to do; the first dimension is most impactful, matching the
    paper's focus on a single "most impactful configuration".
    """
    space = synthetic_space(dim)
    rng = np.random.default_rng(seed)
    bounds = space.internal_bounds
    # Optimum in the 15–35% region of each axis, away from the 50% default.
    optimum = bounds[:, 0] + (bounds[:, 1] - bounds[:, 0]) * rng.uniform(0.15, 0.35, size=dim)
    weights = np.linspace(1.0, 0.4, dim)
    return SyntheticObjective(
        space=space,
        optimum=optimum,
        weights=weights,
        # Steep enough that bad corners cost ~2 orders of magnitude — the
        # paper's synthetic plots span a wide log-scale performance range.
        curvature_scale=25.0,
        size_exponent=size_exponent,
        noise=noise if noise is not None else high_noise(),
    )
