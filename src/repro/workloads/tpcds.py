"""TPC-DS benchmark queries (99), generated deterministically per query id.

TPC-DS queries cluster around sales channels (store / catalog / web), join a
fact (or two, for cross-channel queries) against a handful of dimensions,
aggregate, and often sort/limit.  We synthesize one spec per query id from a
seeded RNG so that every ``tpcds_plan(q, sf)`` call is reproducible and every
query has a distinct but stable plan signature — which is what the offline
flighting pipeline and transfer-learning experiments rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sparksim.plan import PhysicalPlan
from .generator import QuerySpec, build_plan
from .tables import TPCDS_TABLES as T, Table

__all__ = ["TPCDS_QUERY_IDS", "tpcds_spec", "tpcds_plan", "tpcds_suite"]

TPCDS_QUERY_IDS = tuple(range(1, 100))

_FACTS: Tuple[Table, ...] = (
    T["store_sales"],
    T["catalog_sales"],
    T["web_sales"],
    T["store_returns"],
    T["inventory"],
)

_DIMS: Tuple[Table, ...] = (
    T["date_dim"],
    T["item"],
    T["customer"],
    T["customer_address"],
    T["customer_demographics"],
    T["store"],
    T["promotion"],
    T["household_demographics"],
    T["warehouse"],
    T["time_dim"],
)

_spec_cache: Dict[int, QuerySpec] = {}


def tpcds_spec(query_id: int) -> QuerySpec:
    """Deterministic spec for TPC-DS query ``query_id`` (1–99)."""
    if query_id not in range(1, 100):
        raise ValueError(f"TPC-DS has queries 1..99, got {query_id}")
    if query_id in _spec_cache:
        return _spec_cache[query_id]

    rng = np.random.default_rng(97_000 + query_id)
    fact = _FACTS[int(rng.integers(0, 3))] if query_id % 7 else _FACTS[int(rng.integers(0, 5))]
    n_dims = int(rng.integers(1, 6))
    dim_idx = rng.choice(len(_DIMS), size=n_dims, replace=False)
    dims = tuple(_DIMS[i] for i in dim_idx)
    fact_sel = float(10 ** rng.uniform(-2.0, 0.0))           # 1%..100%
    dim_sels = tuple(float(10 ** rng.uniform(-2.0, 0.0)) for _ in dims)
    agg_reduction = float(10 ** rng.uniform(-5.0, -1.0))
    # Roughly a third of TPC-DS queries are cross-channel (UNION of facts).
    second_fact: Optional[Table] = None
    if rng.uniform() < 0.3:
        others = [f for f in _FACTS[:3] if f.name != fact.name]
        second_fact = others[int(rng.integers(0, len(others)))]
    spec = QuerySpec(
        name=f"tpcds_q{query_id:02d}",
        fact=fact,
        dimensions=dims,
        fact_selectivity=fact_sel,
        dim_selectivities=dim_sels,
        agg_reduction=agg_reduction,
        has_sort=bool(rng.uniform() < 0.7),
        has_window=bool(rng.uniform() < 0.25),
        has_limit=bool(rng.uniform() < 0.6),
        second_fact=second_fact,
    )
    _spec_cache[query_id] = spec
    return spec


def tpcds_plan(query_id: int, scale_factor: float = 1.0) -> PhysicalPlan:
    """Physical plan of TPC-DS query ``query_id`` at ``scale_factor``."""
    return build_plan(tpcds_spec(query_id), scale_factor)


def tpcds_suite(
    scale_factor: float = 1.0, query_ids: Optional[List[int]] = None
) -> List[PhysicalPlan]:
    """Plans for ``query_ids`` (default: all 99) at ``scale_factor``."""
    ids = query_ids if query_ids is not None else list(TPCDS_QUERY_IDS)
    return [tpcds_plan(q, scale_factor) for q in ids]
