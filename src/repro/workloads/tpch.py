"""TPC-H benchmark queries as declarative specs (all 22).

The table sets and shapes follow the TPC-H specification queries; the
selectivities approximate the spec's predicate selectivities.  Fig. 14 of the
paper tunes all 22 queries at SF=100 with a baseline model trained on TPC-DS.
"""

from __future__ import annotations

from typing import Dict, List

from ..sparksim.plan import PhysicalPlan
from .generator import QuerySpec, build_plan
from .tables import TPCH_TABLES as T

__all__ = ["TPCH_QUERY_IDS", "tpch_spec", "tpch_plan", "tpch_suite"]

TPCH_QUERY_IDS = tuple(range(1, 23))

# (fact, dims, fact_sel, agg_reduction, sort, limit)
_SPECS: Dict[int, QuerySpec] = {
    1: QuerySpec("tpch_q01", T["lineitem"], (), 0.98, (), 1e-6, True, False, False),
    2: QuerySpec("tpch_q02", T["partsupp"], (T["part"], T["supplier"], T["nation"], T["region"]),
                 1.0, (0.004, 0.2, 1.0, 0.2), 0.001, True, False, True),
    3: QuerySpec("tpch_q03", T["lineitem"], (T["orders"], T["customer"]),
                 0.54, (0.48, 0.2), 0.02, True, False, True),
    4: QuerySpec("tpch_q04", T["orders"], (T["lineitem"],),
                 0.038, (0.63,), 1e-5, True, False, False),
    5: QuerySpec("tpch_q05", T["lineitem"], (T["orders"], T["customer"], T["supplier"],
                 T["nation"], T["region"]), 1.0, (0.15, 1.0, 1.0, 1.0, 0.2),
                 1e-5, True, False, False),
    6: QuerySpec("tpch_q06", T["lineitem"], (), 0.019, (), 1e-6, False, False, False),
    7: QuerySpec("tpch_q07", T["lineitem"], (T["orders"], T["customer"], T["supplier"],
                 T["nation"]), 0.3, (1.0, 1.0, 1.0, 0.08), 1e-4, True, False, False),
    8: QuerySpec("tpch_q08", T["lineitem"], (T["orders"], T["customer"], T["part"],
                 T["supplier"], T["nation"], T["region"]),
                 1.0, (0.3, 1.0, 0.007, 1.0, 1.0, 0.2), 1e-5, True, False, False),
    9: QuerySpec("tpch_q09", T["lineitem"], (T["orders"], T["part"], T["partsupp"],
                 T["supplier"], T["nation"]), 1.0, (1.0, 0.05, 1.0, 1.0, 1.0),
                 1e-4, True, False, False),
    10: QuerySpec("tpch_q10", T["lineitem"], (T["orders"], T["customer"], T["nation"]),
                  0.25, (0.03, 1.0, 1.0), 0.1, True, False, True),
    11: QuerySpec("tpch_q11", T["partsupp"], (T["supplier"], T["nation"]),
                  1.0, (1.0, 0.04), 0.05, True, False, False),
    12: QuerySpec("tpch_q12", T["lineitem"], (T["orders"],),
                  0.005, (1.0,), 1e-5, True, False, False),
    13: QuerySpec("tpch_q13", T["orders"], (T["customer"],),
                  0.98, (1.0,), 1e-4, True, False, False),
    14: QuerySpec("tpch_q14", T["lineitem"], (T["part"],),
                  0.013, (1.0,), 1e-6, False, False, False),
    15: QuerySpec("tpch_q15", T["lineitem"], (T["supplier"],),
                  0.04, (1.0,), 0.001, True, False, False),
    16: QuerySpec("tpch_q16", T["partsupp"], (T["part"], T["supplier"]),
                  1.0, (0.2, 0.99), 0.02, True, False, False),
    17: QuerySpec("tpch_q17", T["lineitem"], (T["part"],),
                  1.0, (0.001,), 1e-6, False, False, False),
    18: QuerySpec("tpch_q18", T["lineitem"], (T["orders"], T["customer"]),
                  1.0, (0.0001, 1.0), 0.001, True, False, True),
    19: QuerySpec("tpch_q19", T["lineitem"], (T["part"],),
                  0.02, (0.002,), 1e-6, False, False, False),
    20: QuerySpec("tpch_q20", T["lineitem"], (T["partsupp"], T["part"], T["supplier"],
                  T["nation"]), 0.15, (1.0, 0.01, 1.0, 0.04), 0.001, True, False, False),
    21: QuerySpec("tpch_q21", T["lineitem"], (T["orders"], T["supplier"], T["nation"]),
                  0.5, (0.49, 1.0, 0.04), 0.001, True, False, True),
    22: QuerySpec("tpch_q22", T["customer"], (T["orders"],),
                  0.25, (0.98,), 0.01, True, False, False),
}


def tpch_spec(query_id: int) -> QuerySpec:
    """The declarative spec for TPC-H query ``query_id`` (1–22)."""
    if query_id not in _SPECS:
        raise ValueError(f"TPC-H has queries 1..22, got {query_id}")
    return _SPECS[query_id]


def tpch_plan(query_id: int, scale_factor: float = 1.0) -> PhysicalPlan:
    """Physical plan of TPC-H query ``query_id`` at ``scale_factor``."""
    return build_plan(tpch_spec(query_id), scale_factor)


def tpch_suite(scale_factor: float = 1.0) -> List[PhysicalPlan]:
    """All 22 TPC-H plans in query order."""
    return [tpch_plan(q, scale_factor) for q in TPCH_QUERY_IDS]
