"""Workload embedding (Sec. 4.1).

Each embedding vector has three components:

1. the estimated cardinality of the root node operator,
2. the total input cardinality of all leaf node operators,
3. the frequency of operator occurrences within the execution plan —
   either plain physical types (the [53] baseline) or *virtual operators*
   that additionally bucket by input/output sizes.

Cardinalities are ``log10``-scaled so that workloads spanning orders of
magnitude remain comparable inside a single surrogate model.  Embeddings
are available at compile time and need no extra training.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..sparksim.plan import OP_TYPES, PhysicalPlan
from .structure import STRUCTURE_FEATURE_NAMES, structural_features
from .virtual_ops import VirtualOperatorScheme

__all__ = ["WorkloadEmbedder"]


def _log_cardinality(value: float) -> float:
    return math.log10(max(value, 1.0))


@dataclass
class WorkloadEmbedder:
    """Maps a :class:`PhysicalPlan` to a fixed-length embedding vector.

    Args:
        use_virtual_operators: bucket operator counts by (input size,
            selectivity) — the paper's enhanced embedding.  When ``False``
            the embedding reduces to the plain operator-count scheme of
            Phoebe [53], the ablation baseline of Sec. 6.2.
        scheme: bucketing thresholds (only used with virtual operators).
        include_structure: append the structural plan features of
            :mod:`repro.embedding.structure` — the paper's future-work
            direction for "complex execution plan structures".
    """

    use_virtual_operators: bool = True
    scheme: VirtualOperatorScheme = field(default_factory=VirtualOperatorScheme)
    include_structure: bool = False

    @property
    def dim(self) -> int:
        """Embedding vector length (stable across all plans)."""
        per_type = self.scheme.buckets_per_type if self.use_virtual_operators else 1
        extra = len(STRUCTURE_FEATURE_NAMES) if self.include_structure else 0
        return 2 + len(OP_TYPES) * per_type + extra

    def feature_names(self) -> List[str]:
        """Human-readable name of each vector entry (for dashboards/debugging)."""
        names = ["log10_root_cardinality", "log10_total_leaf_cardinality"]
        for op_type in OP_TYPES:
            if self.use_virtual_operators:
                for i in range(self.scheme.n_input_buckets):
                    for j in range(self.scheme.n_ratio_buckets):
                        names.append(f"count:{op_type}[in={i},sel={j}]")
            else:
                names.append(f"count:{op_type}")
        if self.include_structure:
            names.extend(f"structure:{n}" for n in STRUCTURE_FEATURE_NAMES)
        return names

    def embed(self, plan: PhysicalPlan) -> np.ndarray:
        """Compute the embedding vector of ``plan``."""
        per_type = self.scheme.buckets_per_type if self.use_virtual_operators else 1
        counts_dim = 2 + len(OP_TYPES) * per_type
        vec = np.zeros(self.dim)
        vec[0] = _log_cardinality(plan.root_cardinality)
        vec[1] = _log_cardinality(plan.total_leaf_cardinality)
        type_index = {t: k for k, t in enumerate(OP_TYPES)}
        for op in plan.operators:
            base = 2 + type_index[op.op_type] * per_type
            offset = self.scheme.virtual_index(op) if self.use_virtual_operators else 0
            vec[base + offset] += 1.0
        if self.include_structure:
            vec[counts_dim:] = structural_features(plan)
        return vec

    def embed_many(self, plans) -> np.ndarray:
        """Stack embeddings for a sequence of plans, shape ``(n, dim)``.

        Exactly equal to stacking :meth:`embed` calls, but the operator
        counting runs as one vectorized pass over all plans' operators:
        bucket lookups go through ``np.searchsorted`` (identical to the
        per-operator ``bisect_right``) and land in the matrix via a single
        unbuffered ``np.add.at`` scatter.  Counts are small-integer float
        additions, so the accumulation is exact regardless of order.
        """
        plans = list(plans)
        if not plans:
            return np.empty((0, self.dim))
        per_type = self.scheme.buckets_per_type if self.use_virtual_operators else 1
        counts_dim = 2 + len(OP_TYPES) * per_type
        mat = np.zeros((len(plans), self.dim))
        type_index = {t: k for k, t in enumerate(OP_TYPES)}
        rows: List[int] = []
        type_codes: List[int] = []
        rows_in: List[float] = []
        rows_out: List[float] = []
        for i, plan in enumerate(plans):
            mat[i, 0] = _log_cardinality(plan.root_cardinality)
            mat[i, 1] = _log_cardinality(plan.total_leaf_cardinality)
            for op in plan.operators:
                rows.append(i)
                type_codes.append(type_index[op.op_type])
                rows_in.append(op.est_rows_in)
                rows_out.append(op.est_rows_out)
        columns = 2 + np.asarray(type_codes, dtype=np.intp) * per_type
        if self.use_virtual_operators and rows:
            rin = np.asarray(rows_in)
            rout = np.asarray(rows_out)
            in_bucket = np.searchsorted(self.scheme.input_thresholds, rin, side="right")
            ratio = np.where(rin > 0, rout / np.where(rin > 0, rin, 1.0), 1.0)
            ratio_bucket = np.searchsorted(
                self.scheme.ratio_thresholds, ratio, side="right"
            )
            columns = columns + in_bucket * self.scheme.n_ratio_buckets + ratio_bucket
        if rows:
            np.add.at(mat, (np.asarray(rows, dtype=np.intp), columns), 1.0)
        if self.include_structure:
            for i, plan in enumerate(plans):
                mat[i, counts_dim:] = structural_features(plan)
        return mat
