"""Workload embeddings with virtual operators (Sec. 4.1)."""

from .embedder import WorkloadEmbedder
from .structure import STRUCTURE_FEATURE_NAMES, structural_features
from .virtual_ops import VirtualOperatorScheme

__all__ = [
    "STRUCTURE_FEATURE_NAMES",
    "VirtualOperatorScheme",
    "WorkloadEmbedder",
    "structural_features",
]
