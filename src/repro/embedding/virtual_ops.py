"""Virtual operators (Sec. 4.1, Fig. 4).

A *virtual operator* refines a physical operator type by bucketing the
optimizer's input-size and output/input-ratio estimates: two ``Filter``
nodes land in the same virtual type when both their input magnitude and
their selectivity fall in the same buckets.  The bucket thresholds are the
"clustering thresholds for input and output sizes" the paper fine-tunes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Tuple

from ..sparksim.plan import Operator

__all__ = ["VirtualOperatorScheme"]


@dataclass(frozen=True)
class VirtualOperatorScheme:
    """Bucketing rules that map an operator to its virtual type.

    Attributes:
        input_thresholds: ascending row-count boundaries for input-size
            buckets (``len + 1`` buckets).
        ratio_thresholds: ascending boundaries on ``rows_out / rows_in``
            (selectivity) for output buckets.
    """

    input_thresholds: Tuple[float, ...] = (1e4, 1e6, 1e8)
    ratio_thresholds: Tuple[float, ...] = (0.01, 0.5)

    def __post_init__(self) -> None:
        if list(self.input_thresholds) != sorted(self.input_thresholds):
            raise ValueError("input_thresholds must be ascending")
        if list(self.ratio_thresholds) != sorted(self.ratio_thresholds):
            raise ValueError("ratio_thresholds must be ascending")
        if any(t <= 0 for t in self.input_thresholds):
            raise ValueError("input_thresholds must be positive")
        if any(not 0 < t for t in self.ratio_thresholds):
            raise ValueError("ratio_thresholds must be positive")

    @property
    def n_input_buckets(self) -> int:
        return len(self.input_thresholds) + 1

    @property
    def n_ratio_buckets(self) -> int:
        return len(self.ratio_thresholds) + 1

    @property
    def buckets_per_type(self) -> int:
        return self.n_input_buckets * self.n_ratio_buckets

    def input_bucket(self, rows_in: float) -> int:
        return bisect.bisect_right(self.input_thresholds, rows_in)

    def ratio_bucket(self, rows_in: float, rows_out: float) -> int:
        ratio = rows_out / rows_in if rows_in > 0 else 1.0
        return bisect.bisect_right(self.ratio_thresholds, ratio)

    def virtual_index(self, op: Operator) -> int:
        """Flat index of the operator's virtual bucket within its type."""
        i = self.input_bucket(op.est_rows_in)
        j = self.ratio_bucket(op.est_rows_in, op.est_rows_out)
        return i * self.n_ratio_buckets + j

    def virtual_type(self, op: Operator) -> str:
        """Human-readable virtual type, e.g. ``Filter[in=2,sel=0]``."""
        i = self.input_bucket(op.est_rows_in)
        j = self.ratio_bucket(op.est_rows_in, op.est_rows_out)
        return f"{op.op_type}[in={i},sel={j}]"
