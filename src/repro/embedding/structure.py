"""Structural plan features — the paper's future-work embedding direction.

Sec. 4.1: "A potential direction for future work is to introduce more
comprehensive workload characterization methods that incorporate complex
execution plan structures, such as those proposed in [43]."

These features summarize the plan *graph* beyond operator counts: depth,
fan-in, pipeline-breaker structure, and join-tree shape — properties that
determine how sensitive a plan is to shuffle/broadcast knobs.  They are
computed from the DAG with networkx and are scale-invariant (cardinalities
never enter), complementing the count-based components.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from ..sparksim.plan import OpType, PhysicalPlan

__all__ = ["STRUCTURE_FEATURE_NAMES", "structural_features"]

# Operators that materialize their input (break pipelined execution).
_PIPELINE_BREAKERS = frozenset({
    OpType.EXCHANGE, OpType.SORT, OpType.HASH_AGGREGATE, OpType.JOIN, OpType.WINDOW,
})

STRUCTURE_FEATURE_NAMES: List[str] = [
    "plan_depth",
    "n_operators",
    "max_fan_in",
    "mean_fan_in",
    "n_pipeline_breakers",
    "longest_breaker_chain",
    "join_count",
    "join_left_deep_fraction",
    "leaf_count",
    "bushiness",
]


def _longest_breaker_chain(plan: PhysicalPlan) -> int:
    """Length of the longest root-ward path counting only pipeline breakers."""
    graph = plan.graph
    memo: Dict[int, int] = {}

    def chain(node: int) -> int:
        if node in memo:
            return memo[node]
        is_breaker = 1 if plan.operator(node).op_type in _PIPELINE_BREAKERS else 0
        preds = list(graph.predecessors(node))
        memo[node] = is_breaker + (max(chain(p) for p in preds) if preds else 0)
        return memo[node]

    return max(chain(n) for n in graph.nodes)


def structural_features(plan: PhysicalPlan) -> np.ndarray:
    """Compute the :data:`STRUCTURE_FEATURE_NAMES` vector for ``plan``.

    Returns:
        float vector of length ``len(STRUCTURE_FEATURE_NAMES)``.
    """
    graph = plan.graph
    n = len(plan)
    depth = nx.dag_longest_path_length(graph) if n > 1 else 0
    fan_ins = [graph.in_degree(node) for node in graph.nodes]
    joins = [op for op in plan.operators if op.op_type == OpType.JOIN]
    breakers = sum(
        1 for op in plan.operators if op.op_type in _PIPELINE_BREAKERS
    )

    # Left-deep joins have at most one join among their inputs; a bushy join
    # has joins on both sides.
    left_deep = 0
    for op in joins:
        child_joins = sum(
            1 for c in op.children if plan.operator(c).op_type == OpType.JOIN
        )
        if child_joins <= 1:
            left_deep += 1

    leaves = len(plan.leaves)
    # Bushiness: 0 for a pure chain, approaching 1 for a balanced tree.
    bushiness = 0.0
    if depth > 0 and leaves > 1:
        bushiness = min((leaves - 1) / depth, 1.0)

    return np.array([
        float(depth),
        float(n),
        float(max(fan_ins)),
        float(np.mean(fan_ins)),
        float(breakers),
        float(_longest_breaker_chain(plan)),
        float(len(joins)),
        float(left_deep / len(joins)) if joins else 1.0,
        float(leaves),
        bushiness,
    ])
