"""The conservative exploration policy (Sec. 6.3).

"In production, we employ a conservative guardrail policy that enables
autotuning only when query performance improves, which contributes to the
overall performance gains observed."

Unlike the hard :class:`~repro.core.guardrail.Guardrail` (which disables
tuning permanently), this wrapper *pauses* exploration whenever the recent
window performs worse than the incumbent best configuration, replaying the
incumbent during a cool-down while the inner optimizer keeps learning from
every observation ("even when the ML model fails to recommend an optimal
candidate, the centroid update process still derives value from those
observations").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .observation import Observation
from .optimizer_base import Optimizer

__all__ = ["ConservativePolicy"]


class ConservativePolicy(Optimizer):
    """Explore only while performance beats the incumbent.

    Args:
        inner: the wrapped optimizer (typically ``CentroidLearning``).
        margin: relative regression of the recent-window mean (data-size
            normalized) over the incumbent that triggers a cool-down.
        recent_window: observations in the regression check.
        cooldown: iterations spent replaying the incumbent after a trigger.
        min_observations: observations before any check happens.
    """

    def __init__(
        self,
        inner: Optimizer,
        margin: float = 0.15,
        recent_window: int = 5,
        cooldown: int = 5,
        min_observations: int = 8,
    ):
        super().__init__(inner.space, window_size=max(recent_window, 2))
        if margin <= 0:
            raise ValueError("margin must be > 0")
        if recent_window < 2:
            raise ValueError("recent_window must be >= 2")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.inner = inner
        self.margin = margin
        self.recent_window = recent_window
        self.cooldown = cooldown
        self.min_observations = min_observations
        self._incumbent_config: Optional[np.ndarray] = None
        self._best_window_mean: Optional[float] = None
        self._cooldown_left = 0
        self._checks_resume_at = 0
        self.pause_count = 0

    @property
    def exploring(self) -> bool:
        """Whether the next suggestion comes from the inner optimizer."""
        return self._cooldown_left == 0

    @property
    def incumbent(self) -> Optional[np.ndarray]:
        return None if self._incumbent_config is None else self._incumbent_config.copy()

    def suggest(self, data_size=None, embedding=None) -> np.ndarray:
        if self._cooldown_left > 0 and self._incumbent_config is not None:
            self._cooldown_left -= 1
            return self._incumbent_config.copy()
        return self.inner.suggest(data_size=data_size, embedding=embedding)

    def observe(self, obs: Observation) -> None:
        super().observe(obs)
        # The inner optimizer learns from every run, paused or not.
        self.inner.observe(obs)

        recent = self.observations.window[-self.recent_window:]
        if len(recent) < self.recent_window:
            return
        # Rolling-window means carry the same multiplicative noise inflation
        # on both sides of the comparison, so their ratio tracks the *true*
        # performance ratio — a single lucky draw cannot anchor the check.
        recent_mean = float(np.mean([o.performance / o.data_size for o in recent]))
        if self._best_window_mean is None or recent_mean < self._best_window_mean:
            self._best_window_mean = recent_mean
            best = min(recent, key=lambda o: o.performance / o.data_size)
            self._incumbent_config = best.config.copy()

        if (
            len(self.observations) < self.min_observations
            or self._cooldown_left > 0
            or len(self.observations) < self._checks_resume_at
        ):
            return
        if recent_mean > self._best_window_mean * (1.0 + self.margin):
            self._cooldown_left = self.cooldown
            # Regression checks need a fully post-pause window, otherwise the
            # runs that caused this pause immediately re-trigger it.
            self._checks_resume_at = (
                len(self.observations) + self.cooldown + self.recent_window
            )
            self.pause_count += 1
