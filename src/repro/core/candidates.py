"""Candidate generation in the neighborhood of a centroid (Alg. 1, step β).

Centroid Learning "restricts exploration to a smaller region defined by the
step size β" (Sec. 4.3): candidates are sampled inside a box of half-width
``β × span`` around the centroid, clipped to the space bounds.  The centroid
itself is always included so the algorithm can stand still when nothing in
the neighborhood looks better.
"""

from __future__ import annotations


import numpy as np

from .config_space import ConfigSpace

__all__ = ["generate_candidates"]


def generate_candidates(
    space: ConfigSpace,
    centroid: np.ndarray,
    beta: float,
    n_candidates: int,
    rng: np.random.Generator,
    include_centroid: bool = True,
) -> np.ndarray:
    """Sample ``n_candidates`` internal vectors around ``centroid``.

    Args:
        space: configuration space.
        centroid: internal-axis anchor ``e_t``.
        beta: neighborhood half-width as a fraction of each parameter's
            internal span (``0 < beta <= 1``).
        n_candidates: number of candidates returned (including the centroid
            when ``include_centroid``).
        rng: random generator.
        include_centroid: prepend the (clipped) centroid itself.

    Returns:
        ``(n_candidates, dim)`` array of clipped internal vectors.
    """
    if not 0 < beta <= 1:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    if n_candidates < 1:
        raise ValueError("n_candidates must be >= 1")
    centroid = space.clip(np.asarray(centroid, dtype=float))
    bounds = space.internal_bounds
    span = bounds[:, 1] - bounds[:, 0]
    low = np.maximum(centroid - beta * span, bounds[:, 0])
    high = np.minimum(centroid + beta * span, bounds[:, 1])

    n_random = n_candidates - (1 if include_centroid else 0)
    samples = rng.uniform(low, high, size=(max(n_random, 0), space.dim))
    if include_centroid:
        return np.vstack([centroid[None, :], samples]) if n_random else centroid[None, :]
    return samples
