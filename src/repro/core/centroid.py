"""The Centroid Learning algorithm (Algorithm 1).

Each iteration:

1. generate candidates in the β-neighborhood of the centroid ``e_t``;
2. let the surrogate + acquisition pick ``c_{t+1}`` (``argmax f``);
3. execute, observe ``(c_{t+1}, p_{t+1}, r_{t+1})``;
4. ``c* = FIND_BEST(Ω(t+1, N))`` — the statistically best recent config;
5. ``Δ = FIND_GRADIENT(Ω(t+1, N))`` — a robust descent *direction*;
6. ``e_{t+1} = c* ⊖ α·Δ`` — move from the best config along the descent
   direction, deliberately *overshooting* (momentum-style) to escape local
   minima.

A :class:`~repro.core.guardrail.Guardrail` can disable tuning and reinstate
the default configuration when sustained regressions are predicted.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import telemetry
from ..ml.base import Regressor
from ..ml.linear import PolynomialFeatures, RidgeRegression
from ..ml.scaler import Pipeline, StandardScaler
from .candidates import generate_candidates
from .config_space import ConfigSpace
from .find_best import FindBestMode, find_best, fit_window_model
from .gradient import linear_sign_gradient, ml_sign_gradient
from .guardrail import Guardrail
from .observation import Observation, ObservationWindow
from .optimizer_base import Optimizer
from .selectors import CandidateSelector, SurrogateSelector
from .switch import SafeExplorationGate, TaskSwitchDetector

__all__ = ["CentroidLearning", "default_window_model_factory"]


def default_window_model_factory() -> Regressor:
    """The default ``H(c, p)``: standardized quadratic ridge regression.

    A degree-2 surface captures the local convexity of the response around
    the centroid with very few observations, while ridge shrinkage keeps the
    fit stable under Eq.-8 noise.
    """
    return Pipeline(
        [
            ("scale", StandardScaler()),
            ("poly", PolynomialFeatures(degree=2)),
            ("ridge", RidgeRegression(alpha=1.0)),
        ]
    )


class CentroidLearning(Optimizer):
    """Noise-robust hybrid of model-guided and gradient-based tuning.

    Args:
        space: configuration space.
        alpha: centroid update (overshoot) step size — fraction of each
            parameter's internal span moved per update.
        alpha_decay: optional hyperbolic decay of α over centroid updates
            (0 = the paper's constant step).
        beta: candidate-generation neighborhood half-width (fraction of span).
        window_size: ``N``, observations used for FIND_BEST / FIND_GRADIENT;
            the paper recommends 10–20 under production noise.
        n_candidates: candidates generated per iteration.
        selector: candidate-selection policy; defaults to a
            :class:`SurrogateSelector` over the window model.
        find_best_mode: FIND_BEST refinement (default MODEL, Eq. 5).
        gradient_mode: ``"ml"`` (Eq. 6 sign search; default) or ``"linear"``.
        model_factory: constructor of ``H(c, p)``.
        start: initial centroid ``e_0`` (internal axes); defaults to the
            space default — production tunes outward from the defaults.
        guardrail: optional regression guardrail; when it disables tuning,
            :meth:`suggest` returns the default configuration forever after.
        min_update_observations: window points required before the centroid
            moves (needs enough data for a meaningful fit).
        probe: gradient probe geometry, ``"span"`` or ``"multiplicative"``.
        seed: RNG seed.
        switch_detector: optional
            :class:`~repro.core.switch.TaskSwitchDetector`; on a detected
            regime change the session re-anchors — fresh window seeded with
            the firing observation, guardrail reset, centroid re-seeded from
            ``switch_warm_start`` when provided.
        switch_warm_start: ``(Observation) -> Optional[vector]`` consulted
            on each detection for the new regime's starting centroid —
            typically :func:`repro.retrieval.warm_start_from_corpus`.
            Failures (e.g. a flaky backend) are swallowed and counted; the
            session keeps its current centroid.
        safe_gate: optional :class:`~repro.core.switch.SafeExplorationGate`
            restricting candidates to those whose predicted cost stays
            within a bound of the default configuration's.
    """

    def __init__(
        self,
        space: ConfigSpace,
        alpha: float = 0.05,
        alpha_decay: float = 0.0,
        beta: float = 0.1,
        window_size: int = 10,
        n_candidates: int = 20,
        selector: Optional[CandidateSelector] = None,
        find_best_mode: FindBestMode = FindBestMode.MODEL,
        gradient_mode: str = "ml",
        model_factory: Optional[Callable[[], Regressor]] = None,
        start: Optional[np.ndarray] = None,
        guardrail: Optional[Guardrail] = None,
        min_update_observations: int = 3,
        probe: str = "span",
        seed: Optional[int] = None,
        switch_detector: Optional[TaskSwitchDetector] = None,
        switch_warm_start: Optional[Callable[[Observation], Optional[np.ndarray]]] = None,
        safe_gate: Optional[SafeExplorationGate] = None,
    ):
        super().__init__(space, window_size=window_size)
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if alpha_decay < 0:
            raise ValueError(f"alpha_decay must be >= 0, got {alpha_decay}")
        if gradient_mode not in ("ml", "linear"):
            raise ValueError(f"gradient_mode must be 'ml' or 'linear', got {gradient_mode!r}")
        if min_update_observations < 2:
            raise ValueError("min_update_observations must be >= 2")
        self.alpha = alpha
        self.alpha_decay = alpha_decay
        self._n_updates = 0
        self.beta = beta
        self.n_candidates = n_candidates
        self.find_best_mode = find_best_mode
        self.gradient_mode = gradient_mode
        self.model_factory = model_factory or default_window_model_factory
        self.selector = selector or SurrogateSelector(self.model_factory)
        self.guardrail = guardrail
        self.min_update_observations = min_update_observations
        self.probe = probe
        self.switch_detector = switch_detector
        self.switch_warm_start = switch_warm_start
        self.safe_gate = safe_gate
        self.reanchor_count = 0
        self._rng = np.random.default_rng(seed)
        e0 = space.default_vector() if start is None else np.asarray(start, dtype=float)
        self._centroid = space.clip(e0)
        self._last_gradient: Optional[np.ndarray] = None
        self._last_best: Optional[np.ndarray] = None

    # -- introspection ----------------------------------------------------------

    @property
    def centroid(self) -> np.ndarray:
        """The current centroid ``e_t`` (internal axes)."""
        return self._centroid.copy()

    @property
    def tuning_active(self) -> bool:
        return self.guardrail.active if self.guardrail is not None else True

    @property
    def last_gradient(self) -> Optional[np.ndarray]:
        """The Δ applied at the most recent centroid update."""
        return None if self._last_gradient is None else self._last_gradient.copy()

    @property
    def last_best(self) -> Optional[np.ndarray]:
        """The c* used at the most recent centroid update."""
        return None if self._last_best is None else self._last_best.copy()

    # -- persistence -----------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable tuning state.

        Production keeps per-(user, signature) tuning state across
        application runs; this snapshot covers the centroid, the observation
        history, update counters and guardrail internals.  Constructor
        hyperparameters (α, β, N, selector, ...) are *code*, not state —
        re-supply them when restoring.
        """
        history = [
            {
                "config": o.config.tolist(),
                "data_size": o.data_size,
                "performance": o.performance,
                "iteration": o.iteration,
                "embedding": None if o.embedding is None else o.embedding.tolist(),
            }
            for o in self.observations.history
        ]
        return {
            "centroid": self._centroid.tolist(),
            "n_updates": self._n_updates,
            "history": history,
            "guardrail": self.guardrail.to_state() if self.guardrail else None,
            "reanchors": self.reanchor_count,
            "switch": (
                self.switch_detector.to_state() if self.switch_detector else None
            ),
        }

    def restore_state(self, state: dict) -> "CentroidLearning":
        """Restore a :meth:`to_state` snapshot in place."""
        centroid = np.asarray(state["centroid"], dtype=float)
        if centroid.shape != (self.space.dim,):
            raise ValueError(
                f"state centroid has shape {centroid.shape}, "
                f"expected ({self.space.dim},)"
            )
        self._centroid = self.space.clip(centroid)
        self._n_updates = int(state["n_updates"])
        window = ObservationWindow(self.observations.window_size)
        for item in state["history"]:
            window.append(Observation(
                config=np.asarray(item["config"], dtype=float),
                data_size=item["data_size"],
                performance=item["performance"],
                iteration=item["iteration"],
                embedding=(
                    None if item["embedding"] is None
                    else np.asarray(item["embedding"], dtype=float)
                ),
            ))
        self.observations = window
        if state.get("guardrail") is not None:
            if self.guardrail is None:
                raise ValueError(
                    "state carries guardrail data but this optimizer has no guardrail"
                )
            self.guardrail.restore_state(state["guardrail"])
        self.reanchor_count = int(state.get("reanchors", 0))
        if state.get("switch") is not None:
            if self.switch_detector is None:
                raise ValueError(
                    "state carries switch-detector data but this optimizer "
                    "has no switch detector"
                )
            self.switch_detector.restore_state(state["switch"])
        return self

    # -- ask/tell -----------------------------------------------------------------

    def suggest(self, data_size: Optional[float] = None, embedding=None) -> np.ndarray:
        if not self.tuning_active:
            telemetry.counter("centroid.suggests", mode="default").inc()
            return self.space.default_vector()
        data_size = 1.0 if data_size is None else float(data_size)
        candidates = generate_candidates(
            self.space, self._centroid, self.beta, self.n_candidates, self._rng
        )
        if (
            self.safe_gate is not None
            and len(self.observations.window) >= self.safe_gate.min_observations
        ):
            model = fit_window_model(self.observations, self.model_factory)
            candidates = self.safe_gate.apply(
                candidates, model, data_size, self.space.default_vector()
            )
        index = self.selector.select(
            candidates, self.observations, data_size, embedding, self._rng
        )
        telemetry.counter("centroid.suggests", mode="tuning").inc()
        active = telemetry.current_span()
        active.set_attr("candidate_index", int(index))
        active.set_attr("n_candidates", int(len(candidates)))
        return candidates[index]

    def observe(self, obs: Observation) -> None:
        super().observe(obs)
        if self.switch_detector is not None:
            decision = self.switch_detector.update(
                obs.performance, obs.data_size,
                embedding=obs.embedding, iteration=obs.iteration,
            )
            if decision.detected:
                self._re_anchor(obs, decision)
                return
        if self.guardrail is not None:
            self.guardrail.update(obs)
            if not self.guardrail.active:
                telemetry.counter("centroid.updates_skipped", reason="guardrail").inc()
                return
        if len(self.observations.window) < self.min_update_observations:
            telemetry.counter("centroid.updates_skipped", reason="window").inc()
            return
        self._update_centroid(obs)

    def _re_anchor(self, obs: Observation, decision) -> None:
        """Regime change: reset the window/guardrail, re-seed the centroid.

        The firing observation seeds the fresh window (it belongs to the new
        regime); the centroid either jumps to the retrieval warm start or
        stays put (the old optimum is still the best available guess).  The
        guardrail check and the Alg.-1 update are both skipped this step —
        one observation of a new regime supports neither.
        """
        window = ObservationWindow(self.observations.window_size)
        window.append(obs)
        self.observations = window
        self._n_updates = 0
        if self.guardrail is not None:
            self.guardrail.reset()
        if self.switch_warm_start is not None:
            try:
                vector = self.switch_warm_start(obs)
            except Exception:  # noqa: BLE001 — a lost warm start beats a lost session
                telemetry.counter("switch.warm_start_failures").inc()
                vector = None
            if vector is not None:
                self._centroid = self.space.clip(np.asarray(vector, dtype=float))
                telemetry.counter("switch.warm_starts").inc()
        self.reanchor_count += 1
        telemetry.counter("switch.reanchors", reason=decision.reason).inc()
        telemetry.emit(
            "switch.reanchor",
            iteration=obs.iteration,
            reason=decision.reason,
            statistic=decision.statistic,
            centroid=self._centroid.tolist(),
        )

    @property
    def effective_alpha(self) -> float:
        """The current overshoot step: ``α / (1 + decay · n_updates)``."""
        return self.alpha / (1.0 + self.alpha_decay * self._n_updates)

    # -- the Alg.-1 update ------------------------------------------------------------

    def _update_centroid(self, latest: Observation) -> None:
        with telemetry.span("centroid.update", iteration=latest.iteration) as tspan:
            window = self.observations
            model = None
            if self.find_best_mode is FindBestMode.MODEL or self.gradient_mode == "ml":
                model = fit_window_model(window, self.model_factory)

            best_obs = find_best(
                window,
                mode=self.find_best_mode,
                model=model,
                model_factory=self.model_factory,
                fixed_data_size=latest.data_size,
            )
            c_star = best_obs.config

            alpha = self.effective_alpha
            if self.gradient_mode == "ml":
                delta = ml_sign_gradient(
                    self.space, model, c_star, latest.data_size, alpha, probe=self.probe
                )
            else:
                delta = linear_sign_gradient(window)

            bounds = self.space.internal_bounds
            span = bounds[:, 1] - bounds[:, 0]
            if self.probe == "multiplicative":
                new_centroid = c_star * (1.0 - alpha * delta)
            else:
                new_centroid = c_star - alpha * delta * span
            before = self._centroid
            self._centroid = self.space.clip(new_centroid)
            self._n_updates += 1
            self._last_gradient = np.asarray(delta, dtype=float)
            self._last_best = np.asarray(c_star, dtype=float)
            telemetry.counter("centroid.updates").inc()
            if telemetry.enabled():
                move = float(np.linalg.norm(self._centroid - before))
                telemetry.gauge("centroid.last_move_norm").set(move)
                tspan.set_attr("n_update", self._n_updates)
                tspan.set_attr("alpha", alpha)
                tspan.set_attr("centroid_before", before.tolist())
                tspan.set_attr("centroid_after", self._centroid.tolist())
                tspan.set_attr("c_star", self._last_best.tolist())
                tspan.set_attr("sign_gradient", self._last_gradient.tolist())
                tspan.set_attr("move_norm", move)
