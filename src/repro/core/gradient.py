"""FIND_GRADIENT — statistically robust descent *directions* (Sec. 4.3).

The gradient here "indicates only the direction of change (increase or
decrease), not the magnitude"; the step-size parameter ``α`` controls the
scale.  Two estimators are provided:

* **linear** — fit a linear surface ``r ≈ wᵀ[c, p] + b`` on the window and
  take the sign of the configuration coefficients.  Fitting over the latest
  N observations (rather than the last two, as hill-climbing/FLOW2 do) is
  the de-noising mechanism.
* **ml (Eq. 6–7)** — reuse the fitted window model ``H`` and search the sign
  set ``D = {−1, +1}^d`` for the probe point
  ``c* ⊖ α·δ`` with the lowest predicted time.  Captures non-linear
  data-size effects that the linear surface misses.

Probe geometry: the paper writes probes multiplicatively, ``c*(1 − αδ)``
(Eq. 6).  On internal axes that include values near zero the multiplicative
step degenerates, so the default is the equivalent *span-relative* step
``c* − α·δ·span`` (``span`` = per-dimension internal width); the literal
multiplicative form is available via ``probe="multiplicative"``.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..ml.base import Regressor
from ..ml.linear import LinearRegression
from .config_space import ConfigSpace
from .observation import ObservationWindow

__all__ = ["linear_sign_gradient", "ml_sign_gradient", "probe_points"]

# Beyond this many dimensions the 2^d sign enumeration is replaced by a
# coordinate-wise search (2·d probes instead of 2^d).
_MAX_ENUM_DIM = 12


def linear_sign_gradient(window: ObservationWindow) -> np.ndarray:
    """Sign of ∂r/∂c from a linear fit on the window (data size included).

    Returns a vector in {−1, 0, +1}^d: +1 where increasing the knob is
    predicted to *slow down* the query (so the centroid should decrease it),
    0 where the window shows no variation in that knob.
    """
    X = window.design_matrix()
    y = window.performances()
    if len(y) < 2:
        return np.zeros(X.shape[1] - 1)
    config_cols = X[:, :-1]
    varying = config_cols.std(axis=0) > 1e-12
    model = LinearRegression()
    model.fit(X, y)
    signs = np.sign(model.coef_[:-1])
    signs[~varying] = 0.0
    return signs


def probe_points(
    space: ConfigSpace,
    c_star: np.ndarray,
    deltas: np.ndarray,
    alpha: float,
    probe: str = "span",
) -> np.ndarray:
    """Probe configurations for the candidate gradients ``deltas``.

    ``probe="span"``:           ``clip(c* − α·δ·span)``
    ``probe="multiplicative"``: ``clip(c*·(1 − α·δ))`` (Eq. 6 literal)
    """
    c_star = np.asarray(c_star, dtype=float)
    deltas = np.atleast_2d(np.asarray(deltas, dtype=float))
    if probe == "span":
        bounds = space.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        points = c_star[None, :] - alpha * deltas * span[None, :]
    elif probe == "multiplicative":
        points = c_star[None, :] * (1.0 - alpha * deltas)
    else:
        raise ValueError(f"unknown probe geometry {probe!r}")
    return np.array([space.clip(p) for p in points])


def _candidate_deltas(dim: int) -> np.ndarray:
    """The sign set D (Eq. 7), or a coordinate-wise basis for large d."""
    if dim <= _MAX_ENUM_DIM:
        return np.array(list(itertools.product((1.0, -1.0), repeat=dim)))
    # Coordinate-wise: ±e_j for every dimension; the best per-dimension signs
    # are combined afterwards.
    eye = np.eye(dim)
    return np.vstack([eye, -eye])


def ml_sign_gradient(
    space: ConfigSpace,
    model: Regressor,
    c_star: np.ndarray,
    data_size: float,
    alpha: float,
    probe: str = "span",
) -> np.ndarray:
    """Eq. 6: ``Δ = argmin_{δ∈D} H(probe(c*, δ), p)``.

    Args:
        space: configuration space (for spans and clipping).
        model: the fitted window model ``H`` over ``[c, p]`` features.
        c_star: the FIND_BEST configuration (internal axes).
        data_size: ``p_{t+1}``, the data size to predict at.
        alpha: step-size scale of the probes.
        probe: probe geometry (see :func:`probe_points`).

    Returns:
        The winning sign vector ``Δ ∈ {−1, +1}^d`` (or a combined
        coordinate-wise vector for ``d > 12``).
    """
    dim = space.dim
    deltas = _candidate_deltas(dim)
    points = probe_points(space, c_star, deltas, alpha, probe)
    rows = np.column_stack([points, np.full(len(points), data_size)])
    predictions = model.predict(rows)

    if dim <= _MAX_ENUM_DIM:
        return deltas[int(np.argmin(predictions))]

    # Coordinate-wise combination: for each dim pick the sign whose single-
    # coordinate probe predicted lower time.
    plus = predictions[:dim]
    minus = predictions[dim:]
    return np.where(plus <= minus, 1.0, -1.0)
