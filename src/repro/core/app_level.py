"""App-level configuration optimization (Sec. 4.4, Algorithm 2).

Application-level knobs (executors, memory, ...) are fixed at startup and
shared by every query in the application, while query-level knobs can vary
per query.  Algorithm 2 scores ``M`` app-level candidates by pairing each
with the best query-level candidate of every query (from each query's
centroid neighborhood) and summing the per-query acquisition scores.

Because workload embeddings are only known *after* queries run, the optimal
app-level configuration is **pre-computed when an application completes**
and stored in the :class:`AppCache` under the application's ``artifact_id``;
the next submission of the same recurrent application reads it back with no
inference on the critical path.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from .candidates import generate_candidates
from .config_space import ConfigSpace

__all__ = ["QueryTuningContext", "optimize_app_config", "AppCache", "AppCacheEntry"]

# f_q(app_vector, query_vector) -> acquisition score (higher is better)
ScoreFn = Callable[[np.ndarray, np.ndarray], float]


@dataclass
class QueryTuningContext:
    """Per-query inputs to Algorithm 2.

    Attributes:
        query_space: the query-level knob space.
        centroid: the query's current centroid ``e_q`` (internal axes).
        score_fn: acquisition ``f_q(v, w)`` over an (app-vector, query-vector)
            pair; **higher is better** — use the negative predicted time when
            scoring with a time model.
        beta: neighborhood half-width for query-level candidates ``W_q``.
    """

    query_space: ConfigSpace
    centroid: np.ndarray
    score_fn: ScoreFn
    beta: float = 0.1


def optimize_app_config(
    app_space: ConfigSpace,
    current_app: np.ndarray,
    queries: Sequence[QueryTuningContext],
    n_app_candidates: int = 10,
    n_query_candidates: int = 10,
    beta_app: float = 0.15,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Algorithm 2: return the best app-level configuration candidate.

    Args:
        app_space: app-level knob space.
        current_app: current app-level setting (internal axes) — candidates
            are generated around it.
        queries: one :class:`QueryTuningContext` per query in the app.
        n_app_candidates: ``M``.
        n_query_candidates: ``N``.
        beta_app: app-level neighborhood half-width.
        rng: random generator.
    """
    if not queries:
        raise ValueError("Algorithm 2 needs at least one query context")
    rng = rng or np.random.default_rng()
    app_candidates = generate_candidates(
        app_space, current_app, beta_app, n_app_candidates, rng
    )
    # W_q is generated once per query and reused across all app candidates,
    # matching the Alg.-2 pseudocode (the Cartesian product V × W_q).
    query_candidates = [
        generate_candidates(q.query_space, q.centroid, q.beta, n_query_candidates, rng)
        for q in queries
    ]
    total_scores = np.zeros(len(app_candidates))
    for q, W_q in zip(queries, query_candidates):
        for i, v in enumerate(app_candidates):
            # c*_q(v): the query-level candidate maximizing f_q given v.
            best = max(q.score_fn(v, w) for w in W_q)
            total_scores[i] += best
    return app_candidates[int(np.argmax(total_scores))]


@dataclass
class AppCacheEntry:
    """One pre-computed app-level configuration."""

    artifact_id: str
    config: Dict[str, float]
    computed_at: float = field(default_factory=time.time)
    n_queries: int = 0


class AppCache:
    """``artifact_id → pre-computed app config`` store (Sec. 4.4, Sec. 5).

    In-memory by default; pass ``path`` for a JSON-file-backed cache shared
    between the backend's App Cache Generator and clients.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self._path = Path(path) if path is not None else None
        self._entries: Dict[str, AppCacheEntry] = {}
        if self._path is not None and self._path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, artifact_id: str) -> bool:
        return artifact_id in self._entries

    def put(self, entry: AppCacheEntry) -> None:
        self._entries[entry.artifact_id] = entry
        self._flush()

    def get(self, artifact_id: str) -> Optional[AppCacheEntry]:
        return self._entries.get(artifact_id)

    def invalidate(self, artifact_id: str) -> bool:
        """Drop one entry; returns whether it existed."""
        existed = self._entries.pop(artifact_id, None) is not None
        self._flush()
        return existed

    # -- persistence --------------------------------------------------------------

    def _flush(self) -> None:
        if self._path is None:
            return
        payload = {
            aid: {
                "config": e.config,
                "computed_at": e.computed_at,
                "n_queries": e.n_queries,
            }
            for aid, e in self._entries.items()
        }
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.write_text(json.dumps(payload))

    def _load(self) -> None:
        payload = json.loads(self._path.read_text())
        self._entries = {
            aid: AppCacheEntry(
                artifact_id=aid,
                config={k: float(v) for k, v in item["config"].items()},
                computed_at=item["computed_at"],
                n_queries=item.get("n_queries", 0),
            )
            for aid, item in payload.items()
        }
