"""Rockhopper's core: configuration spaces, the Centroid Learning algorithm,
FIND_BEST / FIND_GRADIENT, guardrails, and app-level joint optimization."""

from .app_level import AppCache, AppCacheEntry, QueryTuningContext, optimize_app_config
from .candidates import generate_candidates
from .categorical import (
    CategoricalParameter,
    CategoricalSpaceAdapter,
    PerformanceOrderedEncoder,
)
from .centroid import CentroidLearning, default_window_model_factory
from .config_space import ConfigSpace, Configuration, Parameter
from .conservative import ConservativePolicy
from .find_best import FindBestMode, find_best, fit_window_model
from .gradient import linear_sign_gradient, ml_sign_gradient, probe_points
from .guardrail import Guardrail, GuardrailDecision
from .importance import (
    ImportanceTracker,
    KnobRanking,
    KnobScore,
    PrunedSpace,
    rank_knobs,
)
from .objective import LatencyObjective, PricePerformanceObjective
from .observation import Observation, ObservationWindow
from .optimizer_base import Optimizer
from .selectors import (
    BaselineModelAdapter,
    CandidateSelector,
    PseudoSurrogateSelector,
    RandomSelector,
    SurrogateSelector,
)
from .session import ApplicationSession, IterationRecord, TuningSession, TuningTrace
from .switch import SafeExplorationGate, SwitchDecision, TaskSwitchDetector

__all__ = [
    "AppCache",
    "AppCacheEntry",
    "ApplicationSession",
    "BaselineModelAdapter",
    "CategoricalParameter",
    "CategoricalSpaceAdapter",
    "PerformanceOrderedEncoder",
    "CandidateSelector",
    "CentroidLearning",
    "ConfigSpace",
    "ConservativePolicy",
    "Configuration",
    "FindBestMode",
    "Guardrail",
    "GuardrailDecision",
    "ImportanceTracker",
    "IterationRecord",
    "KnobRanking",
    "KnobScore",
    "LatencyObjective",
    "Observation",
    "ObservationWindow",
    "PricePerformanceObjective",
    "PrunedSpace",
    "Optimizer",
    "Parameter",
    "PseudoSurrogateSelector",
    "QueryTuningContext",
    "RandomSelector",
    "SafeExplorationGate",
    "SurrogateSelector",
    "SwitchDecision",
    "TaskSwitchDetector",
    "TuningSession",
    "TuningTrace",
    "default_window_model_factory",
    "find_best",
    "fit_window_model",
    "generate_candidates",
    "linear_sign_gradient",
    "ml_sign_gradient",
    "optimize_app_config",
    "probe_points",
    "rank_knobs",
]
