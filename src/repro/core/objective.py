"""Tuning objectives beyond raw latency.

The Sec.-2.1 user study: "All customers valued execution time, but some
teams with particularly large resource utilization or fixed budgets also
noted the importance of cost."  The paper's own related work includes
predictive *price-performance* optimization (AutoExecutor / Sen et al.) and
multi-objective tuning (UDAO).

Every optimizer in this library minimizes a single scalar "performance";
these objectives produce that scalar from an execution's latency and its
resource allocation, so cost-awareness composes with *any* tuner — including
Centroid Learning — without touching the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..sparksim.cluster import ExecutorLayout, Pool

__all__ = ["LatencyObjective", "PricePerformanceObjective"]


@dataclass(frozen=True)
class LatencyObjective:
    """Plain execution time — the paper's deployed objective."""

    def score(self, elapsed_seconds: float, config: Mapping[str, float],
              pool: Pool = None) -> float:
        if elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be >= 0")
        return float(elapsed_seconds)


@dataclass(frozen=True)
class PricePerformanceObjective:
    """Blend latency with allocated-resource cost.

    ``score = seconds^(1−weight) · (seconds · cores · rate)^weight``

    * ``weight = 0`` → pure latency;
    * ``weight = 1`` → pure cost (core-seconds × hourly rate);
    * intermediate values trade speed against spend, the fixed-budget teams'
      preference.

    The geometric blend keeps the score scale-free: halving latency at equal
    cores always improves the score, while doubling cores must cut latency by
    more than ``2^(weight/(1−weight))``-ish to pay off.

    Attributes:
        weight: cost emphasis in [0, 1].
        core_rate_per_second: price of one core-second (any currency).
    """

    weight: float = 0.5
    core_rate_per_second: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        if self.core_rate_per_second <= 0:
            raise ValueError("core_rate_per_second must be > 0")

    def cost(self, elapsed_seconds: float, config: Mapping[str, float],
             pool: Pool = None) -> float:
        """Dollar(-ish) cost of the run: core-seconds × rate."""
        layout = ExecutorLayout.from_config(config, pool)
        return elapsed_seconds * layout.total_cores * self.core_rate_per_second

    def score(self, elapsed_seconds: float, config: Mapping[str, float],
              pool: Pool = None) -> float:
        if elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be >= 0")
        if elapsed_seconds == 0:
            return 0.0
        cost = self.cost(elapsed_seconds, config, pool)
        return float(
            elapsed_seconds ** (1.0 - self.weight) * cost ** self.weight
        )
