"""FIND_BEST — the three refinements described in Sec. 4.3.

Given the latest-N window Ω, pick the best-performing *observed*
configuration, accounting for the fact that observations ran over different
input sizes:

* **v1 (RAW)** — minimum raw execution time.  Biased toward whichever run
  happened to see the least data.
* **v2 (NORMALIZED)** — minimum ``r_i / p_i`` (Eq. 3).  Still biased because
  ``r/p`` tends to fall as ``p`` grows (fixed overheads amortize).
* **v3 (MODEL)** — fit ``r = H(c, p)`` (Eq. 4) and rank configurations by
  their predicted time at one *fixed* data size (Eq. 5).  The default.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

import numpy as np

from ..ml.base import Regressor
from .observation import Observation, ObservationWindow

__all__ = ["FindBestMode", "find_best", "fit_window_model"]


class FindBestMode(enum.Enum):
    """Which FIND_BEST refinement to use."""

    RAW = "raw"
    NORMALIZED = "normalized"
    MODEL = "model"


def fit_window_model(
    window: ObservationWindow, model_factory: Callable[[], Regressor]
) -> Regressor:
    """Fit ``H`` on the window's ``[c_i, p_i] → r_i`` pairs (Eq. 4).

    Fitted models are memoized on the window object, keyed by the window's
    append version and the factory identity: within one tuning iteration the
    candidate selector and the centroid update both need ``H`` over the
    *same* observations, so the second call reuses the first fit.  The
    cache is only consulted for the exact same factory object, and a fresh
    fit happens as soon as an observation lands (deterministic factories
    therefore produce bit-identical models to the uncached path).
    """
    version = getattr(window, "version", None)
    cache: Optional[dict] = None
    if version is not None:
        cache = window.__dict__.setdefault("_window_model_cache", {})
        entry = cache.get(id(model_factory))
        if entry is not None:
            cached_version, cached_factory, cached_model = entry
            if cached_version == version and cached_factory is model_factory:
                return cached_model
    X = window.design_matrix()
    y = window.performances()
    model = model_factory()
    model.fit(X, y)
    if cache is not None:
        # Drop entries from older versions so the cache tracks at most one
        # generation per factory.
        for key in [k for k, v in cache.items() if v[0] != version]:
            del cache[key]
        cache[id(model_factory)] = (version, model_factory, model)
    return model


def find_best(
    window: ObservationWindow,
    mode: FindBestMode = FindBestMode.MODEL,
    model: Optional[Regressor] = None,
    model_factory: Optional[Callable[[], Regressor]] = None,
    fixed_data_size: Optional[float] = None,
) -> Observation:
    """Return the best observation ``c*`` in the window under ``mode``.

    Args:
        window: the Ω(t, N) window.
        mode: selection strategy.
        model: an already-fitted ``H`` (saves a refit when the caller also
            needs it for FIND_GRADIENT).
        model_factory: used to fit ``H`` when ``model`` is not given
            (MODEL mode only).
        fixed_data_size: the uniform data size ``p`` used for MODEL-mode
            ranking; defaults to the latest observation's size ``p_t``.
    """
    obs = list(window.window)
    if not obs:
        raise ValueError("cannot FIND_BEST over an empty window")

    if mode is FindBestMode.RAW:
        return min(obs, key=lambda o: o.performance)

    if mode is FindBestMode.NORMALIZED:
        return min(obs, key=lambda o: o.performance / o.data_size)

    if mode is FindBestMode.MODEL:
        if len(obs) < 2:
            return obs[0]
        if model is None:
            if model_factory is None:
                raise ValueError("MODEL mode needs a fitted model or a model_factory")
            model = fit_window_model(window, model_factory)
        p = fixed_data_size if fixed_data_size is not None else obs[-1].data_size
        # Single (N, dim+1) assembly instead of N per-row concatenations.
        rows = np.column_stack(
            [np.stack([o.config for o in obs]), np.full(len(obs), p)]
        )
        predictions = model.predict(rows)
        return obs[int(np.argmin(predictions))]

    raise ValueError(f"unknown FindBestMode: {mode}")
