"""Categorical configuration support.

Sec. 4.3: "While this paper focuses on continuous configurations, categorical
configurations can be handled by employing embedding algorithms that map
categorical values into a continuous space to enable tuning [50]."

This module provides that mapping:

* :class:`CategoricalParameter` — a knob with a finite choice set (e.g.
  ``spark.io.compression.codec ∈ {lz4, snappy, zstd}``).
* :class:`PerformanceOrderedEncoder` — a target-style encoding that places
  each choice on a continuous [0, 1] axis ordered by its observed mean
  performance, re-fit as observations accumulate, so that *numerically close
  encodings correspond to behaviorally similar choices* — which is exactly
  the property neighborhood-based tuners like Centroid Learning need.
* :class:`CategoricalSpaceAdapter` — wraps a mixed space so optimizers see a
  purely continuous :class:`~repro.core.config_space.ConfigSpace`, while
  callers convert suggestions back to concrete choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .config_space import ConfigSpace, Parameter

__all__ = [
    "CategoricalParameter",
    "PerformanceOrderedEncoder",
    "CategoricalSpaceAdapter",
]


@dataclass(frozen=True)
class CategoricalParameter:
    """A configuration knob with a finite set of choices.

    Attributes:
        name: fully qualified knob name.
        choices: the admissible values, e.g. ``("lz4", "snappy", "zstd")``.
        default: the default choice (must be in ``choices``).
        scope: ``"query"`` or ``"app"`` (same semantics as
            :class:`~repro.core.config_space.Parameter`).
    """

    name: str
    choices: Tuple[str, ...]
    default: str
    scope: str = "query"

    def __post_init__(self) -> None:
        if len(self.choices) < 2:
            raise ValueError(f"parameter {self.name!r} needs >= 2 choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"parameter {self.name!r} has duplicate choices")
        if self.default not in self.choices:
            raise ValueError(
                f"parameter {self.name!r}: default {self.default!r} not in choices"
            )
        if self.scope not in ("query", "app"):
            raise ValueError(f"parameter {self.name!r}: unknown scope {self.scope!r}")


class PerformanceOrderedEncoder:
    """Maps one categorical knob onto a continuous [0, 1] axis.

    Initially the choices sit at their nominal (catalog-order) positions;
    once performance observations arrive, :meth:`fit` re-orders them by mean
    observed performance (best = 0, worst = 1), so a continuous optimizer
    descending the axis moves toward better choices.

    The encoder is deliberately conservative with sparse data: a choice with
    no observations keeps its previous position.
    """

    def __init__(self, parameter: CategoricalParameter):
        self.parameter = parameter
        n = len(parameter.choices)
        # Evenly spaced nominal positions in catalog order.
        self._positions: Dict[str, float] = {
            c: i / (n - 1) for i, c in enumerate(parameter.choices)
        }
        self.fitted = False

    @property
    def positions(self) -> Dict[str, float]:
        return dict(self._positions)

    def fit(
        self,
        choices: Sequence[str],
        performances: Sequence[float],
    ) -> "PerformanceOrderedEncoder":
        """Re-order the axis by mean observed performance.

        Args:
            choices: the categorical value used in each observation.
            performances: the observed times (lower is better).
        """
        if len(choices) != len(performances):
            raise ValueError("choices and performances must align")
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for c, r in zip(choices, performances):
            if c not in self._positions:
                raise ValueError(
                    f"unknown choice {c!r} for {self.parameter.name!r}"
                )
            sums[c] = sums.get(c, 0.0) + float(r)
            counts[c] = counts.get(c, 0) + 1
        if not sums:
            return self
        means = {c: sums[c] / counts[c] for c in sums}
        # Observed choices, best first; unobserved keep relative order by
        # their current position.
        observed = sorted(means, key=means.get)
        unobserved = sorted(
            (c for c in self.parameter.choices if c not in means),
            key=self._positions.get,
        )
        ordered = observed + unobserved
        n = len(ordered)
        self._positions = {
            c: (i / (n - 1) if n > 1 else 0.0) for i, c in enumerate(ordered)
        }
        self.fitted = True
        return self

    def encode(self, choice: str) -> float:
        try:
            return self._positions[choice]
        except KeyError:
            raise ValueError(
                f"unknown choice {choice!r} for {self.parameter.name!r}"
            ) from None

    def decode(self, position: float) -> str:
        """The choice whose axis position is nearest to ``position``."""
        return min(
            self._positions,
            key=lambda c: abs(self._positions[c] - float(position)),
        )


class CategoricalSpaceAdapter:
    """Presents a mixed continuous/categorical space as purely continuous.

    Usage::

        adapter = CategoricalSpaceAdapter(continuous_params, categorical_params)
        optimizer = CentroidLearning(adapter.space, ...)
        ...
        vector = optimizer.suggest(...)
        config = adapter.to_config(vector)      # knob dict incl. choices
        ...observe r...
        adapter.record(config, r)               # feeds the encoders
        adapter.refit()                          # re-order axes periodically
    """

    def __init__(
        self,
        continuous: Sequence[Parameter],
        categorical: Sequence[CategoricalParameter],
    ):
        if not categorical:
            raise ValueError("use a plain ConfigSpace when nothing is categorical")
        names = [p.name for p in continuous] + [p.name for p in categorical]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names across the mixed space")
        self.continuous = list(continuous)
        self.categorical = list(categorical)
        self.encoders: Dict[str, PerformanceOrderedEncoder] = {
            p.name: PerformanceOrderedEncoder(p) for p in categorical
        }
        # Each categorical knob becomes one continuous [0, 1] axis whose
        # default is the default choice's current position.
        synthetic = [
            Parameter(
                name=p.name,
                low=0.0,
                high=1.0,
                default=self.encoders[p.name].encode(p.default),
                scope=p.scope,
            )
            for p in categorical
        ]
        self.space = ConfigSpace(list(continuous) + synthetic)
        self._history: List[Tuple[Dict[str, object], float]] = []

    # -- conversions -------------------------------------------------------------

    def to_config(self, vector: np.ndarray) -> Dict[str, object]:
        """Internal vector → knob dict with concrete categorical choices."""
        raw = self.space.to_dict(vector)
        out: Dict[str, object] = {}
        for p in self.continuous:
            out[p.name] = raw[p.name]
        for p in self.categorical:
            out[p.name] = self.encoders[p.name].decode(raw[p.name])
        return out

    def to_vector(self, config: Mapping[str, object]) -> np.ndarray:
        """Knob dict (with choices) → internal vector."""
        values: Dict[str, float] = {}
        for p in self.continuous:
            values[p.name] = float(config[p.name])
        for p in self.categorical:
            values[p.name] = self.encoders[p.name].encode(str(config[p.name]))
        return self.space.to_vector(values)

    # -- warmup ---------------------------------------------------------------------

    def warmup_configs(self, repeats: int = 1) -> List[Dict[str, object]]:
        """Configurations that try every categorical choice (defaults
        elsewhere), one knob at a time.

        Neighborhood-based tuners never wander far enough to *discover* a
        distant categorical value, so each choice is probed explicitly once
        (``repeats`` times) before tuning; the observations feed
        :meth:`refit`, which then places good choices near the axis origin
        where the optimizer exploits them.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        base: Dict[str, object] = {p.name: p.default for p in self.continuous}
        base.update({p.name: p.default for p in self.categorical})
        out: List[Dict[str, object]] = []
        for p in self.categorical:
            for choice in p.choices:
                for _ in range(repeats):
                    config = dict(base)
                    config[p.name] = choice
                    out.append(config)
        return out

    # -- encoder updates -----------------------------------------------------------

    def record(self, config: Mapping[str, object], performance: float) -> None:
        """Remember one (config, observed time) pair for encoder refits."""
        self._history.append((dict(config), float(performance)))

    def refit(self, min_observations: int = 2) -> List[str]:
        """Re-order every categorical axis with enough data; returns the
        names of the axes that were refit."""
        refit: List[str] = []
        for p in self.categorical:
            choices = [str(cfg[p.name]) for cfg, _ in self._history if p.name in cfg]
            perfs = [r for cfg, r in self._history if p.name in cfg]
            if len(choices) >= min_observations and len(set(choices)) >= 2:
                self.encoders[p.name].fit(choices, perfs)
                refit.append(p.name)
        return refit
