"""Candidate selection policies for the Centroid Learning loop.

Algorithm 1's step "use surrogate model to select the best candidate:
c_{t+1} = argmax_{c∈C} f(c)" is factored into :class:`CandidateSelector`
implementations:

* :class:`SurrogateSelector` — fit a model on the window (plus, before any
  query-specific data exists, score with the offline *baseline model*) and
  pick via an acquisition function.
* :class:`PseudoSurrogateSelector` — the Fig.-9 instrument: a model of
  controllable accuracy that deterministically picks the candidate at the
  ``10·X``-th percentile of *true* performance.
* :class:`RandomSelector` — ablation control.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

import numpy as np

from .. import telemetry
from ..ml.acquisition import AcquisitionFunction, MeanMinimizer
from ..ml.base import Regressor
from .find_best import fit_window_model
from .observation import ObservationWindow

__all__ = [
    "CandidateSelector",
    "SurrogateSelector",
    "PseudoSurrogateSelector",
    "RandomSelector",
    "BaselineModelAdapter",
]


class CandidateSelector(Protocol):
    """Picks the index of the next candidate to execute."""

    def select(
        self,
        candidates: np.ndarray,
        window: ObservationWindow,
        data_size: float,
        embedding: Optional[np.ndarray],
        rng: np.random.Generator,
    ) -> int: ...


class BaselineModelAdapter:
    """Wraps an offline baseline model over ``[embedding, config, data_size]``.

    The baseline model (Sec. 4.2) provides iteration-0 predictions before any
    query-specific observation exists.
    """

    def __init__(self, model: Regressor, embedding_dim: int):
        self.model = model
        self.embedding_dim = embedding_dim

    def predict(
        self, candidates: np.ndarray, data_size: float, embedding: Optional[np.ndarray]
    ) -> np.ndarray:
        if embedding is None:
            emb = np.zeros(self.embedding_dim)
        else:
            emb = np.asarray(embedding, dtype=float)
            if emb.shape != (self.embedding_dim,):
                raise ValueError(
                    f"embedding has shape {emb.shape}, expected ({self.embedding_dim},)"
                )
        rows = np.array([
            np.concatenate([emb, c, [data_size]]) for c in candidates
        ])
        return self.model.predict(rows)


class SurrogateSelector:
    """Window-model (+ optional baseline warm start) acquisition selection.

    Args:
        model_factory: constructor of the per-query surrogate ``H`` fit on
            the window's ``[c, p] → r`` pairs.
        acquisition: scoring rule (default: pure exploitation, the deployed
            system's conservative choice).
        baseline: offline baseline adapter used while the window holds fewer
            than ``min_observations`` points.
        min_observations: window size needed before ``H`` is trusted.
    """

    def __init__(
        self,
        model_factory: Callable[[], Regressor],
        acquisition: Optional[AcquisitionFunction] = None,
        baseline: Optional[BaselineModelAdapter] = None,
        min_observations: int = 3,
    ):
        if min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        self.model_factory = model_factory
        self.acquisition = acquisition or MeanMinimizer()
        self.baseline = baseline
        self.min_observations = min_observations

    def select(self, candidates, window, data_size, embedding, rng) -> int:
        n_window = len(window.window)
        if n_window < self.min_observations:
            if self.baseline is not None:
                predictions = self.baseline.predict(candidates, data_size, embedding)
                return int(np.argmin(predictions))
            # Cold start without a baseline: explore the neighborhood.
            return int(rng.integers(0, len(candidates)))

        model = fit_window_model(window, self.model_factory)
        rows = np.column_stack([candidates, np.full(len(candidates), data_size)])
        try:
            mean, std = model.predict_with_std(rows)  # type: ignore[union-attr]
        except (AttributeError, NotImplementedError):
            mean = model.predict(rows)
            std = np.full(len(candidates), 1e-9)
        best = float(np.min(window.performances()))
        scores = self.acquisition(mean, std, best)
        chosen = int(np.argmax(scores))
        if telemetry.enabled():
            tspan = telemetry.current_span()
            tspan.set_attr("candidate_scores", np.asarray(scores, dtype=float).tolist())
            tspan.set_attr("candidate_chosen_score", float(scores[chosen]))
            tspan.set_attr("candidate_mean_prediction", float(np.mean(mean)))
        return chosen


class PseudoSurrogateSelector:
    """A "Level X" pseudo-surrogate (Sec. 6.1).

    Ranks candidates by *true* (noiseless) performance and returns the one at
    the ``10·level``-th percentile: level 1 ≈ top decile (accurate model),
    level 9 ≈ 90th percentile (badly mis-ranking model).

    Args:
        true_fn: ``true_fn(vector, data_size) -> noiseless time``.
        level: accuracy level ``X`` in 1..9.
    """

    def __init__(self, true_fn: Callable[[np.ndarray, float], float], level: int):
        if not 1 <= level <= 9:
            raise ValueError(f"level must be in 1..9, got {level}")
        self.true_fn = true_fn
        self.level = level

    def select(self, candidates, window, data_size, embedding, rng) -> int:
        values = np.array([self.true_fn(c, data_size) for c in candidates])
        order = np.argsort(values)
        rank = int(round(0.10 * self.level * (len(candidates) - 1)))
        return int(order[rank])


class RandomSelector:
    """Uniform-random candidate choice (no model guidance at all)."""

    def select(self, candidates, window, data_size, embedding, rng) -> int:
        return int(rng.integers(0, len(candidates)))
