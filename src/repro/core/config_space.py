"""Configuration space abstractions.

A :class:`ConfigSpace` is an ordered collection of :class:`Parameter`
definitions.  Configurations are represented in two equivalent forms:

* a ``dict`` mapping parameter name to value (the user-facing form), and
* a dense ``numpy`` vector in *parameter order* (the optimizer-facing form).

Parameters may be declared on a log scale (e.g. byte-valued Spark knobs such
as ``spark.sql.files.maxPartitionBytes`` span several orders of magnitude);
in that case the *internal* vector representation stores ``log10(value)`` so
that neighborhoods, step sizes and gradients behave uniformly across the
space.  Integer parameters are rounded only when materialized to a dict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence

import numpy as np

__all__ = ["Parameter", "ConfigSpace", "Configuration"]


@dataclass(frozen=True)
class Parameter:
    """A single tunable knob.

    Attributes:
        name: Fully qualified knob name, e.g. ``spark.sql.shuffle.partitions``.
        low: Inclusive lower bound (in natural units).
        high: Inclusive upper bound (in natural units).
        default: Default value (in natural units).
        log_scale: Whether the internal representation is ``log10``.
        integer: Whether materialized values are rounded to integers.
        scope: ``"query"`` or ``"app"`` — Spark query-level knobs can change
            per query while app-level knobs are fixed at application start.
    """

    name: str
    low: float
    high: float
    default: float
    log_scale: bool = False
    integer: bool = False
    scope: str = "query"

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(
                f"parameter {self.name!r}: low ({self.low}) must be < high ({self.high})"
            )
        if not (self.low <= self.default <= self.high):
            raise ValueError(
                f"parameter {self.name!r}: default {self.default} outside "
                f"[{self.low}, {self.high}]"
            )
        if self.log_scale and self.low <= 0:
            raise ValueError(
                f"parameter {self.name!r}: log-scale parameters need low > 0"
            )
        if self.scope not in ("query", "app"):
            raise ValueError(f"parameter {self.name!r}: unknown scope {self.scope!r}")

    # -- natural <-> internal -------------------------------------------------

    def to_internal(self, value: float) -> float:
        """Map a natural value into the internal (possibly log) axis."""
        return math.log10(value) if self.log_scale else float(value)

    def to_natural(self, internal: float) -> float:
        """Map an internal-axis value back to natural units (clipped, rounded)."""
        # np.power, not `10.0 ** internal`: Python's pow (libm) and numpy's
        # ufunc loop disagree by 1 ulp on some inputs, and the batch pipeline
        # (to_natural_array) must stay bitwise-equal to this scalar path.
        value = float(np.power(10.0, internal)) if self.log_scale else float(internal)
        value = min(max(value, self.low), self.high)
        if self.integer:
            value = float(round(value))
            value = min(max(value, math.ceil(self.low)), math.floor(self.high))
        return value

    def to_natural_array(self, internal: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_natural`: element *i* matches it bitwise.

        Both paths use numpy's pow ufunc (libm's ``pow`` differs from it by
        1 ulp on some inputs), and both ``round`` and ``np.round`` round
        half to even, so the batch pipeline built on this stays exactly
        equal to the scalar path (pinned by tests).
        """
        internal = np.asarray(internal, dtype=float)
        value = np.power(10.0, internal) if self.log_scale else internal.astype(float)
        value = np.minimum(np.maximum(value, self.low), self.high)
        if self.integer:
            value = np.round(value)
            value = np.minimum(
                np.maximum(value, math.ceil(self.low)), math.floor(self.high)
            )
        return value

    @property
    def internal_low(self) -> float:
        return self.to_internal(self.low)

    @property
    def internal_high(self) -> float:
        return self.to_internal(self.high)

    @property
    def internal_default(self) -> float:
        return self.to_internal(self.default)

    @property
    def internal_span(self) -> float:
        return self.internal_high - self.internal_low


class ConfigSpace:
    """An ordered, named collection of :class:`Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValueError("a ConfigSpace needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self._parameters: List[Parameter] = list(parameters)
        self._index: Dict[str, int] = {p.name: i for i, p in enumerate(parameters)}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[self._index[name]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigSpace):
            return NotImplemented
        return self._parameters == other._parameters

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self._parameters)
        return f"ConfigSpace([{names}])"

    @property
    def names(self) -> List[str]:
        return [p.name for p in self._parameters]

    @property
    def dim(self) -> int:
        return len(self._parameters)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def subspace(self, scope: str) -> "ConfigSpace":
        """Return the sub-space containing only ``query`` or ``app`` knobs."""
        params = [p for p in self._parameters if p.scope == scope]
        if not params:
            raise ValueError(f"no parameters with scope {scope!r}")
        return ConfigSpace(params)

    # -- vector <-> dict ------------------------------------------------------

    def to_vector(self, config: Mapping[str, float]) -> np.ndarray:
        """Convert a name→value dict to the internal vector representation."""
        vec = np.empty(self.dim)
        for i, p in enumerate(self._parameters):
            if p.name not in config:
                raise KeyError(f"configuration missing parameter {p.name!r}")
            vec[i] = p.to_internal(config[p.name])
        return vec

    def to_dict(self, vector: np.ndarray) -> Dict[str, float]:
        """Convert an internal vector to a name→value dict (clipped/rounded)."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of shape ({self.dim},), got {vector.shape}")
        return {
            p.name: p.to_natural(vector[i]) for i, p in enumerate(self._parameters)
        }

    def to_natural_matrix(self, vectors: np.ndarray) -> np.ndarray:
        """Convert ``(N, dim)`` internal vectors to natural units, column-wise.

        Row *i* equals ``to_dict(vectors[i])``'s values in parameter order
        (bitwise — see :meth:`Parameter.to_natural_array`).
        """
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of shape (N, {self.dim}), got {vectors.shape}"
            )
        natural = np.empty_like(vectors)
        for j, p in enumerate(self._parameters):
            natural[:, j] = p.to_natural_array(vectors[:, j])
        return natural

    # -- bounds & defaults ----------------------------------------------------

    @property
    def internal_bounds(self) -> np.ndarray:
        """``(dim, 2)`` array of internal-axis [low, high] per parameter."""
        return np.array([[p.internal_low, p.internal_high] for p in self._parameters])

    def default_vector(self) -> np.ndarray:
        return np.array([p.internal_default for p in self._parameters])

    def default_dict(self) -> Dict[str, float]:
        return {p.name: p.default for p in self._parameters}

    def clip(self, vector: np.ndarray) -> np.ndarray:
        """Clip an internal vector into bounds (returns a new array)."""
        bounds = self.internal_bounds
        return np.clip(np.asarray(vector, dtype=float), bounds[:, 0], bounds[:, 1])

    def contains_vector(self, vector: np.ndarray, atol: float = 1e-9) -> bool:
        vector = np.asarray(vector, dtype=float)
        bounds = self.internal_bounds
        return bool(
            np.all(vector >= bounds[:, 0] - atol) and np.all(vector <= bounds[:, 1] + atol)
        )

    # -- normalization (unit cube) --------------------------------------------

    def normalize(self, vector: np.ndarray) -> np.ndarray:
        """Map an internal vector to the unit cube [0, 1]^dim."""
        bounds = self.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        return (np.asarray(vector, dtype=float) - bounds[:, 0]) / span

    def denormalize(self, unit: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        bounds = self.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        return bounds[:, 0] + np.asarray(unit, dtype=float) * span

    # -- sampling ---------------------------------------------------------------

    def sample_vector(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one internal vector uniformly on the internal axes."""
        bounds = self.internal_bounds
        return rng.uniform(bounds[:, 0], bounds[:, 1])

    def sample_vectors(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` internal vectors, shape ``(n, dim)``."""
        bounds = self.internal_bounds
        return rng.uniform(bounds[:, 0], bounds[:, 1], size=(n, self.dim))

    def sample_dict(self, rng: np.random.Generator) -> Dict[str, float]:
        return self.to_dict(self.sample_vector(rng))

    def latin_hypercube(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Latin-hypercube sample of ``n`` internal vectors."""
        unit = np.empty((n, self.dim))
        for j in range(self.dim):
            perm = rng.permutation(n)
            unit[:, j] = (perm + rng.uniform(size=n)) / n
        return self.denormalize(unit)


@dataclass
class Configuration:
    """A configuration bound to its space, carrying both representations."""

    space: ConfigSpace
    vector: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.vector is None:
            self.vector = self.space.default_vector()
        self.vector = self.space.clip(np.asarray(self.vector, dtype=float))

    @classmethod
    def from_dict(cls, space: ConfigSpace, values: Mapping[str, float]) -> "Configuration":
        return cls(space, space.to_vector(values))

    def as_dict(self) -> Dict[str, float]:
        return self.space.to_dict(self.vector)

    def __getitem__(self, name: str) -> float:
        return self.as_dict()[name]

    def replace(self, **updates: float) -> "Configuration":
        values = self.as_dict()
        unknown = set(updates) - set(values)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        values.update(updates)
        return Configuration.from_dict(self.space, values)
