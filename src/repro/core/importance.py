"""Knob-importance pruning: per-workload sensitivity ranking + subspaces.

LOCAT (PAPERS.md, 2203.14889) gets "low-overhead" Spark tuning by shrinking
the search space to the knobs that actually matter for the workload at hand.
This module is that pass for our reproduction, built on the vectorized cost
kernel so the whole sensitivity sweep is **one** ``estimate_batch`` call:

* :func:`rank_knobs` — a deterministic sensitivity analysis combining a
  one-at-a-time (OAT) grid per knob with a *radial* Morris design
  (Campolongo-style: every elementary effect perturbs one knob away from
  the same trajectory base point).  Both designs are per-knob independent,
  so the ranking is bitwise invariant to the order knobs are swept in
  (``sweep_order`` only permutes row assembly; the property battery pins
  this).  Produces a :class:`KnobRanking`.
* :class:`KnobRanking` — the per-knob scores, JSON round-trippable like
  detector state (``to_state``/``from_state``/``to_json``/``from_json``).
* :class:`PrunedSpace` — a :class:`~repro.core.config_space.ConfigSpace`
  view over the kept knobs that optimizers tune inside while every
  materialized configuration decodes back to the **full** space: kept
  knobs pass through bitwise, dropped knobs are pinned to their defaults
  (or a supplied centroid).  ``TuningSession``/``ContextualBO``/
  ``find_best`` need no changes — ``to_dict``/``default_dict`` already
  return full-space dicts, and the batch pipeline decodes through
  :meth:`PrunedSpace.decode_matrix` (see ``ConfigColumns.from_vectors``).
* :class:`ImportanceTracker` — re-ranks when a
  :class:`~repro.core.switch.TaskSwitchDetector` fires, by chaining onto
  the optimizer's ``switch_warm_start`` hook (the session's dimensionality
  is fixed, so the refreshed ranking informs the *next* session / the
  fleet controller rather than resizing the live space).

``repro.verify.diff.diff_pruned_full`` pins the subspace-equivalence
contract: tuning in the pruned subspace is bitwise identical to tuning the
kept knobs with the dropped ones frozen.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .. import telemetry
from .config_space import ConfigSpace, Parameter

__all__ = [
    "KnobScore",
    "KnobRanking",
    "PrunedSpace",
    "ImportanceTracker",
    "build_sweep",
    "rank_knobs",
]


@dataclass(frozen=True)
class KnobScore:
    """Sensitivity summary for one knob of one workload.

    ``oat_range`` is the max-minus-min cost (seconds) over the knob's OAT
    grid with every other knob at its default; ``morris_mu_star`` is the
    mean absolute elementary effect (seconds per unit-cube step) over the
    radial Morris trajectories and ``morris_sigma`` its standard deviation
    (interaction/nonlinearity indicator).  ``score`` is the monotone
    combination the ranking sorts by — zero iff the cost model never reads
    the knob on this workload.
    """

    name: str
    index: int
    oat_range: float
    morris_mu_star: float
    morris_sigma: float

    @property
    def score(self) -> float:
        return self.oat_range + self.morris_mu_star


class KnobRanking:
    """Per-workload knob importance ranking (JSON round-trippable)."""

    def __init__(
        self,
        workload_signature: str,
        scores: Sequence[KnobScore],
        *,
        data_scale: float = 1.0,
        n_oat_points: int = 0,
        n_trajectories: int = 0,
        seed: int = 0,
    ):
        if not scores:
            raise ValueError("a ranking needs at least one knob score")
        self.workload_signature = workload_signature
        # Stored in full-space parameter order; ranked views sort on demand.
        self.scores: List[KnobScore] = sorted(scores, key=lambda s: s.index)
        self.data_scale = float(data_scale)
        self.n_oat_points = int(n_oat_points)
        self.n_trajectories = int(n_trajectories)
        self.seed = int(seed)

    @property
    def ranked(self) -> List[KnobScore]:
        """Scores sorted most-important first; ties break on space index,
        so zero-sensitivity knobs sort strictly after every knob the cost
        model responds to."""
        return sorted(self.scores, key=lambda s: (-s.score, s.index))

    @property
    def ranked_names(self) -> List[str]:
        return [s.name for s in self.ranked]

    def top(self, k: int) -> List[str]:
        """The ``k`` most important knob names."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.ranked_names[:k]

    def score_of(self, name: str) -> KnobScore:
        for s in self.scores:
            if s.name == name:
                return s
        raise KeyError(f"unknown knob {name!r}")

    def __len__(self) -> int:
        return len(self.scores)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnobRanking):
            return NotImplemented
        return self.to_state() == other.to_state()

    # -- serialization (same shape discipline as TaskSwitchDetector.to_state) --

    def to_state(self) -> Dict[str, object]:
        return {
            "workload_signature": self.workload_signature,
            "data_scale": self.data_scale,
            "n_oat_points": self.n_oat_points,
            "n_trajectories": self.n_trajectories,
            "seed": self.seed,
            "scores": [
                {
                    "name": s.name,
                    "index": s.index,
                    "oat_range": s.oat_range,
                    "morris_mu_star": s.morris_mu_star,
                    "morris_sigma": s.morris_sigma,
                }
                for s in self.scores
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "KnobRanking":
        return cls(
            str(state["workload_signature"]),
            [KnobScore(**s) for s in state["scores"]],  # type: ignore[arg-type]
            data_scale=float(state.get("data_scale", 1.0)),
            n_oat_points=int(state.get("n_oat_points", 0)),
            n_trajectories=int(state.get("n_trajectories", 0)),
            seed=int(state.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_state(), sort_keys=True)

    @classmethod
    def from_json(cls, data: str) -> "KnobRanking":
        return cls.from_state(json.loads(data))


# -- sweep construction -------------------------------------------------------------


@dataclass(frozen=True)
class _SweepPlan:
    """Row layout of one assembled sensitivity sweep.

    ``rows`` stacks, per knob in sweep order, its OAT grid; then the Morris
    trajectory base points; then, per knob in sweep order, one radial
    perturbation per trajectory.  The index arrays let per-knob scores
    gather *their* rows regardless of where sweep order placed them — the
    mechanism behind bitwise permutation invariance.
    """

    rows: np.ndarray                      # (M, dim) internal vectors
    oat_indices: Dict[str, np.ndarray]    # knob -> its OAT row indices
    base_indices: np.ndarray              # (R,) trajectory base rows
    perturb_indices: Dict[str, np.ndarray]  # knob -> (R,) perturbed rows
    delta_unit: float                     # Morris step in unit-cube units


def build_sweep(
    space: ConfigSpace,
    *,
    n_oat_points: int = 9,
    n_trajectories: int = 8,
    morris_delta: float = 0.25,
    seed: int = 0,
    sweep_order: Optional[Sequence[str]] = None,
) -> _SweepPlan:
    """Assemble the OAT + radial-Morris row matrix for one ranking pass.

    Every row is an internal-axis vector; the whole matrix goes through a
    single ``estimate_batch`` call.  ``sweep_order`` permutes only the row
    *assembly* order: each knob's OAT grid depends on nothing but that
    knob, and each radial elementary effect perturbs one coordinate of a
    trajectory base point drawn before any sweeping starts — so per-knob
    gathers return identical values for any order.
    """
    if n_oat_points < 2:
        raise ValueError("n_oat_points must be >= 2")
    if n_trajectories < 1:
        raise ValueError("n_trajectories must be >= 1")
    if not 0.0 < morris_delta < 1.0:
        raise ValueError("morris_delta must be in (0, 1)")
    order = list(sweep_order) if sweep_order is not None else list(space.names)
    if sorted(order) != sorted(space.names):
        raise ValueError(
            f"sweep_order must be a permutation of the space's knobs, got {order}"
        )
    bounds = space.internal_bounds
    defaults = space.default_vector()
    # Trajectory bases are drawn once, before any per-knob work, from the
    # seeded generator — the same bases for every sweep order.
    rng = np.random.default_rng(seed)
    unit_bases = rng.uniform(size=(n_trajectories, space.dim))
    bases = space.denormalize(unit_bases)

    blocks: List[np.ndarray] = []
    oat_indices: Dict[str, np.ndarray] = {}
    offset = 0
    for name in order:
        j = space.index_of(name)
        grid = np.tile(defaults, (n_oat_points, 1))
        grid[:, j] = np.linspace(bounds[j, 0], bounds[j, 1], n_oat_points)
        blocks.append(grid)
        oat_indices[name] = np.arange(offset, offset + n_oat_points)
        offset += n_oat_points

    blocks.append(bases)
    base_indices = np.arange(offset, offset + n_trajectories)
    offset += n_trajectories

    spans = bounds[:, 1] - bounds[:, 0]
    perturb_indices: Dict[str, np.ndarray] = {}
    for name in order:
        j = space.index_of(name)
        delta = morris_delta * spans[j]
        perturbed = bases.copy()
        # Step up when it stays in bounds, else step down — radial design,
        # each effect measured from the same base (never a cumulative path).
        up = bases[:, j] + delta <= bounds[j, 1]
        perturbed[:, j] = np.where(up, bases[:, j] + delta, bases[:, j] - delta)
        blocks.append(perturbed)
        perturb_indices[name] = np.arange(offset, offset + n_trajectories)
        offset += n_trajectories

    return _SweepPlan(
        rows=np.vstack(blocks),
        oat_indices=oat_indices,
        base_indices=base_indices,
        perturb_indices=perturb_indices,
        delta_unit=float(morris_delta),
    )


def batch_estimator(
    plan,
    space: ConfigSpace,
    *,
    simulator=None,
    data_scale: float = 1.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """The default noiseless batched cost oracle for :func:`rank_knobs`.

    ``(M, dim)`` internal vectors -> ``(M,)`` seconds in one
    ``estimate_batch``/``true_time_batch`` pass.  Pass a
    :class:`~repro.sparksim.executor.SparkSimulator` to inherit its pool
    and cost parameters; otherwise a fresh default :class:`CostModel` is
    used.  Sensitivity is a property of the *cost surface*, so observation
    noise and fault injection never enter here — the chaos mirror in the
    ``stages`` tier pins that fault-inflated observations cannot flip a
    ranking.
    """
    if simulator is not None:
        def estimate(vectors: np.ndarray) -> np.ndarray:
            return simulator.true_time_batch(
                plan, vectors, space=space, data_scale=data_scale
            )
        return estimate

    from ..sparksim.cost_model import CostModel

    model = CostModel()

    def estimate(vectors: np.ndarray) -> np.ndarray:
        return model.estimate_batch(
            plan, vectors, space=space, data_scale=data_scale
        )

    return estimate


def rank_knobs(
    plan,
    space: ConfigSpace,
    *,
    simulator=None,
    estimator: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    n_oat_points: int = 9,
    n_trajectories: int = 8,
    morris_delta: float = 0.25,
    data_scale: float = 1.0,
    seed: int = 0,
    sweep_order: Optional[Sequence[str]] = None,
) -> KnobRanking:
    """Rank ``space``'s knobs by sensitivity on ``plan``'s cost surface.

    One batched evaluation covers the whole design (``dim`` OAT grids +
    ``n_trajectories`` radial Morris trajectories); per-knob scores gather
    their rows by index, so the result is deterministic for a seed and
    bitwise invariant to ``sweep_order``.  A knob with a provably flat
    response (the cost model never reads it) scores exactly 0.0 and ranks
    strictly below every knob with nonzero sensitivity.
    """
    sweep = build_sweep(
        space,
        n_oat_points=n_oat_points,
        n_trajectories=n_trajectories,
        morris_delta=morris_delta,
        seed=seed,
        sweep_order=sweep_order,
    )
    estimate = estimator or batch_estimator(
        plan, space, simulator=simulator, data_scale=data_scale
    )
    costs = np.asarray(estimate(sweep.rows), dtype=float)
    if costs.shape != (len(sweep.rows),):
        raise ValueError(
            f"estimator returned shape {costs.shape}, expected ({len(sweep.rows)},)"
        )
    base_costs = costs[sweep.base_indices]
    scores: List[KnobScore] = []
    for j, name in enumerate(space.names):
        oat = costs[sweep.oat_indices[name]]
        effects = (
            np.abs(costs[sweep.perturb_indices[name]] - base_costs)
            / sweep.delta_unit
        )
        scores.append(KnobScore(
            name=name,
            index=j,
            oat_range=float(np.max(oat) - np.min(oat)),
            morris_mu_star=float(np.mean(effects)),
            morris_sigma=float(np.std(effects)),
        ))
    telemetry.counter("importance.rankings").inc()
    return KnobRanking(
        plan.signature() if hasattr(plan, "signature") else str(plan),
        scores,
        data_scale=data_scale,
        n_oat_points=n_oat_points,
        n_trajectories=n_trajectories,
        seed=seed,
    )


# -- the pruned-subspace view -------------------------------------------------------


class PrunedSpace(ConfigSpace):
    """A kept-knob view of a full :class:`ConfigSpace`.

    Optimizers see an ordinary space over the kept parameters (in
    full-space order): ``dim``, bounds, sampling, candidate generation and
    gradient enumeration all shrink accordingly.  Every materialization
    decodes back to the full space — kept coordinates pass through
    **bitwise**, dropped coordinates are pinned to their parameter defaults
    (or the supplied ``pins``) — so the simulator, the batch kernel and the
    trace records always carry complete configurations:

    * :meth:`to_dict` / :meth:`default_dict` return full-space dicts (this
      is the single per-step decode point ``TuningSession`` relies on);
    * :meth:`decode_matrix` is the batch analogue, consumed by
      ``ConfigColumns.from_vectors`` so ``estimate_batch(..., space=pruned)``
      and the lock-step engine evaluate full configurations.
    """

    def __init__(
        self,
        full_space: ConfigSpace,
        keep: Sequence[str],
        pins: Optional[Mapping[str, float]] = None,
    ):
        keep_set = set(keep)
        if not keep_set:
            raise ValueError("PrunedSpace needs at least one kept knob")
        unknown = keep_set - set(full_space.names)
        if unknown:
            raise KeyError(f"unknown knobs in keep: {sorted(unknown)}")
        kept_params: List[Parameter] = [
            p for p in full_space if p.name in keep_set
        ]
        super().__init__(kept_params)
        self.full_space = full_space
        self.kept_indices = np.array(
            [full_space.index_of(p.name) for p in kept_params], dtype=int
        )
        self.dropped_names: List[str] = [
            name for name in full_space.names if name not in keep_set
        ]
        self.dropped_indices = np.array(
            [full_space.index_of(n) for n in self.dropped_names], dtype=int
        )
        pins = dict(pins or {})
        unknown_pins = set(pins) - set(self.dropped_names)
        if unknown_pins:
            raise KeyError(
                f"pins given for non-dropped knobs: {sorted(unknown_pins)}"
            )
        # Full-dim internal vector; decode() overwrites the kept positions,
        # so only the dropped entries (defaults or pins) ever surface.
        self._pinned_full = full_space.default_vector()
        for name, value in pins.items():
            p = full_space[name]
            self._pinned_full[full_space.index_of(name)] = p.to_internal(value)

    @classmethod
    def from_ranking(
        cls,
        ranking: KnobRanking,
        full_space: ConfigSpace,
        k: int,
        pins: Optional[Mapping[str, float]] = None,
    ) -> "PrunedSpace":
        """Keep the ``k`` most important knobs of ``ranking``."""
        return cls(full_space, ranking.top(k), pins=pins)

    def __repr__(self) -> str:
        kept = ", ".join(self.names)
        return f"PrunedSpace([{kept}] of {self.full_space.dim} knobs)"

    # -- pruned <-> full ------------------------------------------------------

    def decode(self, vector: np.ndarray) -> np.ndarray:
        """Scatter a kept-dim internal vector into the full space."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dim,):
            raise ValueError(
                f"expected vector of shape ({self.dim},), got {vector.shape}"
            )
        out = self._pinned_full.copy()
        out[self.kept_indices] = vector
        return out

    def decode_matrix(self, vectors: np.ndarray) -> np.ndarray:
        """Batch :meth:`decode`: ``(N, dim)`` -> ``(N, full_dim)``."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected vectors of shape (N, {self.dim}), got {vectors.shape}"
            )
        out = np.tile(self._pinned_full, (vectors.shape[0], 1))
        out[:, self.kept_indices] = vectors
        return out

    def encode(self, full_vector: np.ndarray) -> np.ndarray:
        """Gather a full-space internal vector down to the kept knobs."""
        full_vector = np.asarray(full_vector, dtype=float)
        if full_vector.shape != (self.full_space.dim,):
            raise ValueError(
                f"expected vector of shape ({self.full_space.dim},), "
                f"got {full_vector.shape}"
            )
        return full_vector[self.kept_indices].copy()

    # -- full-space materialization -------------------------------------------

    def to_dict(self, vector: np.ndarray) -> Dict[str, float]:
        """A **full-space** dict: kept knobs decoded, dropped knobs pinned."""
        return self.full_space.to_dict(self.decode(vector))

    def default_dict(self) -> Dict[str, float]:
        return self.full_space.to_dict(self.decode(self.default_vector()))

    def pinned_dict(self) -> Dict[str, float]:
        """Natural-unit values of the dropped (pinned) knobs."""
        full = self.full_space.to_dict(self._pinned_full)
        return {name: full[name] for name in self.dropped_names}


# -- re-ranking on task switches ----------------------------------------------------


class ImportanceTracker:
    """Keeps a workload's :class:`KnobRanking` fresh across regime changes.

    :meth:`attach` chains onto an optimizer's ``switch_warm_start`` hook:
    when its :class:`~repro.core.switch.TaskSwitchDetector` fires, the
    tracker re-runs the deterministic sensitivity sweep at the firing
    observation's data scale (each re-rank derives its seed from the base
    seed plus the re-rank count, so histories replay exactly), appends the
    result to :attr:`rankings`, and then delegates to any previously
    installed warm start.  The live session's dimensionality stays fixed —
    a refreshed ranking selects the subspace for the *next* session.
    """

    def __init__(
        self,
        plan,
        space: ConfigSpace,
        *,
        simulator=None,
        top_k: int = 3,
        n_oat_points: int = 9,
        n_trajectories: int = 8,
        morris_delta: float = 0.25,
        seed: int = 0,
    ):
        self.plan = plan
        self.space = space
        self.simulator = simulator
        self.top_k = int(top_k)
        self.n_oat_points = int(n_oat_points)
        self.n_trajectories = int(n_trajectories)
        self.morris_delta = float(morris_delta)
        self.seed = int(seed)
        self._base_size = max(
            float(getattr(plan, "total_leaf_cardinality", 1.0)), 1.0
        )
        self.rankings: List[KnobRanking] = [self._rank(data_scale=1.0, index=0)]

    def _rank(self, data_scale: float, index: int) -> KnobRanking:
        return rank_knobs(
            self.plan,
            self.space,
            simulator=self.simulator,
            n_oat_points=self.n_oat_points,
            n_trajectories=self.n_trajectories,
            morris_delta=self.morris_delta,
            data_scale=data_scale,
            seed=self.seed + index,
        )

    @property
    def ranking(self) -> KnobRanking:
        """The latest ranking."""
        return self.rankings[-1]

    @property
    def rerank_count(self) -> int:
        return len(self.rankings) - 1

    def pruned_space(
        self, k: Optional[int] = None, pins: Optional[Mapping[str, float]] = None
    ) -> PrunedSpace:
        """A :class:`PrunedSpace` over the latest ranking's top knobs."""
        return PrunedSpace.from_ranking(
            self.ranking, self.space, k if k is not None else self.top_k,
            pins=pins,
        )

    def rerank(self, data_scale: float = 1.0) -> KnobRanking:
        """Force a re-rank at ``data_scale`` (what a switch fire triggers)."""
        ranking = self._rank(data_scale=data_scale, index=len(self.rankings))
        self.rankings.append(ranking)
        telemetry.counter("importance.reranks").inc()
        return ranking

    def attach(self, optimizer) -> None:
        """Chain the re-rank onto ``optimizer.switch_warm_start``."""
        previous = getattr(optimizer, "switch_warm_start", None)

        def rerank_then_warm_start(obs):
            self.rerank(data_scale=max(obs.data_size, 1.0) / self._base_size)
            return previous(obs) if previous is not None else None

        optimizer.switch_warm_start = rerank_then_warm_start
