"""Task-switch detection and safe online tuning.

Production sessions assume the workload they tune is the workload they keep
seeing.  When the regime changes — a pipeline is repointed at a 10× input,
a query plan is rewritten, a tenant migrates — the guardrail (Sec. 4.3)
only *degrades through* the change: it needs ``patience`` consecutive
predicted regressions, then pins the default configuration and grinds
through cooldown probation while the window model keeps fitting stale
observations.  The ATO line of work (``contextBO_tsd``) detects the switch
instead: an online change-point test on the observation stream re-anchors
the tuner the moment the regime moves.

:class:`TaskSwitchDetector` is that test, deterministic and RNG-free:

* **cost channel** — a one-sided CUSUM on standardized *normalized* cost
  ``x_t = r_t / p_t``.  The first ``warmup`` observations after an anchor
  form a frozen reference block (mean/scale); afterwards each residual
  ``z_t = (x_t − μ) / σ`` is winsorized at ``clip`` and accumulated as
  ``g_t = max(0, g_{t-1} + min(z_t, clip) − drift)``.  ``g_t > threshold``
  declares a switch.  The clip bounds any single observation's
  contribution, so an isolated fault spike (timeout, 10× latency blowup)
  cannot fire the detector — sustained shifts can.  Only upward shifts
  count: costs *falling* is what tuning is supposed to achieve.
* **input-size channel** — the observed data size jumping more than
  ``size_jump``× (either direction) away from the anchor's size is an
  immediate switch; no warmup needed.
* **plan-shape channel** — when embeddings flow through the session, a
  cosine distance above ``embedding_jump`` from the anchor embedding is an
  immediate switch.

On detection the detector re-anchors on the firing observation (it belongs
to the new regime) and the owning optimizer re-anchors its own state: the
``ObservationWindow`` resets, the guardrail resets, and the
``repro.retrieval`` warm-start index is consulted for the new regime's
centroid (see ``CentroidLearning(switch_detector=..., switch_warm_start=...)``).

:class:`SafeExplorationGate` is the safe-exploration mode (ATO's
``--safe_flag``): candidates whose predicted cost exceeds the default
configuration's predicted cost by more than ``bound`` are rejected before
selection, so the *expected* per-step regret against the default stays
bounded while tuning continues.  When no candidate passes, the default
itself is suggested.

Both are wired through the lock-step engine with per-session vectorized
state — K-session fleets stay bit-identical to sequential sessions
(``repro.verify.diff.diff_switch_inert`` and ``diff_lockstep_sequential``
pin the contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import telemetry

__all__ = [
    "SwitchDecision",
    "TaskSwitchDetector",
    "SafeExplorationGate",
    "cosine_distance",
]


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 − cos(a, b)`` with a floored norm product (0 for aligned vectors)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = max(float(np.linalg.norm(a)) * float(np.linalg.norm(b)), 1e-12)
    return 1.0 - float(np.dot(a, b)) / denom


@dataclass(frozen=True)
class SwitchDecision:
    """Outcome of one detector update.

    ``statistic`` is the CUSUM value (``reason="cost_shift"``), the size
    ratio (``"input_size"``) or the embedding distance (``"plan_shape"``);
    ``bound`` is the limit it was compared against.  ``reason`` is
    ``"warmup"`` or ``"stationary"`` on non-detections.
    """

    iteration: int
    statistic: float
    bound: float
    detected: bool
    reason: str


def _record_detection(decision: SwitchDecision) -> None:
    """Telemetry for one detection — shared by the scalar and lock-step paths."""
    telemetry.counter("switch.detections", reason=decision.reason).inc()
    telemetry.emit(
        "switch.detect",
        iteration=decision.iteration,
        reason=decision.reason,
        statistic=decision.statistic,
        bound=decision.bound,
    )


class TaskSwitchDetector:
    """Online change-point detector over a session's observation stream.

    Deterministic (no RNG) and cheap (O(1) state per update), so the
    lock-step engine can mirror it exactly in struct-of-arrays form.

    Args:
        warmup: observations after each anchor that freeze the reference
            mean/scale of the normalized cost (>= 2).
        threshold: CUSUM decision bound, in reference-σ units.  With the
            default ``clip``/``drift`` a shift must sustain roughly
            ``threshold / (clip − drift)`` consecutive high observations.
        drift: per-step CUSUM allowance in σ units — stationary noise
            drains the statistic instead of accumulating.
        clip: winsorization bound on the standardized residual; a single
            Eq.-8 spike or injected fault contributes at most
            ``clip − drift`` no matter how extreme.
        min_rel_scale: floor on the reference scale as a fraction of the
            reference mean — near-noiseless streams otherwise standardize
            benign wiggles into huge residuals.
        size_jump: input-size ratio versus the anchor that fires the
            signature channel immediately (``None`` disables it).
        embedding_jump: cosine distance versus the anchor embedding that
            fires the plan-shape channel (``None`` disables; inactive when
            no embeddings are observed).
    """

    def __init__(
        self,
        warmup: int = 8,
        threshold: float = 8.0,
        drift: float = 0.5,
        clip: float = 3.0,
        min_rel_scale: float = 0.05,
        size_jump: Optional[float] = 4.0,
        embedding_jump: Optional[float] = 0.25,
    ):
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if drift < 0:
            raise ValueError("drift must be >= 0")
        if clip <= drift:
            raise ValueError("clip must be > drift (or nothing can accumulate)")
        if min_rel_scale <= 0:
            raise ValueError("min_rel_scale must be > 0")
        if size_jump is not None and size_jump <= 1:
            raise ValueError("size_jump must be > 1 (or None)")
        if embedding_jump is not None and embedding_jump <= 0:
            raise ValueError("embedding_jump must be > 0 (or None)")
        self.warmup = warmup
        self.threshold = threshold
        self.drift = drift
        self.clip = clip
        self.min_rel_scale = min_rel_scale
        self.size_jump = size_jump
        self.embedding_jump = embedding_jump
        self.switch_count = 0
        self.detections: List[SwitchDecision] = []
        self._reset_anchor()

    def _reset_anchor(self) -> None:
        self._n = 0
        self._block: List[float] = []
        self._ref_mean: Optional[float] = None
        self._ref_scale: Optional[float] = None
        self._g = 0.0
        self._anchor_size: Optional[float] = None
        self._anchor_embedding: Optional[np.ndarray] = None

    # -- introspection ----------------------------------------------------------

    @property
    def n_since_anchor(self) -> int:
        """Observations absorbed since the current anchor."""
        return self._n

    @property
    def statistic(self) -> float:
        """The current CUSUM value (σ units)."""
        return self._g

    @property
    def reference(self) -> Optional[tuple]:
        """``(mean, scale)`` of the frozen reference block, once warmed up."""
        if self._ref_mean is None:
            return None
        return (self._ref_mean, self._ref_scale)

    # -- the online test --------------------------------------------------------

    def update(
        self,
        performance: float,
        data_size: float,
        embedding: Optional[np.ndarray] = None,
        iteration: int = 0,
    ) -> SwitchDecision:
        """Absorb one observation; returns the decision for this step.

        On a detection the detector re-anchors itself on the firing
        observation — the caller re-anchors *its* state (window, centroid,
        guardrail) in response.
        """
        telemetry.counter("switch.checks").inc()
        x = performance / data_size
        if self._anchor_size is not None and self.size_jump is not None:
            ratio = data_size / self._anchor_size
            if ratio > self.size_jump or ratio * self.size_jump < 1.0:
                return self._fire(
                    iteration, x, data_size, embedding,
                    statistic=ratio, bound=self.size_jump, reason="input_size",
                )
        if (
            self.embedding_jump is not None
            and embedding is not None
            and self._anchor_embedding is not None
        ):
            dist = cosine_distance(embedding, self._anchor_embedding)
            if dist > self.embedding_jump:
                return self._fire(
                    iteration, x, data_size, embedding,
                    statistic=dist, bound=self.embedding_jump, reason="plan_shape",
                )
        if self._anchor_size is None:
            self._anchor_size = data_size
            if embedding is not None:
                self._anchor_embedding = np.array(embedding, dtype=float)
        if self._n < self.warmup:
            self._block.append(x)
            self._n += 1
            if self._n == self.warmup:
                self._freeze_reference()
            return SwitchDecision(iteration, 0.0, self.threshold, False, "warmup")
        z = (x - self._ref_mean) / self._ref_scale
        g = max(0.0, self._g + min(z, self.clip) - self.drift)
        self._g = g
        self._n += 1
        if g > self.threshold:
            return self._fire(
                iteration, x, data_size, embedding,
                statistic=g, bound=self.threshold, reason="cost_shift",
            )
        return SwitchDecision(iteration, g, self.threshold, False, "stationary")

    def _freeze_reference(self) -> None:
        block = np.asarray(self._block, dtype=float)
        mean = float(block.mean())
        self._ref_mean = mean
        self._ref_scale = max(
            float(block.std()), self.min_rel_scale * abs(mean), 1e-12
        )

    def _fire(
        self,
        iteration: int,
        x: float,
        data_size: float,
        embedding: Optional[np.ndarray],
        statistic: float,
        bound: float,
        reason: str,
    ) -> SwitchDecision:
        decision = SwitchDecision(iteration, float(statistic), bound, True, reason)
        self.switch_count += 1
        self.detections.append(decision)
        # Re-anchor on the firing observation: it belongs to the new regime.
        self._reset_anchor()
        self._block.append(x)
        self._n = 1
        self._anchor_size = data_size
        if embedding is not None:
            self._anchor_embedding = np.array(embedding, dtype=float)
        _record_detection(decision)
        return decision

    # -- persistence -------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot (cross-application persistence)."""
        return {
            "n": self._n,
            "block": list(self._block),
            "ref_mean": self._ref_mean,
            "ref_scale": self._ref_scale,
            "g": self._g,
            "anchor_size": self._anchor_size,
            "anchor_embedding": (
                None if self._anchor_embedding is None
                else self._anchor_embedding.tolist()
            ),
            "switch_count": self.switch_count,
        }

    def restore_state(self, state: dict) -> "TaskSwitchDetector":
        """Restore a :meth:`to_state` snapshot in place."""
        self._n = int(state["n"])
        self._block = [float(v) for v in state["block"]]
        self._ref_mean = state["ref_mean"]
        self._ref_scale = state["ref_scale"]
        self._g = float(state["g"])
        self._anchor_size = state["anchor_size"]
        emb = state.get("anchor_embedding")
        self._anchor_embedding = None if emb is None else np.asarray(emb, dtype=float)
        self.switch_count = int(state["switch_count"])
        return self


class SafeExplorationGate:
    """Bounded-regret candidate gating (the ATO ``--safe_flag`` mode).

    Before selection, every candidate's cost is predicted with the same
    window model the selector uses (the fit is memoized on the window, so
    no extra fit happens) and compared against the predicted cost of the
    *default* configuration at the current data size.  Candidates exceeding
    ``default · (1 + bound)`` are rejected; if nothing survives, the
    default itself is suggested.  Expected regret versus the default is
    thereby bounded by ``bound`` whenever the model ranks faithfully —
    exploration continues, but only inside the safe slab.

    Args:
        bound: allowed relative excess over the default's predicted cost
            (0.25 = candidates may be predicted up to 25% slower).
        min_observations: window points required before the gate trusts the
            model; below this the gate stands aside (cold-start exploration
            is unrestricted, as in ATO).
    """

    def __init__(self, bound: float = 0.25, min_observations: int = 3):
        if bound <= 0:
            raise ValueError("bound must be > 0")
        if min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        self.bound = bound
        self.min_observations = min_observations

    def safe_mask(self, predictions: np.ndarray, default_prediction: float) -> np.ndarray:
        """Boolean mask of candidates within the bound (counters included)."""
        mask = predictions <= default_prediction * (1.0 + self.bound)
        telemetry.counter("safe.checks").inc()
        n_rejected = int(len(predictions) - np.count_nonzero(mask))
        if n_rejected:
            telemetry.counter("safe.rejected").inc(n_rejected)
        return mask

    def apply(
        self,
        candidates: np.ndarray,
        model,
        data_size: float,
        default_vector: np.ndarray,
    ) -> np.ndarray:
        """Return the safe subset of ``candidates`` (or the default row).

        ``model`` is the window model ``H(c, p)`` — the exact (memoized)
        fit the selector scores with, so the gate adds no extra fits and
        the lock-step mirror stays bitwise.
        """
        m = len(candidates)
        rows = np.column_stack([
            np.vstack([candidates, default_vector[None, :]]),
            np.full(m + 1, data_size),
        ])
        preds = model.predict(rows)
        mask = self.safe_mask(preds[:m], preds[m])
        if not mask.any():
            telemetry.counter("safe.fallbacks").inc()
            return default_vector[None, :].copy()
        return candidates[mask]
