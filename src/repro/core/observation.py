"""Observation records and the sliding window Ω(t, N) used by Algorithm 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Observation", "ObservationWindow"]


@dataclass(frozen=True)
class Observation:
    """One tuning observation ``(c_i, p_i, r_i)`` at iteration ``i``.

    Attributes:
        config: Internal-axis configuration vector ``c_i``.
        data_size: Input data size ``p_i`` (e.g. total input rows or bytes).
        performance: Observed performance ``r_i`` — execution time, lower is
            better throughout this library.
        iteration: Tuning iteration index ``i``.
        embedding: Optional workload-embedding vector attached as "context".
    """

    config: np.ndarray
    data_size: float
    performance: float
    iteration: int
    embedding: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", np.asarray(self.config, dtype=float))
        if self.embedding is not None:
            object.__setattr__(self, "embedding", np.asarray(self.embedding, dtype=float))
        if self.performance < 0:
            raise ValueError(f"performance must be >= 0, got {self.performance}")
        if self.data_size <= 0:
            raise ValueError(f"data_size must be > 0, got {self.data_size}")


class ObservationWindow:
    """The latest-``N`` window ``Ω(t, N) = {(c_i, p_i, r_i) | t+1−N ≤ i ≤ t}``.

    Keeps the full history (useful for guardrails and dashboards) while
    exposing the window the Centroid Learning update consumes.
    """

    def __init__(self, window_size: int):
        if window_size < 2:
            raise ValueError("window_size must be >= 2 to estimate a gradient")
        self.window_size = window_size
        self._history: List[Observation] = []
        self._version = 0

    def __len__(self) -> int:
        return len(self._history)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every append — cache invalidation key
        for consumers that fit models on the window (see
        :func:`repro.core.find_best.fit_window_model`)."""
        return self._version

    def append(self, obs: Observation) -> None:
        self._history.append(obs)
        self._version += 1

    @property
    def history(self) -> Sequence[Observation]:
        return tuple(self._history)

    @property
    def window(self) -> Sequence[Observation]:
        """The latest ``window_size`` observations (fewer early on)."""
        return tuple(self._history[-self.window_size:])

    @property
    def latest(self) -> Observation:
        if not self._history:
            raise IndexError("no observations recorded yet")
        return self._history[-1]

    # -- dense views over the window ------------------------------------------

    def configs(self) -> np.ndarray:
        """``(n, dim)`` matrix of window configs."""
        win = self.window
        return np.array([o.config for o in win])

    def data_sizes(self) -> np.ndarray:
        return np.array([o.data_size for o in self.window])

    def performances(self) -> np.ndarray:
        return np.array([o.performance for o in self.window])

    def design_matrix(self) -> np.ndarray:
        """Window features ``[c_i, p_i]`` stacked as ``(n, dim+1)`` (Eq. 4)."""
        return np.column_stack([self.configs(), self.data_sizes()])

    # -- dense views over the full history -------------------------------------

    def all_performances(self) -> np.ndarray:
        return np.array([o.performance for o in self._history])

    def all_data_sizes(self) -> np.ndarray:
        return np.array([o.data_size for o in self._history])
