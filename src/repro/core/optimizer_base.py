"""Common optimizer interface.

All optimizers — the Centroid Learning algorithm and every baseline it is
compared against — implement the same ask/tell loop over *internal-axis*
configuration vectors:

    vector = opt.suggest(data_size=p, embedding=e)
    ...execute and measure r...
    opt.observe(Observation(config=vector, data_size=p, performance=r,
                            iteration=t))

Performance is execution time: **lower is better** everywhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .config_space import ConfigSpace
from .observation import Observation, ObservationWindow

__all__ = ["Optimizer"]


class Optimizer:
    """Base class for ask/tell configuration optimizers."""

    def __init__(self, space: ConfigSpace, window_size: int = 10):
        self.space = space
        self.observations = ObservationWindow(window_size)

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def iteration(self) -> int:
        return len(self.observations)

    def suggest(
        self,
        data_size: Optional[float] = None,
        embedding: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Propose the next internal-axis configuration vector."""
        raise NotImplementedError

    def observe(self, obs: Observation) -> None:
        """Record the outcome of executing a suggested configuration."""
        if obs.config.shape != (self.space.dim,):
            raise ValueError(
                f"observation config has shape {obs.config.shape}, "
                f"expected ({self.space.dim},)"
            )
        self.observations.append(obs)

    def best_observation(self) -> Observation:
        """The raw-time best observation so far (no data-size correction)."""
        history = self.observations.history
        if not history:
            raise RuntimeError("no observations yet")
        return min(history, key=lambda o: o.performance)
