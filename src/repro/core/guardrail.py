"""The regression guardrail (Sec. 4.3, "Additional guardrail").

A simple regression model predicts execution time from the *iteration
number* and the *input cardinality*.  Starting at iteration 30, if the
predicted next-iteration time exceeds the previous observation by more than
a threshold for several consecutive checks, autotuning is disabled for the
query and the default configuration is reinstated.  Queries improving over
time keep tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import telemetry
from ..ml.batched import ols_predict
from .observation import Observation

__all__ = ["Guardrail", "GuardrailDecision"]


@dataclass(frozen=True)
class GuardrailDecision:
    """Outcome of one guardrail check (kept for the monitoring dashboard)."""

    iteration: int
    predicted_next: float
    previous: float
    violated: bool


class Guardrail:
    """Disables tuning on sustained predicted regressions.

    Args:
        min_iterations: checks start after this many observations — the
            paper guarantees "every query undergoes at least 30 iterations
            of tuning" before the guardrail can fire.
        threshold: relative excess of the predicted next time over the
            previous observation that counts as a violation (0.2 = +20%).
        patience: consecutive violations required before disabling.
        fit_window: number of most-recent observations the regression is fit
            on.  A local fit tracks accelerating (convex) regressions that a
            whole-history line would lag behind.
        robust: fit the trend with the Theil–Sen estimator instead of OLS —
            a single Eq.-8 spike inside the window then cannot tilt the
            prediction.
        cooldown: observations to sit at the default configuration after a
            disable before re-enabling tuning on probation.  ``None`` (the
            paper's behavior) disables permanently.  A latency-spike storm
            can falsely trip the guardrail; with a cooldown the query
            recovers once the storm passes, while a genuine regression
            simply trips it again after each probation.
    """

    def __init__(
        self,
        min_iterations: int = 30,
        threshold: float = 0.2,
        patience: int = 3,
        fit_window: int = 10,
        robust: bool = False,
        cooldown: Optional[int] = None,
    ):
        if min_iterations < 2:
            raise ValueError("min_iterations must be >= 2")
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if fit_window < 3:
            raise ValueError("fit_window must be >= 3")
        if cooldown is not None and cooldown < 1:
            raise ValueError("cooldown must be >= 1 (or None for permanent)")
        self.min_iterations = min_iterations
        self.threshold = threshold
        self.patience = patience
        self.fit_window = fit_window
        self.robust = robust
        self.cooldown = cooldown
        self._iterations: List[float] = []
        self._data_sizes: List[float] = []
        self._times: List[float] = []
        self._consecutive_violations = 0
        self._disabled = False
        self._since_disable = 0
        self.reenable_count = 0
        self.reset_count = 0
        self.decisions: List[GuardrailDecision] = []

    def reset(self) -> None:
        """Forget the regression history and re-enable tuning.

        Called when a task switch re-anchors the session: the trend the
        guardrail fit belongs to the *old* regime, and holding the session
        through disable/cooldown probation on stale evidence is exactly the
        failure mode the switch detector exists to avoid.  The decision log
        is kept (it is an audit trail, not fit state).
        """
        self._iterations = []
        self._data_sizes = []
        self._times = []
        self._consecutive_violations = 0
        self._disabled = False
        self._since_disable = 0
        self.reset_count += 1
        telemetry.counter("guardrail.resets").inc()

    @property
    def active(self) -> bool:
        """Whether autotuning is still enabled for this query."""
        return not self._disabled

    @property
    def n_observations(self) -> int:
        return len(self._times)

    def update(self, obs: Observation) -> bool:
        """Record an observation and run the check; returns :attr:`active`."""
        self._iterations.append(float(obs.iteration))
        self._data_sizes.append(obs.data_size)
        self._times.append(obs.performance)
        if self._disabled:
            if self.cooldown is not None:
                self._since_disable += 1
                telemetry.counter("guardrail.cooldown_holds").inc()
                if self._since_disable >= self.cooldown:
                    # Probation: resume tuning with a clean violation count.
                    self._disabled = False
                    self._since_disable = 0
                    self._consecutive_violations = 0
                    self.reenable_count += 1
                    telemetry.counter("guardrail.reenables").inc()
                    telemetry.emit("guardrail.reenable",
                                   iteration=int(obs.iteration),
                                   reenable_count=self.reenable_count)
            return self.active
        if len(self._times) < self.min_iterations:
            return self.active

        with telemetry.span("guardrail.check", iteration=int(obs.iteration)) as tspan:
            predicted_next, predicted_current = self._predict()
            # Eq.-8 noise only ever inflates observations, so a noisy `previous`
            # can mask a genuine upward trend; referencing the smaller of the
            # observation and the model's de-noised current estimate keeps the
            # check sensitive without firing on healthy queries.
            previous = min(self._times[-1], predicted_current)
            violated = predicted_next > previous * (1.0 + self.threshold)
            self.decisions.append(
                GuardrailDecision(
                    iteration=int(self._iterations[-1]),
                    predicted_next=predicted_next,
                    previous=previous,
                    violated=violated,
                )
            )
            telemetry.counter("guardrail.checks").inc()
            telemetry.counter("guardrail.verdicts",
                              verdict="violation" if violated else "ok").inc()
            if violated:
                self._consecutive_violations += 1
                if self._consecutive_violations >= self.patience:
                    self._disabled = True
                    telemetry.counter("guardrail.disables").inc()
                    telemetry.emit("guardrail.disable",
                                   iteration=int(obs.iteration),
                                   predicted_next=predicted_next,
                                   previous=previous)
            else:
                self._consecutive_violations = 0
            if telemetry.enabled():
                tspan.set_attr("predicted_next", predicted_next)
                tspan.set_attr("previous", previous)
                tspan.set_attr("violated", violated)
                tspan.set_attr("consecutive_violations", self._consecutive_violations)
                tspan.set_attr("active", self.active)
        return self.active

    # -- persistence --------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot (for cross-application persistence)."""
        return {
            "iterations": list(self._iterations),
            "data_sizes": list(self._data_sizes),
            "times": list(self._times),
            "consecutive_violations": self._consecutive_violations,
            "disabled": self._disabled,
            "since_disable": self._since_disable,
        }

    def restore_state(self, state: dict) -> "Guardrail":
        """Restore a :meth:`to_state` snapshot in place."""
        self._iterations = [float(v) for v in state["iterations"]]
        self._data_sizes = [float(v) for v in state["data_sizes"]]
        self._times = [float(v) for v in state["times"]]
        self._consecutive_violations = int(state["consecutive_violations"])
        self._disabled = bool(state["disabled"])
        self._since_disable = int(state.get("since_disable", 0))
        return self

    def _predict(self) -> tuple:
        """Regress time on (iteration, input cardinality) over the recent
        window; return (prediction at t+1, prediction at t)."""
        w = self.fit_window
        X = np.column_stack([self._iterations[-w:], self._data_sizes[-w:]])
        y = np.array(self._times[-w:])
        t, p = self._iterations[-1], self._data_sizes[-1]
        rows = np.array([[t + 1.0, p], [t, p]])
        if self.robust:
            from ..ml.robust import TheilSenRegressor

            model = TheilSenRegressor()
            model.fit(X, y)
            pred_next, pred_current = model.predict(rows)
        else:
            # Deterministic standardized normal equations — the same solver
            # the lock-step engine applies to (K, w, 2) stacks, so scalar
            # and batched guardrail predictions are bitwise identical.
            pred_next, pred_current = ols_predict(X, y, rows)
        return float(pred_next), float(pred_current)
