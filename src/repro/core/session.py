"""Online tuning sessions: glue between an optimizer and a workload.

A :class:`TuningSession` drives one recurrent query through the online phase
of Fig. 5: suggest → execute on the simulator → record → update.  It tracks
a :class:`TuningTrace` with both observed (noisy) and true (noiseless)
times, which the experiment harness turns into the paper's convergence plots
and speed-up numbers.

An :class:`ApplicationSession` drives a recurrent multi-query *application*:
per-query optimizers over the query-level knobs, a shared app-level
configuration read from the :class:`~repro.core.app_level.AppCache` at
startup, and an Algorithm-2 joint optimization refreshing that cache when
the run completes (Sec. 4.4's lifecycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import telemetry
from ..embedding.embedder import WorkloadEmbedder
from ..sparksim.executor import SparkSimulator
from ..sparksim.plan import PhysicalPlan
from .app_level import AppCache, AppCacheEntry, QueryTuningContext, optimize_app_config
from .centroid import CentroidLearning, default_window_model_factory
from .config_space import ConfigSpace
from .find_best import fit_window_model
from .observation import Observation
from .optimizer_base import Optimizer

__all__ = ["IterationRecord", "TuningTrace", "TuningSession", "ApplicationSession"]


@dataclass(frozen=True)
class IterationRecord:
    """One step of a tuning session."""

    iteration: int
    config: Dict[str, float]
    observed_seconds: float
    true_seconds: float
    data_size: float
    tuning_active: bool = True


@dataclass
class TuningTrace:
    """The full record of a tuning session."""

    records: List[IterationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    @property
    def observed(self) -> np.ndarray:
        return np.array([r.observed_seconds for r in self.records])

    @property
    def true(self) -> np.ndarray:
        return np.array([r.true_seconds for r in self.records])

    @property
    def data_sizes(self) -> np.ndarray:
        return np.array([r.data_size for r in self.records])

    def best_true_so_far(self) -> np.ndarray:
        """Running minimum of the true times (convergence view)."""
        return np.minimum.accumulate(self.true)

    def normalized_true(self) -> np.ndarray:
        """True time divided by data size — the 'normed performance' view
        used for dynamic workloads (Fig. 11a/11c)."""
        return self.true / self.data_sizes

    def speedup_vs(self, reference_seconds: float, tail: int = 5) -> float:
        """Relative speed-up of the mean of the last ``tail`` true times
        against a reference time: ``reference / measured − 1``."""
        if not self.records:
            raise ValueError("empty trace")
        measured = float(self.true[-tail:].mean())
        return reference_seconds / measured - 1.0


class TuningSession:
    """Runs one recurrent query's online tuning loop on the simulator.

    Args:
        plan: the recurrent query's physical plan.
        simulator: the execution substrate.
        optimizer: any :class:`~repro.optimizers.base.Optimizer`.
        embedder: computes the workload-embedding "context" per iteration
            (``None`` disables embeddings).
        scale_fn: iteration → relative input-data scale (default constant 1);
            models production input drift.
        fallback_to_default: the session-level escape hatch mirroring
            ``spark.autotune.query.enabled``: when the optimizer's suggest
            or observe raises, run the default configuration for that
            iteration (counted in :attr:`fallback_count`) instead of
            failing the query.  Off by default — research harnesses want
            the exception.
        verify: optional inline verification hook, run after every recorded
            step against live state — either a
            :class:`repro.verify.InvariantRegistry` (its ``check_session``
            is called) or any ``(session, record) -> None`` callable that
            raises on a broken invariant.  See ``docs/testing.md``.
        observe_transform: optional ``(iteration, observed_seconds) ->
            observed_seconds`` hook applied to the simulator's observed time
            before the optimizer sees it and before it is recorded — the
            place configuration-independent pathologies (fig15's variance
            and drift multipliers) enter the loop.  ``true_seconds`` is
            untouched.

    The remaining extension hooks live on the *optimizer*, not the session
    (the session reads them through the ``Optimizer`` surface):

    * ``optimizer.switch_detector`` — a
      :class:`~repro.core.switch.TaskSwitchDetector` consulted per
      observation; when it declares a regime change the optimizer
      re-anchors and :attr:`switch_count` reflects it here.
    * ``optimizer.switch_warm_start`` — ``(Observation) ->
      Optional[vector]`` consulted on a declared switch for a
      post-re-anchor starting point (the retrieval corpus plugs in here,
      and :meth:`repro.core.importance.ImportanceTracker.attach` chains a
      deterministic knob re-rank onto it).
    * ``optimizer.safe_gate`` — a
      :class:`~repro.core.switch.SafeExplorationGate` clamping post-switch
      exploration.
    * ``optimizer.space`` — any :class:`~repro.core.config_space.ConfigSpace`,
      including a :class:`~repro.core.importance.PrunedSpace`: the
      session's single per-step ``space.to_dict(vector)`` call is the
      decode point, so a pruned optimizer still materializes full-space
      configs (dropped knobs pinned) for the simulator and the trace.

    The tier map for everything above is in ``docs/testing.md``.
    """

    def __init__(
        self,
        plan: PhysicalPlan,
        simulator: SparkSimulator,
        optimizer: Optimizer,
        embedder: Optional[WorkloadEmbedder] = None,
        scale_fn: Optional[Callable[[int], float]] = None,
        fallback_to_default: bool = False,
        verify: Optional[object] = None,
        observe_transform: Optional[Callable[[int, float], float]] = None,
    ):
        self.plan = plan
        self.simulator = simulator
        self.optimizer = optimizer
        self.embedder = embedder
        self.scale_fn = scale_fn or (lambda t: 1.0)
        self.observe_transform = observe_transform
        self.fallback_to_default = fallback_to_default
        self.fallback_count = 0
        self.trace = TuningTrace()
        self.verify = verify
        if verify is None:
            self._verify_hook = None
        elif hasattr(verify, "check_session"):
            self._verify_hook = verify.check_session
        elif callable(verify):
            self._verify_hook = verify
        else:
            raise TypeError(
                "verify must be an InvariantRegistry or a callable "
                f"(session, record) -> None, got {type(verify).__name__}"
            )

    def default_true_time(self, scale: float = 1.0) -> float:
        """Noiseless time of the space's default configuration."""
        default = self.optimizer.space.default_dict()
        return self.simulator.true_time(self.plan, default, data_scale=scale)

    @property
    def switch_count(self) -> int:
        """Task switches the optimizer's detector has declared (0 without one)."""
        detector = getattr(self.optimizer, "switch_detector", None)
        return detector.switch_count if detector is not None else 0

    def step(self) -> IterationRecord:
        """Run one suggest → execute → observe iteration."""
        t = len(self.trace)
        with telemetry.span("session.step", iteration=t) as tspan:
            scale = self.scale_fn(t)
            scaled_plan = self.plan.scaled(scale) if scale != 1.0 else self.plan
            embedding = self.embedder.embed(scaled_plan) if self.embedder else None
            # The compile-time cardinality estimate stands in for the (unknown)
            # actual input size when scoring candidates.
            estimated_size = max(scaled_plan.total_leaf_cardinality, 1.0)

            try:
                vector = self.optimizer.suggest(
                    data_size=estimated_size, embedding=embedding
                )
            except Exception:  # noqa: BLE001 — escape hatch, see fallback_to_default
                if not self.fallback_to_default:
                    raise
                self.fallback_count += 1
                telemetry.counter("session.fallbacks", stage="suggest").inc()
                vector = self.optimizer.space.default_vector()
            config = self.optimizer.space.to_dict(vector)
            result = self.simulator.run(self.plan, config, data_scale=scale)
            observed = result.elapsed_seconds
            if self.observe_transform is not None:
                observed = self.observe_transform(t, observed)

            try:
                self.optimizer.observe(
                    Observation(
                        config=vector,
                        data_size=result.data_size,
                        performance=observed,
                        iteration=t,
                        embedding=embedding,
                    )
                )
            except Exception:  # noqa: BLE001 — a lost observation beats a lost query
                if not self.fallback_to_default:
                    raise
                self.fallback_count += 1
                telemetry.counter("session.fallbacks", stage="observe").inc()
            active = getattr(self.optimizer, "tuning_active", True)
            record = IterationRecord(
                iteration=t,
                config=config,
                observed_seconds=observed,
                true_seconds=result.true_seconds,
                data_size=result.data_size,
                tuning_active=active,
            )
            self.trace.append(record)
            telemetry.counter("session.steps").inc()
            if self._verify_hook is not None:
                self._verify_hook(self, record)
                telemetry.counter("session.verify_sweeps").inc()
            if telemetry.enabled():
                tspan.set_attr("observed_seconds", observed)
                tspan.set_attr("true_seconds", result.true_seconds)
                tspan.set_attr("data_size", result.data_size)
                tspan.set_attr("tuning_active", active)
                detector = getattr(self.optimizer, "switch_detector", None)
                if detector is not None:
                    tspan.set_attr("switch_count", detector.switch_count)
                    tspan.set_attr("switch_statistic", detector.statistic)
            return record

    def run(self, n_iterations: int) -> TuningTrace:
        """Run ``n_iterations`` steps and return the trace."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        for _ in range(n_iterations):
            self.step()
        return self.trace


class ApplicationSession:
    """Tunes a recurrent multi-query application (Sec. 4.4 lifecycle).

    Each :meth:`run_application` call models one submission of the same
    recurrent artifact:

    1. the app-level configuration comes from the :class:`AppCache` (or the
       defaults on the first run);
    2. every query runs once with its own query-level suggestion from a
       per-query :class:`CentroidLearning` state (persistent across runs);
    3. at application end, Algorithm 2 re-computes the app-level
       configuration from the per-query windows and refreshes the cache.

    Args:
        artifact_id: recurrent-application identity (the app_cache key).
        plans: the queries the application executes per run.
        simulator: execution substrate.
        query_space: query-level knobs.
        app_space: app-level knobs.
        app_cache: shared cache (create one per test/production store).
        optimizer_factory: per-query optimizer constructor
            ``(query_space, seed) -> CentroidLearning``.
        seed: RNG seed.
    """

    def __init__(
        self,
        artifact_id: str,
        plans: List[PhysicalPlan],
        simulator: SparkSimulator,
        query_space: ConfigSpace,
        app_space: ConfigSpace,
        app_cache: Optional[AppCache] = None,
        optimizer_factory: Optional[Callable[[ConfigSpace, int], CentroidLearning]] = None,
        seed: int = 0,
    ):
        if not plans:
            raise ValueError("an application needs at least one query")
        self.artifact_id = artifact_id
        self.plans = list(plans)
        self.simulator = simulator
        self.query_space = query_space
        self.app_space = app_space
        self.app_cache = app_cache if app_cache is not None else AppCache()
        factory = optimizer_factory or (
            lambda space, s: CentroidLearning(space, seed=s)
        )
        self._optimizers = [factory(query_space, seed + i) for i in range(len(plans))]
        self._rng = np.random.default_rng(seed)
        self._iteration = 0
        self.run_history: List[Dict[str, float]] = []

    @property
    def iteration(self) -> int:
        """Number of completed application runs."""
        return self._iteration

    def current_app_config(self) -> Dict[str, float]:
        """The app-level knobs this run would start with."""
        cached = self.app_cache.get(self.artifact_id)
        if cached is not None:
            merged = self.app_space.default_dict()
            merged.update({k: v for k, v in cached.config.items() if k in self.app_space})
            return merged
        return self.app_space.default_dict()

    def run_application(self) -> Dict[str, float]:
        """Execute one full application run; returns summary metrics."""
        app_config = self.current_app_config()
        total_observed = 0.0
        total_true = 0.0
        for plan, optimizer in zip(self.plans, self._optimizers):
            estimated = max(plan.total_leaf_cardinality, 1.0)
            vector = optimizer.suggest(data_size=estimated)
            config = {**app_config, **self.query_space.to_dict(vector)}
            result = self.simulator.run(plan, config)
            optimizer.observe(Observation(
                config=vector, data_size=result.data_size,
                performance=result.elapsed_seconds, iteration=self._iteration,
            ))
            total_observed += result.elapsed_seconds
            total_true += result.true_seconds
        self._refresh_app_cache(app_config)
        self._iteration += 1
        summary = {
            "iteration": float(self._iteration),
            "total_observed_seconds": total_observed,
            "total_true_seconds": total_true,
        }
        self.run_history.append(summary)
        return summary

    def run(self, n_runs: int) -> List[Dict[str, float]]:
        """Execute ``n_runs`` application submissions."""
        if n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        return [self.run_application() for _ in range(n_runs)]

    # -- Algorithm 2 refresh -----------------------------------------------------

    def _refresh_app_cache(self, current_app: Dict[str, float]) -> None:
        """Re-run Algorithm 2 from the per-query windows (when fittable)."""
        contexts: List[QueryTuningContext] = []
        app_names = self.app_space.names
        for plan, optimizer in zip(self.plans, self._optimizers):
            window = optimizer.observations
            if len(window.window) < 3:
                continue
            model = fit_window_model(window, default_window_model_factory)
            p = window.latest.data_size

            def score_fn(v, w, _model=model, _p=p, _app=current_app):
                # The window model H sees query-level features only; the
                # app-level candidate perturbs the predicted time through a
                # parallelism ratio (more cores -> proportionally faster for
                # the shuffle/scan-bound share of the plan).
                row = np.concatenate([w, [_p]])[None, :]
                base = float(_model.predict(row)[0])
                cores_now = max(
                    _app.get("spark.executor.instances", 4)
                    * _app.get("spark.executor.cores", 4), 1.0,
                )
                candidate = self.app_space.to_dict(np.asarray(v))
                cores_new = max(
                    candidate.get("spark.executor.instances", 4)
                    * candidate.get("spark.executor.cores", 4), 1.0,
                )
                return -base * (cores_now / cores_new) ** 0.7

            contexts.append(QueryTuningContext(
                query_space=self.query_space,
                centroid=optimizer.centroid,
                score_fn=score_fn,
            ))
        if not contexts:
            return
        best = optimize_app_config(
            self.app_space,
            self.app_space.to_vector(current_app),
            contexts,
            rng=self._rng,
        )
        self.app_cache.put(AppCacheEntry(
            artifact_id=self.artifact_id,
            config=self.app_space.to_dict(best),
            n_queries=len(contexts),
        ))
