"""Production service architecture (Sec. 5): backend, client, storage,
SAS-style auth, event hub, the monitoring dashboard, and the sharded
multi-tenant serving tier (consistent-hash ring, admission-controlled
queues, batched shard drains, fleet driver)."""

from .admission import AdmissionController, Priority, ShardQueue, ShedError, ShedVerdict
from .auth import SasToken, SasTokenIssuer, TokenError
from .backend import AutotuneBackend, JobGrant
from .client import (
    AutotuneClient,
    AutotuneCredentialManager,
    ModelLoader,
    RemoteModelSelector,
)
from .dashboard import (
    MonitoringDashboard,
    QuerySummary,
    RootCauseReport,
    render_service_metrics,
)
from .events_hub import EventHub
from .fleet import FleetReport, FleetSession, build_fleet, run_fleet
from .replay import GuardrailAudit, QueryTrajectory, audit_guardrail, replay_artifact
from .resilience import RetryExhaustedError, RetryPolicy, TransientServiceError
from .ring import ConsistentHashRing
from .sessions import TenantSession, TenantSessionHost
from .sharded import ShardedAutotuneService, TuneRequest
from .storage import StorageManager

__all__ = [
    "AdmissionController",
    "RetryExhaustedError",
    "RetryPolicy",
    "TransientServiceError",
    "AutotuneBackend",
    "AutotuneClient",
    "AutotuneCredentialManager",
    "ConsistentHashRing",
    "EventHub",
    "FleetReport",
    "FleetSession",
    "GuardrailAudit",
    "JobGrant",
    "Priority",
    "QueryTrajectory",
    "ShardQueue",
    "ShardedAutotuneService",
    "ShedError",
    "ShedVerdict",
    "TenantSession",
    "TenantSessionHost",
    "TuneRequest",
    "audit_guardrail",
    "build_fleet",
    "render_service_metrics",
    "replay_artifact",
    "run_fleet",
    "ModelLoader",
    "MonitoringDashboard",
    "QuerySummary",
    "RemoteModelSelector",
    "RootCauseReport",
    "SasToken",
    "SasTokenIssuer",
    "StorageManager",
    "TokenError",
]
