"""Production service architecture (Sec. 5): backend, client, storage,
SAS-style auth, event hub, and the monitoring dashboard."""

from .auth import SasToken, SasTokenIssuer, TokenError
from .backend import AutotuneBackend, JobGrant
from .client import (
    AutotuneClient,
    AutotuneCredentialManager,
    ModelLoader,
    RemoteModelSelector,
)
from .dashboard import MonitoringDashboard, QuerySummary, RootCauseReport
from .events_hub import EventHub
from .replay import GuardrailAudit, QueryTrajectory, audit_guardrail, replay_artifact
from .resilience import RetryExhaustedError, RetryPolicy, TransientServiceError
from .storage import StorageManager

__all__ = [
    "RetryExhaustedError",
    "RetryPolicy",
    "TransientServiceError",
    "AutotuneBackend",
    "AutotuneClient",
    "AutotuneCredentialManager",
    "EventHub",
    "GuardrailAudit",
    "JobGrant",
    "QueryTrajectory",
    "audit_guardrail",
    "replay_artifact",
    "ModelLoader",
    "MonitoringDashboard",
    "QuerySummary",
    "RemoteModelSelector",
    "RootCauseReport",
    "SasToken",
    "SasTokenIssuer",
    "StorageManager",
    "TokenError",
]
