"""Deterministic consistent-hash ring over backend shards.

The sharded Autotune service (see :mod:`repro.service.sharded`) routes every
request by its *workload id* so one tenant's recurring sessions always land
on the same shard — the shard owns the tenant's optimizer state, and
co-tenant requests coalesce into batched model calls there.

The ring hashes with :func:`hashlib.blake2b`, **not** Python's builtin
``hash``: the builtin is salted per process (``PYTHONHASHSEED``), while
routing must be a pure function of ``(shard ids, replicas, key)`` so two
processes — or one process before and after a restart — agree on every
owner.  Each shard contributes ``replicas`` virtual nodes, which bounds the
key movement when the shard set changes:

* ``add_shard`` only moves keys *into* the new shard (each moved key's new
  owner is the added shard);
* ``remove_shard`` only moves keys that the removed shard owned.

Both guarantees are structural (a key's owner changes only when a virtual
node is inserted or deleted between the key and its old owner) and are
pinned by tests together with the expected ≤ K/N movement volume.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["ConsistentHashRing"]


def _hash64(data: str) -> int:
    """Stable 64-bit hash (blake2b, process-restart invariant)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Maps string keys onto shard ids with bounded-movement rebalancing.

    Args:
        shard_ids: initial shard identifiers (order-insensitive — the ring
            layout depends only on the *set* of ids).
        replicas: virtual nodes per shard.  More replicas smooth the load
            split (the per-shard share concentrates around 1/N) at the cost
            of a longer sorted point list.
    """

    def __init__(self, shard_ids: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[int] = []       # sorted virtual-node hashes
        self._owners: List[str] = []       # owner of each point (parallel)
        self._shards: Dict[str, List[int]] = {}
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # -- membership --------------------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        """Current shard ids, sorted."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        """Insert a shard's virtual nodes (keys move only *into* it)."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        points = [_hash64(f"{shard_id}#{i}") for i in range(self.replicas)]
        self._shards[shard_id] = points
        for point in points:
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Delete a shard's virtual nodes (only its keys move)."""
        if shard_id not in self._shards:
            raise KeyError(f"shard {shard_id!r} not on the ring")
        del self._shards[shard_id]
        keep = [i for i, owner in enumerate(self._owners) if owner != shard_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- routing -----------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (first virtual node clockwise)."""
        if not self._points:
            raise RuntimeError("ring has no shards")
        index = bisect.bisect_right(self._points, _hash64(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """Owner per key — convenience for rebalance bookkeeping."""
        return {key: self.owner(key) for key in keys}

    def load_split(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys-per-shard histogram (every shard present, even if empty)."""
        split = {shard_id: 0 for shard_id in self._shards}
        for key in keys:
            split[self.owner(key)] += 1
        return split
