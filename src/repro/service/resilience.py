"""Retry/backoff and transient-failure primitives for the service layer.

Production tuning services survive partial failures of the telemetry and
model pipeline (Sec. 5–6: token expiry, flaky storage, noisy observations).
This module provides the building blocks the client and backend use:

* :class:`TransientServiceError` — the retryable failure class every
  injector and storage/transport shim raises for recoverable faults;
* :class:`RetryPolicy` — exponential backoff with a hard deadline on the
  cumulative delay, fully deterministic (no jitter, injectable sleep) so
  chaos runs replay bit-identically.

Backoff delays are monotone non-decreasing and the schedule never exceeds
``deadline`` seconds of cumulative waiting — both properties are pinned by
property-based tests in ``tests/service/test_resilience.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Type

from .. import telemetry

__all__ = ["TransientServiceError", "RetryExhaustedError", "RetryPolicy"]


class TransientServiceError(Exception):
    """A recoverable service failure (flaky storage, transport hiccup).

    Callers wrap operations in a :class:`RetryPolicy`; anything still
    failing after the policy's budget is spent surfaces as
    :class:`RetryExhaustedError` with this error as its cause.
    """


class RetryExhaustedError(Exception):
    """Raised when a retried operation fails on every allowed attempt."""

    def __init__(self, attempts: int, last_error: Exception):
        super().__init__(f"operation failed after {attempts} attempt(s): {last_error!r}")
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RetryPolicy:
    """Deterministic exponential backoff with a cumulative-delay deadline.

    Args:
        max_attempts: total tries (1 = no retries, the pre-resilience
            behavior).
        base_delay: delay before the first retry, in seconds.
        multiplier: geometric growth factor of successive delays.
        max_delay: per-retry delay cap.
        deadline: hard cap on the *sum* of all backoff delays; attempts
            whose delay would push past it are never made.
        sleep: injectable sleep function.  The default records the delay
            instead of sleeping — chaos tests and the in-process service
            never block on wall-clock time.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: float = 10.0
    sleep: Optional[Callable[[float], None]] = None
    total_slept: float = field(default=0.0, init=False, repr=False)
    retries: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.deadline < 0:
            raise ValueError("delays and deadline must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (delays must not shrink)")

    def delays(self) -> List[float]:
        """The backoff schedule: one delay per possible retry.

        Monotone non-decreasing, each entry capped at ``max_delay``, and
        truncated so the running sum never exceeds ``deadline``.
        """
        out: List[float] = []
        budget = self.deadline
        for i in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier**i, self.max_delay)
            if delay > budget:
                break
            out.append(delay)
            budget -= delay
        return out

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[Exception], ...] = (TransientServiceError,),
        on_retry: Optional[Callable[[int, Exception], None]] = None,
    ):
        """Run ``fn`` under this policy.

        ``on_retry(attempt_index, error)`` is invoked before each retry —
        the client uses it to refresh expired credentials between attempts.
        Raises :class:`RetryExhaustedError` once the schedule is spent.

        Backpressure: an error carrying a positive ``retry_after`` attribute
        (a shed verdict from an overloaded shard) raises the next delay to
        at least that hint, still capped at ``max_delay`` so the schedule's
        cumulative-deadline bound keeps holding.
        """
        schedule = self.delays()
        attempts = len(schedule) + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 — retry loop by design
                last_error = exc
                if attempt == attempts - 1:
                    break
                delay = schedule[attempt]
                retry_after = getattr(exc, "retry_after", 0.0) or 0.0
                if retry_after > 0:
                    delay = min(max(delay, retry_after), self.max_delay)
                self.retries += 1
                self.total_slept += delay
                telemetry.counter("retry.retries", error=type(exc).__name__).inc()
                if self.sleep is not None:
                    self.sleep(delay)
                if on_retry is not None:
                    on_retry(attempt, exc)
        assert last_error is not None
        telemetry.counter("retry.exhausted", error=type(last_error).__name__).inc()
        raise RetryExhaustedError(attempts, last_error) from last_error
