"""An in-process Event Hub.

The backend's "Model Updater ... is triggered by new events in the Event
Hub" (Sec. 5).  Subscribers receive each published event; failures in one
subscriber never block others (they are collected for inspection instead of
silently swallowed).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Set, Tuple

from .. import telemetry

__all__ = ["EventHub"]

Subscriber = Callable[[object], None]


@dataclass
class _Failure:
    subscriber: str
    event: object
    error: Exception


class EventHub:
    """Synchronous publish/subscribe with a bounded replay buffer.

    With ``dedup=True`` the hub drops re-published events whose
    ``dedup_key`` it has already seen (at-least-once upstream delivery →
    exactly-once fan-out).  Events without a ``dedup_key`` (or with a
    ``None`` one) are never deduplicated.
    """

    def __init__(self, buffer_size: int = 1000, dedup: bool = False):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self._subscribers: List[Tuple[str, Subscriber]] = []
        self._buffer: Deque[object] = deque(maxlen=buffer_size)
        self.failures: List[_Failure] = []
        self.published_count = 0
        self.dedup = dedup
        self.duplicates_dropped = 0
        self._seen_keys: Set[object] = set()

    def subscribe(self, name: str, callback: Subscriber) -> None:
        if any(n == name for n, _ in self._subscribers):
            raise ValueError(f"subscriber {name!r} already registered")
        self._subscribers.append((name, callback))

    def unsubscribe(self, name: str) -> bool:
        before = len(self._subscribers)
        self._subscribers = [(n, c) for n, c in self._subscribers if n != name]
        return len(self._subscribers) < before

    def publish(self, event: object) -> None:
        if self.dedup:
            key = getattr(event, "dedup_key", None)
            if key is not None:
                if key in self._seen_keys:
                    self.duplicates_dropped += 1
                    telemetry.counter("hub.duplicates_dropped").inc()
                    return
                self._seen_keys.add(key)
        self.published_count += 1
        telemetry.counter("hub.published").inc()
        self._buffer.append(event)
        for name, callback in self._subscribers:
            try:
                callback(event)
            except Exception as exc:  # noqa: BLE001 — isolate subscribers
                self.failures.append(_Failure(subscriber=name, event=event, error=exc))
                telemetry.counter("hub.subscriber_failures", subscriber=name).inc()

    def recent(self, n: int = 10) -> List[object]:
        """The last ``n`` published events (newest last)."""
        items = list(self._buffer)
        return items[-n:]
