"""SAS-style token authentication (Sec. 5, "Authentication").

The Autotune Backend generates signed, expiring URLs granting scoped access
to models (read) and event folders (write); clients cache and refresh them.
Tokens are HMAC-signed strings — no cloud dependency, same control flow.
"""

from __future__ import annotations

import hashlib
import hmac
import time
from dataclasses import dataclass
from typing import Optional
from urllib.parse import parse_qs, urlencode, urlparse

__all__ = ["SasToken", "SasTokenIssuer", "TokenError"]


class TokenError(Exception):
    """Raised when a token is malformed, expired, or mis-scoped."""


@dataclass(frozen=True)
class SasToken:
    """A parsed SAS-style URL: ``sas://<resource>?perm=..&exp=..&sig=..``."""

    resource: str
    permissions: str
    expires_at: float
    signature: str

    def expires_within(self, now: float, margin: float = 0.0) -> bool:
        """True when the token is (about to be) expired at time ``now``.

        Clients check this with a safety ``margin`` before using a cached
        grant, re-registering proactively instead of discovering expiry as
        a mid-operation :class:`TokenError`.
        """
        return now + margin >= self.expires_at

    @property
    def url(self) -> str:
        query = urlencode(
            {"perm": self.permissions, "exp": f"{self.expires_at:.3f}", "sig": self.signature}
        )
        return f"sas://{self.resource}?{query}"

    @classmethod
    def parse(cls, url: str) -> "SasToken":
        parsed = urlparse(url)
        if parsed.scheme != "sas":
            raise TokenError(f"not a SAS url: {url!r}")
        params = parse_qs(parsed.query)
        try:
            resource = parsed.netloc + parsed.path
            return cls(
                resource=resource,
                permissions=params["perm"][0],
                expires_at=float(params["exp"][0]),
                signature=params["sig"][0],
            )
        except (KeyError, IndexError, ValueError) as exc:
            raise TokenError(f"malformed SAS url: {url!r}") from exc


class SasTokenIssuer:
    """Issues and validates HMAC-signed resource tokens.

    Args:
        secret: signing key held by the backend only.
        default_ttl: token lifetime in seconds.
        clock: injectable time source (for deterministic tests).
    """

    def __init__(self, secret: str, default_ttl: float = 3600.0, clock=time.time):
        if not secret:
            raise ValueError("secret must be non-empty")
        if default_ttl <= 0:
            raise ValueError("default_ttl must be > 0")
        self._secret = secret.encode()
        self.default_ttl = default_ttl
        self._clock = clock

    def _sign(self, resource: str, permissions: str, expires_at: float) -> str:
        message = f"{resource}|{permissions}|{expires_at:.3f}".encode()
        return hmac.new(self._secret, message, hashlib.sha256).hexdigest()

    def issue(
        self, resource: str, permissions: str = "r", ttl: Optional[float] = None
    ) -> SasToken:
        """Issue a token for ``resource`` with ``permissions`` ('r', 'w', 'rw')."""
        if not set(permissions) <= {"r", "w"} or not permissions:
            raise ValueError(f"invalid permissions {permissions!r}")
        expires_at = self._clock() + (ttl if ttl is not None else self.default_ttl)
        return SasToken(
            resource=resource,
            permissions=permissions,
            expires_at=round(expires_at, 3),
            signature=self._sign(resource, permissions, round(expires_at, 3)),
        )

    def validate(self, token: SasToken, resource: str, permission: str) -> None:
        """Raise :class:`TokenError` unless the token grants ``permission``
        on ``resource`` and has not expired."""
        if token.resource != resource:
            raise TokenError(
                f"token scoped to {token.resource!r}, not {resource!r}"
            )
        if permission not in token.permissions:
            raise TokenError(
                f"token grants {token.permissions!r}, needs {permission!r}"
            )
        expected = self._sign(token.resource, token.permissions, token.expires_at)
        if not hmac.compare_digest(expected, token.signature):
            raise TokenError("invalid token signature")
        if self._clock() > token.expires_at:
            raise TokenError("token expired")
