"""Server-side tenant tuning sessions — the state a shard owns.

Rover-style multi-tenant serving keeps the per-``(workload, query
signature)`` optimizer state *in the service*: the client (or fleet driver)
sends plain suggest/observe requests and the shard hosts the
:class:`~repro.core.centroid.CentroidLearning` session that answers them.

:class:`TenantSessionHost` is that per-shard session table.  It is also the
**reference scalar path**: the sharded service's batched drain
(:mod:`repro.service.batch_exec`) must be bit-identical to calling
:meth:`TenantSessionHost.suggest` / :meth:`~TenantSessionHost.observe`
request-by-request — the ``diff_sharded_single`` oracle pins exactly that.

When the host is built with an :class:`~repro.service.backend.AutotuneBackend`
it registers one app per session (``app_id = "<workload>:<signature>"``) and
forwards every observed :class:`~repro.sparksim.events.QueryEndEvent` through
``submit_events``, so the backend's dedup / storage / Event-Hub pipeline
(model training included) runs identically whether the fleet is sharded or
not.  State handoff between shards moves the live :class:`TenantSession`
object — optimizer, RNG stream, and window travel intact, which is what
keeps a ring resize bit-identical (a JSON snapshot would lose the RNG
state; see ``docs/service.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..core.observation import Observation
from ..core.optimizer_base import Optimizer
from ..sparksim.events import QueryEndEvent
from .auth import TokenError
from .backend import AutotuneBackend, JobGrant

__all__ = ["SessionKey", "TenantSession", "TenantSessionHost", "UNPROBED"]

SessionKey = Tuple[str, str]  # (workload_id, query_signature)

# Sentinel for TenantSession.batch_profile: "not yet probed" (the batched
# executor resolves it to a BatchProfile or None on first contact).
UNPROBED = object()

# (workload_id, query_signature) -> a fresh optimizer for that session.
OptimizerFactory = Callable[[str, str], Optimizer]


class TenantSession:
    """One tenant tuning session living on a shard."""

    __slots__ = ("key", "optimizer", "grant", "batch_profile", "requests")

    def __init__(self, key: SessionKey, optimizer: Optimizer):
        self.key = key
        self.optimizer = optimizer
        self.grant: Optional[JobGrant] = None
        # Resolved lazily by the batched executor (None = scalar-only session).
        self.batch_profile = UNPROBED
        self.requests = 0

    @property
    def workload_id(self) -> str:
        return self.key[0]

    @property
    def query_signature(self) -> str:
        return self.key[1]

    @property
    def app_id(self) -> str:
        return f"{self.key[0]}:{self.key[1]}"


class TenantSessionHost:
    """Per-shard session table + the scalar suggest/observe path.

    Args:
        shard_id: owning shard's id (labels telemetry; ``"single"`` for the
            unsharded reference deployment).
        optimizer_factory: builds the per-session optimizer.  Determinism
            contract: the factory must derive everything (seeds included)
            from the ``(workload_id, query_signature)`` key, so the same
            session created on any shard — or on the single-backend
            reference — is identical.
        backend: optional Autotune backend; when present, sessions register
            as apps and observed events are forwarded through
            ``submit_events`` (token refresh on expiry included).
        user_id_fn: maps a workload id to the owning user (models are
            per-user on the backend).
    """

    def __init__(
        self,
        shard_id: str,
        optimizer_factory: OptimizerFactory,
        backend: Optional[AutotuneBackend] = None,
        user_id_fn: Optional[Callable[[str], str]] = None,
    ):
        self.shard_id = shard_id
        self.optimizer_factory = optimizer_factory
        self.backend = backend
        self.user_id_fn = user_id_fn or (lambda workload_id: f"user-{workload_id}")
        self.sessions: Dict[SessionKey, TenantSession] = {}
        self.events_forwarded = 0

    def __len__(self) -> int:
        return len(self.sessions)

    # -- session lifecycle -------------------------------------------------------

    def session(self, workload_id: str, query_signature: str) -> TenantSession:
        """Get-or-create the session for ``(workload_id, query_signature)``."""
        key = (workload_id, query_signature)
        found = self.sessions.get(key)
        if found is not None:
            return found
        session = TenantSession(key, self.optimizer_factory(workload_id, query_signature))
        if self.backend is not None:
            session.grant = self._register(session)
        self.sessions[key] = session
        telemetry.counter("service.shard.sessions_created", shard=self.shard_id).inc()
        return session

    def _register(self, session: TenantSession) -> JobGrant:
        return self.backend.register_job(
            app_id=session.app_id,
            artifact_id=session.workload_id,
            user_id=self.user_id_fn(session.workload_id),
        )

    # -- scalar request path -----------------------------------------------------

    def suggest(
        self, workload_id: str, query_signature: str, data_size: Optional[float] = None
    ):
        session = self.session(workload_id, query_signature)
        session.requests += 1
        return session.optimizer.suggest(data_size=data_size)

    def observe(
        self,
        workload_id: str,
        query_signature: str,
        observation: Observation,
        event: Optional[QueryEndEvent] = None,
    ) -> None:
        session = self.session(workload_id, query_signature)
        session.requests += 1
        session.optimizer.observe(observation)
        if event is not None:
            self.forward_event(session, event)

    def forward_event(self, session: TenantSession, event: QueryEndEvent) -> None:
        """Push one observed event through the backend pipeline (if any).

        An expired write token is refreshed by re-registering the app once —
        the same recovery the remote client performs via its credential
        manager.
        """
        if self.backend is None:
            return
        if session.grant is None:
            session.grant = self._register(session)
        try:
            self.backend.submit_events(
                session.grant.event_write_token,
                session.app_id,
                session.workload_id,
                [event],
            )
        except TokenError:
            session.grant = self._register(session)
            self.backend.submit_events(
                session.grant.event_write_token,
                session.app_id,
                session.workload_id,
                [event],
            )
        self.events_forwarded += 1

    # -- state handoff -----------------------------------------------------------

    def export_sessions(self, workload_ids) -> List[TenantSession]:
        """Detach and return every session of the given workloads."""
        wanted = set(workload_ids)
        keys = [key for key in self.sessions if key[0] in wanted]
        return [self.sessions.pop(key) for key in keys]

    def adopt(self, session: TenantSession) -> None:
        """Receive a session handed off from another shard.

        The live object moves — optimizer, RNG, and observation window stay
        bit-identical.  Any backend grant from the previous shard is
        dropped; the next forwarded event re-registers against this shard's
        backend lazily.
        """
        if session.key in self.sessions:
            raise ValueError(f"session {session.key} already hosted on {self.shard_id}")
        if self.backend is not None:
            session.grant = None
        self.sessions[session.key] = session
        telemetry.counter("service.shard.sessions_adopted", shard=self.shard_id).inc()
