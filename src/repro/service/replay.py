"""Posterior trajectory replay from stored event logs (Sec. 6.3).

The monitoring dashboard aggregates; this module *reconstructs*: given the
event files the storage manager holds for an artifact, rebuild each query's
tuning trajectory (configs, durations, data sizes per iteration), re-run the
guardrail over it to audit when it fired (or should have), and summarize
what the tuner changed — the deeper "posterior analysis" and RCA workflow
the paper describes running on production traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.config_space import ConfigSpace
from ..core.guardrail import Guardrail, GuardrailDecision
from ..core.observation import Observation
from ..sparksim.events import QueryEndEvent
from .storage import StorageManager

__all__ = ["QueryTrajectory", "GuardrailAudit", "replay_artifact", "audit_guardrail"]


@dataclass
class QueryTrajectory:
    """One query signature's reconstructed tuning history."""

    query_signature: str
    user_id: str
    events: List[QueryEndEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def durations(self) -> np.ndarray:
        return np.array([e.duration_seconds for e in self.events])

    @property
    def data_sizes(self) -> np.ndarray:
        return np.array([e.data_size for e in self.events])

    def config_series(self, knob: str) -> np.ndarray:
        return np.array([e.config.get(knob, np.nan) for e in self.events])

    def knob_travel(self, space: ConfigSpace) -> Dict[str, float]:
        """Net movement of every knob from the first to the last iteration,
        as a fraction of its internal span — 'what did tuning change'."""
        if len(self.events) < 2:
            return {name: 0.0 for name in space.names}
        first = space.to_vector({
            k: v for k, v in self.events[0].config.items() if k in space
        }) if all(n in self.events[0].config for n in space.names) else None
        last = space.to_vector({
            k: v for k, v in self.events[-1].config.items() if k in space
        }) if all(n in self.events[-1].config for n in space.names) else None
        if first is None or last is None:
            return {name: float("nan") for name in space.names}
        bounds = space.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        travel = (last - first) / span
        return {name: float(travel[i]) for i, name in enumerate(space.names)}

    def to_observations(self, space: ConfigSpace) -> List[Observation]:
        """Convert back to optimizer-facing observations (for re-fitting)."""
        out = []
        for i, e in enumerate(self.events):
            config = {k: v for k, v in e.config.items() if k in space}
            if len(config) != space.dim:
                continue
            out.append(Observation(
                config=space.to_vector(config),
                data_size=e.data_size,
                performance=e.duration_seconds,
                iteration=i,
            ))
        return out


def _replay_sort_key(e: QueryEndEvent):
    # Sequenced events restore the client's delivery order even when the
    # transport reordered a batch; unsequenced (legacy) events keep the
    # historical iteration ordering.
    return (e.app_id, e.sequence if e.sequence >= 0 else e.iteration, e.iteration)


def replay_artifact(
    storage: StorageManager, artifact_id: str
) -> Dict[str, QueryTrajectory]:
    """Rebuild per-signature trajectories from an artifact's event files.

    Replay is canonicalizing: duplicate deliveries (same ``(app_id,
    sequence)``) are dropped and events are re-sorted by delivery sequence,
    so the same underlying run replays to an identical trajectory no matter
    how the transport duplicated or reordered its batches on the way to
    storage.
    """
    events = storage.read_artifact_events(artifact_id)
    trajectories: Dict[str, QueryTrajectory] = {}
    seen: set = set()
    for e in events:
        key = e.dedup_key
        if key is not None:
            if key in seen:
                continue
            seen.add(key)
        traj = trajectories.setdefault(
            e.query_signature,
            QueryTrajectory(query_signature=e.query_signature, user_id=e.user_id),
        )
        traj.events.append(e)
    for traj in trajectories.values():
        traj.events.sort(key=_replay_sort_key)
    return trajectories


@dataclass(frozen=True)
class GuardrailAudit:
    """Outcome of re-running the guardrail over a recorded trajectory."""

    query_signature: str
    would_disable: bool
    disable_iteration: Optional[int]
    decisions: List[GuardrailDecision]


def audit_guardrail(
    trajectory: QueryTrajectory,
    space: ConfigSpace,
    guardrail_factory=None,
) -> GuardrailAudit:
    """Re-run a (possibly re-parameterized) guardrail over recorded history.

    Production uses this to answer "with threshold X, when would this query
    have been disabled?" without touching the live system.
    """
    guardrail = guardrail_factory() if guardrail_factory else Guardrail()
    disable_iteration: Optional[int] = None
    for i, obs in enumerate(trajectory.to_observations(space)):
        active = guardrail.update(obs)
        if not active and disable_iteration is None:
            disable_iteration = i
    return GuardrailAudit(
        query_signature=trajectory.query_signature,
        would_disable=not guardrail.active,
        disable_iteration=disable_iteration,
        decisions=list(guardrail.decisions),
    )
