"""Monitoring dashboard (Sec. 6.3, posterior analysis).

Collects the metrics "directly influenced by configuration suggestions":
(1) partitions, (2) physical plans, (3) task numbers, and (4) input data
sizes — and provides the per-signature views used for root-cause analysis
and for the deployment speed-up reports (Figs. 15–16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..ml.linear import LinearRegression
from ..ml.metrics import spearman_rho
from ..sparksim.events import QueryEndEvent

__all__ = [
    "MonitoringDashboard",
    "QuerySummary",
    "RootCauseReport",
    "render_metrics",
    "render_service_metrics",
]


def render_metrics(metrics: Dict[str, object]) -> str:
    """Fixed-width text render of a backend :meth:`~repro.service.backend.AutotuneBackend.metrics` payload.

    Shows the backend's own counters first, then — when the telemetry
    facade was enabled at scrape time — the full registry snapshot
    (counters/gauges sorted by key, histograms as one-line summaries).
    """
    lines: List[str] = ["autotune backend metrics", "=" * 24]
    backend = metrics.get("backend", {})
    if backend:
        width = max(len(k) for k in backend)
        for key in sorted(backend):
            lines.append(f"  {key:<{width}}  {backend[key]:g}")
    snapshot = metrics.get("telemetry")
    if snapshot is None:
        lines.append("(telemetry disabled — enable repro.telemetry for the full registry)")
        return "\n".join(lines)
    for section in ("counters", "gauges"):
        entries = snapshot.get(section, {})
        if not entries:
            continue
        lines.append(f"[{section}]")
        width = max(len(k) for k in entries)
        for key in sorted(entries):
            lines.append(f"  {key:<{width}}  {entries[key]:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("[histograms]")
        width = max(len(k) for k in histograms)
        for key in sorted(histograms):
            s = histograms[key]
            lines.append(
                f"  {key:<{width}}  count={s['count']:g} mean={s['mean']:.6g} "
                f"p50={s['p50']:.6g} p99={s['p99']:.6g} max={s['max']:.6g}"
            )
    return "\n".join(lines)


def render_service_metrics(metrics: Dict[str, object]) -> str:
    """Fixed-width render of a :meth:`~repro.service.sharded.ShardedAutotuneService.metrics` payload.

    One row per shard (sessions, queue depth/high-water, shed and processed
    counts) with a utilization bar scaled to the busiest shard, then the
    fleet aggregates (shed rate, utilization skew) — the at-a-glance view
    for "is one shard running hot".
    """
    service = metrics.get("service", {})
    shards: Dict[str, Dict[str, object]] = service.get("shards", {})
    header = (
        f"{'shard':<12}{'sessions':>9}{'depth':>7}{'hiwater':>9}"
        f"{'shed':>6}{'processed':>11}  utilization"
    )
    lines = [
        f"sharded autotune service — {service.get('n_shards', len(shards))} shard(s), "
        f"coalesce={'on' if service.get('coalesce') else 'off'}",
        header,
        "-" * len(header),
    ]
    busiest = max((s["processed"] for s in shards.values()), default=0)
    for shard_id in sorted(shards):
        shard = shards[shard_id]
        bar = "#" * int(round(12 * shard["processed"] / busiest)) if busiest else ""
        lines.append(
            f"{shard_id:<12}{shard['sessions']:>9}{shard['queue_depth']:>7}"
            f"{shard['queue_high_watermark']:>9}{shard['shed']:>6}"
            f"{shard['processed']:>11}  {bar}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"submitted={service.get('submitted', 0)} shed={service.get('shed', 0)} "
        f"(rate {100.0 * service.get('shed_rate', 0.0):.1f}%) "
        f"outages={service.get('outages', 0)} "
        f"skew={service.get('utilization_skew', 1.0):.2f}x"
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class QuerySummary:
    """Per-signature dashboard row."""

    query_signature: str
    user_id: str
    iterations: int
    first_window_mean: float
    last_window_mean: float
    speedup_pct: float
    trend_slope: float            # seconds per iteration (data-size adjusted)
    mean_data_size: float
    distinct_plans: int


@dataclass(frozen=True)
class RootCauseReport:
    """What moved a query's performance (Sec. 6.3 posterior analysis / RCA).

    Attributes:
        query_signature: the query analyzed.
        knob_correlations: per-knob Spearman correlation between the knob's
            value and the *data-size-adjusted* duration residual — positive
            means raising the knob slowed the query down.
        metric_correlations: same, for runtime metrics (tasks, partitions,
            spills) the configuration influences.
        data_size_correlation: correlation of raw duration with input size —
            when this dominates, performance changes are explained by the
            data, not by tuning.
        dominant_factor: the single name with the largest |correlation|.
    """

    query_signature: str
    knob_correlations: Dict[str, float]
    metric_correlations: Dict[str, float]
    data_size_correlation: float
    dominant_factor: str


class MonitoringDashboard:
    """Aggregates query-end events into tuning health views."""

    def __init__(self, window: int = 5):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._events: Dict[str, List[QueryEndEvent]] = {}

    def ingest(self, event: QueryEndEvent) -> None:
        self._events.setdefault(event.query_signature, []).append(event)

    def ingest_many(self, events: Sequence[QueryEndEvent]) -> None:
        for event in events:
            self.ingest(event)

    @property
    def signatures(self) -> List[str]:
        return sorted(self._events)

    def events_for(self, signature: str) -> List[QueryEndEvent]:
        return list(self._events.get(signature, []))

    # -- views ------------------------------------------------------------------------

    def config_history(self, signature: str) -> Dict[str, np.ndarray]:
        """Per-knob value series across iterations (dashboard line charts)."""
        events = self._events.get(signature, [])
        if not events:
            raise KeyError(f"unknown signature {signature!r}")
        knobs = sorted(events[0].config)
        return {k: np.array([e.config.get(k, np.nan) for e in events]) for k in knobs}

    def performance_trend(self, signature: str) -> float:
        """Data-size-adjusted seconds-per-iteration slope (negative = improving)."""
        events = self._events.get(signature, [])
        if len(events) < 3:
            return 0.0
        X = np.column_stack([
            np.arange(len(events), dtype=float),
            [e.data_size for e in events],
        ])
        y = np.array([e.duration_seconds for e in events])
        model = LinearRegression()
        model.fit(X, y)
        return float(model.coef_[0])

    def speedup_pct(self, signature: str) -> float:
        """First-window vs last-window mean duration, as a percentage.

        Positive = the query got faster under tuning.
        """
        events = self._events.get(signature, [])
        if len(events) < 2 * self.window:
            return 0.0
        first = float(np.mean([e.duration_seconds for e in events[: self.window]]))
        last = float(np.mean([e.duration_seconds for e in events[-self.window:]]))
        if last <= 0:
            return 0.0
        return (first / last - 1.0) * 100.0

    def summary(self, signature: str) -> QuerySummary:
        events = self._events.get(signature, [])
        if not events:
            raise KeyError(f"unknown signature {signature!r}")
        w = min(self.window, max(1, len(events) // 2))
        durations = [e.duration_seconds for e in events]
        return QuerySummary(
            query_signature=signature,
            user_id=events[0].user_id,
            iterations=len(events),
            first_window_mean=float(np.mean(durations[:w])),
            last_window_mean=float(np.mean(durations[-w:])),
            speedup_pct=self.speedup_pct(signature),
            trend_slope=self.performance_trend(signature),
            mean_data_size=float(np.mean([e.data_size for e in events])),
            distinct_plans=len({e.query_signature for e in events}),
        )

    def all_summaries(self) -> List[QuerySummary]:
        return [self.summary(s) for s in self.signatures]

    def explain(self, signature: str) -> RootCauseReport:
        """Root-cause analysis: attribute duration changes to knobs, runtime
        metrics, or input-size drift.

        Durations are first residualized against data size (a linear fit) so
        that input growth does not masquerade as a knob effect; knob/metric
        correlations are rank-based (Spearman) to survive spikes.
        """
        events = self._events.get(signature, [])
        if len(events) < 4:
            raise ValueError(
                f"need >= 4 events for RCA on {signature!r}, have {len(events)}"
            )
        durations = np.array([e.duration_seconds for e in events])
        sizes = np.array([e.data_size for e in events])

        data_size_corr = spearman_rho(sizes, durations)
        size_model = LinearRegression()
        size_model.fit(sizes.reshape(-1, 1), durations)
        residuals = durations - size_model.predict(sizes.reshape(-1, 1))

        knob_corr: Dict[str, float] = {}
        for knob in sorted(events[0].config):
            values = np.array([e.config.get(knob, np.nan) for e in events])
            if np.std(values) > 1e-12:
                knob_corr[knob] = spearman_rho(values, residuals)

        metric_corr: Dict[str, float] = {}
        metric_names = set().union(*(e.metrics.keys() for e in events)) if events else set()
        for name in sorted(metric_names):
            values = np.array([e.metrics.get(name, np.nan) for e in events])
            if np.all(np.isfinite(values)) and np.std(values) > 1e-12:
                metric_corr[name] = spearman_rho(values, residuals)

        candidates: Dict[str, float] = {"data_size": data_size_corr}
        candidates.update(knob_corr)
        candidates.update(metric_corr)
        dominant = max(candidates, key=lambda k: abs(candidates[k]))
        return RootCauseReport(
            query_signature=signature,
            knob_correlations=knob_corr,
            metric_correlations=metric_corr,
            data_size_correlation=data_size_corr,
            dominant_factor=dominant,
        )

    def render_report(self, max_rows: int = 20) -> str:
        """Fixed-width fleet report — the dashboard's landing view."""
        header = (
            f"{'signature':<18}{'runs':>6}{'first(s)':>10}{'last(s)':>10}"
            f"{'speedup%':>10}{'trend s/it':>12}"
        )
        lines = [header, "-" * len(header)]
        for summary in self.all_summaries()[:max_rows]:
            lines.append(
                f"{summary.query_signature:<18}{summary.iterations:>6}"
                f"{summary.first_window_mean:>10.2f}{summary.last_window_mean:>10.2f}"
                f"{summary.speedup_pct:>10.1f}{summary.trend_slope:>12.4f}"
            )
        lines.append("-" * len(header))
        lines.append(f"fleet speed-up: {self.fleet_speedup_pct():+.1f}%")
        return "\n".join(lines)

    def fleet_speedup_pct(self) -> float:
        """Total-time speed-up across all signatures (first vs last window)."""
        firsts, lasts = 0.0, 0.0
        for events in self._events.values():
            if len(events) < 2 * self.window:
                continue
            firsts += float(np.sum([e.duration_seconds for e in events[: self.window]]))
            lasts += float(np.sum([e.duration_seconds for e in events[-self.window:]]))
        if lasts <= 0:
            return 0.0
        return (firsts / lasts - 1.0) * 100.0
