"""The Autotune Backend (Sec. 5, Fig. 7).

Hosts the three streaming jobs — the Embedding ETL, the Model Updater and
the App Cache Generator — plus job registration (issuing SAS tokens) and
model/event storage access.  Per-query models are trained from events that
share a ``(user_id, query_signature)`` pair, never across users (the
Sec.-4.2 privacy rule).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..core.app_level import AppCache, AppCacheEntry, QueryTuningContext, optimize_app_config
from ..core.config_space import ConfigSpace
from ..ml.base import Regressor
from ..ml.forest import RandomForestRegressor
from ..ml.serialize import dumps_model
from ..sparksim.events import AppEndEvent, QueryEndEvent
from .auth import SasToken, SasTokenIssuer
from .events_hub import EventHub
from .storage import StorageManager

__all__ = ["JobGrant", "WarmStartSuggestion", "AutotuneBackend"]


def _default_query_model_factory() -> Regressor:
    # Forests serialize through ml.serialize (the ONNX stand-in) and handle
    # the non-linear config→time response without feature engineering.
    return RandomForestRegressor(n_estimators=20, min_samples_leaf=2, seed=0)


@dataclass(frozen=True)
class JobGrant:
    """What a newly registered Spark job receives from the backend."""

    app_id: str
    artifact_id: str
    event_write_token: SasToken
    model_read_token: SasToken
    app_config: Optional[Dict[str, float]] = None   # pre-computed app_cache hit


@dataclass(frozen=True)
class WarmStartSuggestion:
    """A cold-start configuration recommendation.

    ``source`` records which path produced it: ``"retrieval"`` (ANN hit in
    the tuned-history corpus — the zero-execution path) or ``"baseline"``
    (argmin of the stored per-query model over a seeded candidate sweep).
    ``neighbors`` carries the retrieved histories (empty on the baseline
    path) so the client can seed its optimizer with them as priors.
    """

    config: Dict[str, float]
    source: str
    distance: float = float("nan")
    neighbors: tuple = ()


class AutotuneBackend:
    """Cloud-side half of Rockhopper's online phase.

    Args:
        storage: event/model storage.
        issuer: SAS token issuer.
        query_space: query-level knob space (model feature layout).
        app_space: app-level knob space; enables the App Cache Generator.
        full_space: joint space used when events carry both knob scopes.
        app_cache: pre-computed app-config store.
        hub: event hub (a private one is created when omitted).
        model_factory: per-query surrogate constructor (must be
            serialization-compatible).
        min_events_for_model: events needed before a per-query model trains.
        retrain_every: further retrains happen every this many new events per
            (user, signature) — production batches model updates rather than
            retraining on every single query completion.
        dedup_events: drop sequenced events whose ``(app_id, sequence)`` the
            backend has already accepted.  This makes :meth:`submit_events`
            idempotent, so a client may retry a batch whose upload failed
            mid-write without double-counting anything.  Disable only to
            demonstrate the vulnerability (chaos tests do).
        retrieval_max_distance: reject ANN warm-start hits farther than
            this embedding distance (``None`` accepts any hit) — guards
            against recommending a tuned config from a dissimilar workload
            when the corpus has no good neighbor.
        warm_start_candidates: size of the seeded Latin-hypercube sweep the
            baseline-model fallback scores when the retrieval path misses.
    """

    def __init__(
        self,
        storage: StorageManager,
        issuer: SasTokenIssuer,
        query_space: ConfigSpace,
        app_space: Optional[ConfigSpace] = None,
        full_space: Optional[ConfigSpace] = None,
        app_cache: Optional[AppCache] = None,
        hub: Optional[EventHub] = None,
        model_factory: Optional[Callable[[], Regressor]] = None,
        min_events_for_model: int = 3,
        retrain_every: int = 1,
        dedup_events: bool = True,
        retrieval_max_distance: Optional[float] = None,
        warm_start_candidates: int = 64,
    ):
        if retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        self.storage = storage
        self.issuer = issuer
        self.query_space = query_space
        self.app_space = app_space
        self.full_space = full_space
        self.app_cache = app_cache if app_cache is not None else AppCache()
        self.hub = hub if hub is not None else EventHub()
        self.model_factory = model_factory or _default_query_model_factory
        self.min_events_for_model = min_events_for_model
        self.retrain_every = retrain_every
        self.dedup_events = dedup_events
        # In-memory per-(user, signature) event groups feeding the updater.
        self._query_events: Dict[Tuple[str, str], List[QueryEndEvent]] = {}
        self._trained_at: Dict[Tuple[str, str], int] = {}
        self._seen_event_keys: set = set()
        self._seen_app_ends: set = set()
        self.models_trained = 0
        self.train_failures = 0
        self.duplicates_dropped = 0
        self.retrieval_max_distance = retrieval_max_distance
        self.warm_start_candidates = warm_start_candidates
        # Retrieval cold-start state: the corpus loads lazily from storage
        # (and re-loads after publish); load errors degrade to the baseline.
        self._corpus = None
        self._corpus_loaded = False
        self.retrieval_hits = 0
        self.retrieval_fallbacks = 0
        self.warm_start_misses = 0
        self.corpus_load_failures = 0
        self.hub.subscribe("model-updater", self._on_event)
        if self.app_space is not None:
            self.hub.subscribe("app-cache-generator", self._on_app_end)

    # -- registration & access (tokens) -------------------------------------------

    def register_job(self, app_id: str, artifact_id: str, user_id: str) -> JobGrant:
        """Issue scoped tokens and return any pre-computed app config."""
        started = time.perf_counter() if telemetry.enabled() else None
        cached = self.app_cache.get(artifact_id)
        telemetry.counter("backend.requests", op="register_job").inc()
        telemetry.counter("backend.app_cache_lookups",
                          result="hit" if cached is not None else "miss").inc()
        grant = JobGrant(
            app_id=app_id,
            artifact_id=artifact_id,
            event_write_token=self.issuer.issue(f"events/{app_id}", "w"),
            model_read_token=self.issuer.issue(f"models/{user_id}", "r"),
            app_config=dict(cached.config) if cached is not None else None,
        )
        if started is not None:
            telemetry.histogram("backend.request_seconds", op="register_job").observe(
                time.perf_counter() - started
            )
        return grant

    def submit_events(
        self, token: SasToken, app_id: str, artifact_id: str,
        events: Sequence[QueryEndEvent],
    ) -> int:
        """Client event upload: validate, dedup, persist, fan out.

        Returns the number of *newly accepted* events.  Sequenced events
        the backend has already seen (a retried batch after a partial
        write, or transport-level re-delivery) are dropped before they
        reach storage or the streaming jobs; seen-keys are recorded only
        *after* the storage append succeeds, so a failed write is retried
        rather than mistaken for a duplicate.
        """
        started = time.perf_counter() if telemetry.enabled() else None
        telemetry.counter("backend.requests", op="submit_events").inc()
        self.issuer.validate(token, f"events/{app_id}", "w")
        fresh: List[QueryEndEvent] = []
        keys: List[object] = []
        for event in events:
            key = getattr(event, "dedup_key", None)
            if self.dedup_events and key is not None and (
                key in self._seen_event_keys or key in keys
            ):
                self.duplicates_dropped += 1
                telemetry.counter("backend.duplicates_dropped").inc()
                continue
            fresh.append(event)
            keys.append(key)
        if not fresh:
            return 0
        self.storage.append_events(app_id, artifact_id, fresh)
        self._seen_event_keys.update(k for k in keys if k is not None)
        for event in fresh:
            self.hub.publish(event)
        telemetry.counter("backend.events_accepted").inc(len(fresh))
        if started is not None:
            telemetry.histogram("backend.request_seconds", op="submit_events").observe(
                time.perf_counter() - started
            )
        return len(fresh)

    def submit_app_end(self, token: SasToken, event: AppEndEvent) -> None:
        telemetry.counter("backend.requests", op="submit_app_end").inc()
        self.issuer.validate(token, f"events/{event.app_id}", "w")
        if self.dedup_events:
            if event.app_id in self._seen_app_ends:
                self.duplicates_dropped += 1
                telemetry.counter("backend.duplicates_dropped").inc()
                return
            self._seen_app_ends.add(event.app_id)
        self.hub.publish(event)

    def fetch_model(
        self, token: SasToken, user_id: str, query_signature: str
    ) -> Optional[str]:
        """Serialized per-query model, or ``None`` if not trained yet."""
        started = time.perf_counter() if telemetry.enabled() else None
        telemetry.counter("backend.requests", op="fetch_model").inc()
        self.issuer.validate(token, f"models/{user_id}", "r")
        payload = self.storage.read_model(user_id, query_signature)
        if started is not None:
            telemetry.histogram("backend.request_seconds", op="fetch_model").observe(
                time.perf_counter() - started
            )
        return payload

    # -- retrieval cold start ------------------------------------------------------

    def publish_retrieval_corpus(self, corpus) -> None:
        """Persist a :class:`repro.retrieval.RetrievalCorpus` and serve it.

        The offline pipeline calls this after harvesting tuned histories;
        the cached in-memory corpus is dropped so the next
        :meth:`fetch_warm_start` reads the fresh payload.
        """
        self.storage.write_retrieval_corpus(corpus.dumps())
        self._corpus = None
        self._corpus_loaded = False

    def _load_corpus(self):
        """Lazy corpus load; any storage/decode fault degrades to baseline."""
        if self._corpus_loaded:
            return self._corpus
        self._corpus_loaded = True
        try:
            payload = self.storage.read_retrieval_corpus()
            if payload is not None:
                from ..retrieval.corpus import RetrievalCorpus

                self._corpus = RetrievalCorpus.loads(payload)
        except Exception:  # noqa: BLE001 — a broken corpus must not 500 the path
            self.corpus_load_failures += 1
            telemetry.counter("backend.corpus_load_failures").inc()
            self._corpus = None
        return self._corpus

    def fetch_warm_start(
        self,
        token: SasToken,
        user_id: str,
        query_signature: str,
        embedding: np.ndarray,
        data_size: float = 1.0,
        k: int = 3,
    ) -> Optional[WarmStartSuggestion]:
        """Zero-execution cold-start recommendation for a new workload.

        Consults the ANN retrieval corpus first: sufficiently close tuned
        histories answer immediately with the size-adapted mean of their
        converged configurations (``repro.retrieval.recommend_config``; the
        retrieved neighbors ride along as optimizer priors).  On a miss
        — no corpus, no neighbor within ``retrieval_max_distance``, or a
        corpus read fault — falls back to the stored per-query baseline
        model, scored over a seeded Latin-hypercube sweep.  Returns ``None``
        when neither path can recommend (counted as a miss).
        """
        started = time.perf_counter() if telemetry.enabled() else None
        telemetry.counter("backend.requests", op="fetch_warm_start").inc()
        self.issuer.validate(token, f"models/{user_id}", "r")
        suggestion = None
        corpus = self._load_corpus()
        if corpus is not None and len(corpus):
            neighbors = corpus.search(np.asarray(embedding, dtype=float), k=k)
            if neighbors and (
                self.retrieval_max_distance is None
                or neighbors[0].distance <= self.retrieval_max_distance
            ):
                self.retrieval_hits += 1
                telemetry.counter("backend.cold_start", result="hit").inc()
                from ..retrieval.corpus import recommend_config

                suggestion = WarmStartSuggestion(
                    config=recommend_config(
                        neighbors, self.query_space, data_size=data_size
                    ),
                    source="retrieval",
                    distance=neighbors[0].distance,
                    neighbors=tuple(neighbors),
                )
        if suggestion is None:
            suggestion = self._baseline_warm_start(user_id, query_signature, data_size)
            if suggestion is not None:
                self.retrieval_fallbacks += 1
                telemetry.counter("backend.cold_start", result="fallback").inc()
            else:
                self.warm_start_misses += 1
                telemetry.counter("backend.cold_start", result="miss").inc()
        if started is not None:
            telemetry.histogram("backend.request_seconds", op="fetch_warm_start").observe(
                time.perf_counter() - started
            )
        return suggestion

    def _baseline_warm_start(
        self, user_id: str, query_signature: str, data_size: float
    ) -> Optional[WarmStartSuggestion]:
        """Argmin of the stored per-query model over a seeded LHS sweep."""
        payload = self.storage.read_model(user_id, query_signature)
        if payload is None:
            return None
        from ..ml.serialize import loads_model

        model = loads_model(payload)
        rng = np.random.default_rng(0)
        candidates = self.query_space.latin_hypercube(self.warm_start_candidates, rng)
        X = np.hstack([candidates, np.full((len(candidates), 1), float(data_size))])
        best = int(np.argmin(model.predict(X)))
        return WarmStartSuggestion(
            config=self.query_space.to_dict(candidates[best]), source="baseline"
        )

    def metrics(self) -> Dict[str, object]:
        """The backend's metrics endpoint (the ``/metrics`` stand-in).

        Always reports the backend's own counters; when the global
        telemetry facade is enabled the full registry snapshot rides
        along, so one scrape covers the whole process.  Render with
        :func:`repro.service.dashboard.render_metrics`.
        """
        return {
            "backend": {
                "models_trained": self.models_trained,
                "train_failures": self.train_failures,
                "duplicates_dropped": self.duplicates_dropped,
                "retrieval_hits": self.retrieval_hits,
                "retrieval_fallbacks": self.retrieval_fallbacks,
                "warm_start_misses": self.warm_start_misses,
                "corpus_load_failures": self.corpus_load_failures,
                "hub_published": self.hub.published_count,
                "hub_deduped": self.hub.duplicates_dropped,
                "hub_failures": len(self.hub.failures),
                "tracked_query_groups": len(self._query_events),
            },
            "telemetry": telemetry.snapshot() if telemetry.enabled() else None,
        }

    # -- Model Updater streaming job ----------------------------------------------

    def _on_event(self, event: object) -> None:
        if not isinstance(event, QueryEndEvent):
            return
        key = (event.user_id, event.query_signature)
        group = self._query_events.setdefault(key, [])
        group.append(event)
        if len(group) < self.min_events_for_model:
            return
        last = self._trained_at.get(key)
        if last is not None and len(group) - last < self.retrain_every:
            return
        if self._train_query_model(key, group):
            self._trained_at[key] = len(group)

    def _train_query_model(
        self, key: Tuple[str, str], events: Sequence[QueryEndEvent]
    ) -> bool:
        """Train and persist one per-query model; returns success.

        A failed fit or model write must never poison the event pipeline:
        the failure is counted, the previously stored model (if any) stays
        serving, and — because ``_trained_at`` is only advanced on success —
        the next event for this key retries the training.
        """
        user_id, signature = key
        X = np.array([
            np.concatenate([self.query_space.to_vector(e.config), [e.data_size]])
            for e in events
        ])
        y = np.array([e.duration_seconds for e in events])
        started = time.perf_counter() if telemetry.enabled() else None
        try:
            model = self.model_factory()
            model.fit(X, y)
            self.storage.write_model(user_id, signature, dumps_model(model))
        except Exception:  # noqa: BLE001 — degrade, don't derail the hub
            self.train_failures += 1
            telemetry.counter("backend.model_trainings", result="failure").inc()
            return False
        self.models_trained += 1
        telemetry.counter("backend.model_trainings", result="success").inc()
        if started is not None:
            telemetry.histogram("backend.train_seconds").observe(
                time.perf_counter() - started
            )
        return True

    # -- App Cache Generator streaming job -------------------------------------------

    def _on_app_end(self, event: object) -> None:
        if not isinstance(event, AppEndEvent):
            return
        self._generate_app_cache(event)

    def _generate_app_cache(self, event: AppEndEvent) -> None:
        """Run Algorithm 2 over the artifact's history and cache the result."""
        if self.app_space is None or self.full_space is None:
            return
        events = self.storage.read_artifact_events(event.artifact_id)
        groups: Dict[str, List[QueryEndEvent]] = {}
        for e in events:
            groups.setdefault(e.query_signature, []).append(e)
        contexts: List[QueryTuningContext] = []
        app_names = self.app_space.names
        query_names = self.query_space.names
        full_index = {name: i for i, name in enumerate(self.full_space.names)}
        # Events from query-level-only tuning omit app knobs: fill those from
        # the application's own configuration, then space defaults.
        base_config = dict(self.full_space.default_dict())
        base_config.update(
            {k: v for k, v in event.app_config.items() if k in self.full_space}
        )
        for signature, group in groups.items():
            if len(group) < self.min_events_for_model:
                continue
            X = np.array([
                np.concatenate([
                    self.full_space.to_vector({**base_config, **{
                        k: v for k, v in e.config.items() if k in self.full_space
                    }}),
                    [e.data_size],
                ])
                for e in group
            ])
            y = np.array([e.duration_seconds for e in group])
            model = self.model_factory()
            model.fit(X, y)
            latest_size = group[-1].data_size
            best = group[int(np.argmin(y))]
            centroid = self.query_space.to_vector({
                **{k: base_config[k] for k in query_names},
                **{k: v for k, v in best.config.items() if k in self.query_space},
            })

            def score_fn(v, w, _model=model, _p=latest_size):
                full = np.empty(len(full_index))
                for j, name in enumerate(app_names):
                    full[full_index[name]] = v[j]
                for j, name in enumerate(query_names):
                    full[full_index[name]] = w[j]
                row = np.concatenate([full, [_p]])[None, :]
                return -float(_model.predict(row)[0])

            contexts.append(
                QueryTuningContext(
                    query_space=self.query_space, centroid=centroid, score_fn=score_fn
                )
            )
        if not contexts:
            return
        app_defaults = self.app_space.default_dict()
        app_defaults.update(
            {k: v for k, v in event.app_config.items() if k in self.app_space}
        )
        current_app = self.app_space.to_vector(app_defaults)
        best_vector = optimize_app_config(
            self.app_space, current_app, contexts,
            rng=np.random.default_rng(len(events)),
        )
        self.app_cache.put(
            AppCacheEntry(
                artifact_id=event.artifact_id,
                config=self.app_space.to_dict(best_vector),
                n_queries=len(contexts),
            )
        )
