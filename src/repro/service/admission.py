"""Bounded ingress queues, priority-class admission control, load shedding.

Each shard of the sharded Autotune service fronts its request processing
with a :class:`ShardQueue`: a bounded FIFO whose *admission* depends on the
request's :class:`Priority` class.  As the queue fills, lower classes are
shed first — ``BEST_EFFORT`` traffic stops being admitted at half capacity,
``BATCH`` at three quarters, and ``INTERACTIVE`` only when the queue is
actually full — so an overloaded shard degrades by dropping the traffic
that tolerates it.

A rejected request gets a :class:`ShedVerdict` with a ``retry_after`` hint
that grows with the overload; :class:`ShedError` wraps the verdict as a
:class:`~repro.service.resilience.TransientServiceError` subclass, so the
client's existing :class:`~repro.service.resilience.RetryPolicy` retries it
— and, since PR 9, honors ``retry_after`` as a backoff floor (see
``RetryPolicy.call``).  Everything is deterministic: no randomized drop
probabilities, no wall-clock reads.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Deque, Dict, List, Optional

from .. import telemetry
from .resilience import TransientServiceError

__all__ = [
    "AdmissionController",
    "Priority",
    "ShardQueue",
    "ShedError",
    "ShedVerdict",
]


class Priority(enum.IntEnum):
    """Request criticality — lower value = more important, shed last."""

    INTERACTIVE = 0
    BATCH = 1
    BEST_EFFORT = 2


# Fraction of queue capacity each class may fill before being shed.
_DEFAULT_FRACTIONS: Dict[Priority, float] = {
    Priority.INTERACTIVE: 1.0,
    Priority.BATCH: 0.75,
    Priority.BEST_EFFORT: 0.5,
}


class ShedVerdict:
    """Outcome of one admission decision."""

    __slots__ = ("accepted", "reason", "retry_after")

    def __init__(self, accepted: bool, reason: str, retry_after: float = 0.0):
        self.accepted = accepted
        self.reason = reason
        self.retry_after = retry_after

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:
        if self.accepted:
            return "ShedVerdict(accepted)"
        return f"ShedVerdict(shed, reason={self.reason!r}, retry_after={self.retry_after:g})"


class ShedError(TransientServiceError):
    """Backpressure response: the request was shed, retry after a delay.

    Subclassing :class:`TransientServiceError` means every existing
    ``RetryPolicy.call`` site retries sheds without modification; the
    ``retry_after`` attribute is the backoff floor the policy honors.
    """

    def __init__(self, verdict: ShedVerdict, shard_id: Optional[str] = None):
        super().__init__(
            f"request shed ({verdict.reason})"
            + (f" by {shard_id}" if shard_id else "")
            + f"; retry after {verdict.retry_after:g}s"
        )
        self.verdict = verdict
        self.shard_id = shard_id
        self.retry_after = verdict.retry_after


class AdmissionController:
    """Priority-thresholded admission over a bounded queue.

    Args:
        capacity: the fronted queue's capacity.
        fractions: per-class fill fraction at which that class is shed;
            defaults to 1.0 / 0.75 / 0.5 for INTERACTIVE / BATCH /
            BEST_EFFORT.
        base_retry_after: ``retry_after`` hint at the shed threshold; the
            hint scales up linearly with queue depth beyond it.
    """

    def __init__(
        self,
        capacity: int,
        fractions: Optional[Dict[Priority, float]] = None,
        base_retry_after: float = 0.05,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        fractions = dict(_DEFAULT_FRACTIONS if fractions is None else fractions)
        for priority in Priority:
            share = fractions.get(priority)
            if share is None or not 0 < share <= 1:
                raise ValueError(f"fractions[{priority.name}] must be in (0, 1]")
        self.capacity = capacity
        self.base_retry_after = base_retry_after
        self.thresholds: Dict[Priority, int] = {
            priority: max(1, math.ceil(capacity * fractions[priority]))
            for priority in Priority
        }

    def admit(self, depth: int, priority: Priority) -> ShedVerdict:
        """Decide whether a request of ``priority`` enters at ``depth``."""
        threshold = self.thresholds[Priority(priority)]
        if depth < threshold:
            return ShedVerdict(True, "ok")
        reason = "queue_full" if depth >= self.capacity else "priority_shed"
        overload = 1.0 + (depth - threshold + 1) / self.capacity
        return ShedVerdict(False, reason, retry_after=self.base_retry_after * overload)


class ShardQueue:
    """Bounded FIFO ingress queue with priority-class admission.

    Processing order is strictly FIFO across classes — priorities shape
    *admission* (who gets in under load), not reordering, so per-tenant
    request order is preserved end-to-end.
    """

    def __init__(self, capacity: int, admission: Optional[AdmissionController] = None):
        self.admission = admission or AdmissionController(capacity)
        if self.admission.capacity != capacity:
            raise ValueError("admission controller capacity must match the queue's")
        self.capacity = capacity
        self._items: Deque[object] = deque()
        self.enqueued = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def offer(self, request: object, priority: Priority = Priority.BATCH) -> ShedVerdict:
        """Admit-or-shed ``request``; never blocks, never reorders."""
        verdict = self.admission.admit(len(self._items), priority)
        if not verdict.accepted:
            self.shed += 1
            self.shed_by_reason[verdict.reason] = (
                self.shed_by_reason.get(verdict.reason, 0) + 1
            )
            telemetry.counter(
                "service.queue.sheds",
                reason=verdict.reason,
                priority=Priority(priority).name,
            ).inc()
            return verdict
        self._items.append(request)
        self.enqueued += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        return verdict

    def drain(self, max_items: Optional[int] = None) -> List[object]:
        """Dequeue up to ``max_items`` requests (all, by default) in FIFO order."""
        count = len(self._items) if max_items is None else min(max_items, len(self._items))
        return [self._items.popleft() for _ in range(count)]
