"""Fleet-scale driver: thousands of tenant sessions against the service.

The driver materializes a population of recurring customer notebooks
(:func:`repro.workloads.customer.generate_population`), opens one tuning
session per ``(workload, query)`` pair, and runs them *phased* against a
:class:`~repro.service.sharded.ShardedAutotuneService`:

1. every session submits its ``suggest`` for round *t* (shed requests back
   off and resubmit after a drain, like a client honoring ``retry_after``);
2. the service drains — co-tenant requests coalesce into batched model
   calls on each shard;
3. the fleet executes the suggested configs on its client-side simulators;
4. every session submits its ``observe`` (+ ``QueryEndEvent``), and the
   service drains again.

:class:`FleetReport` carries the headline numbers the benchmark publishes:
service throughput (requests per second of drain wall time — the number
the ≥3× sharded-vs-single guard compares), end-to-end sessions/sec,
p50/p99 request latency (queue wait + batch wait + shed backoff included),
shed rate, and shard-utilization skew.

Determinism contract: every seed derives arithmetically from
``(base_seed, workload index, query index)`` — the same fleet spec produces
the same request stream no matter how the service is sharded, which is what
lets the ``diff_sharded_single`` oracle re-run one fleet against different
deployments and demand bit-identical per-session trails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.observation import Observation
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.plan import PhysicalPlan
from ..workloads.customer import CustomerWorkload, fleet_priority_class, generate_population
from .admission import Priority
from .sharded import ShardedAutotuneService, TuneRequest

__all__ = [
    "FleetReport",
    "FleetSession",
    "build_fleet",
    "default_optimizer_factory",
    "fleet_user_map",
    "run_fleet",
]

_PRIORITY_BY_NAME = {
    "interactive": Priority.INTERACTIVE,
    "batch": Priority.BATCH,
    "best_effort": Priority.BEST_EFFORT,
}

# Workload-index seed stride: keeps per-workload seed families disjoint while
# staying composable with the fig15 per-query derivations (seed*13+q, *101+q).
_WORKLOAD_SEED_STRIDE = 1000003


@dataclass
class FleetSession:
    """One tenant tuning session the fleet drives."""

    workload: CustomerWorkload
    workload_index: int
    query_index: int
    plan: PhysicalPlan
    signature: str
    simulator: SparkSimulator
    priority: Priority

    @property
    def workload_id(self) -> str:
        return self.workload.workload_id

    @property
    def user_id(self) -> str:
        return self.workload.user_id

    @property
    def app_id(self) -> str:
        return f"{self.workload_id}:{self.signature}"

    def optimizer_seed(self, base_seed: int) -> int:
        return (base_seed * _WORKLOAD_SEED_STRIDE + self.workload_index) * 13 + self.query_index


def _session_seed(base_seed: int, w_index: int, q_index: int, stream: int) -> int:
    return (base_seed * _WORKLOAD_SEED_STRIDE + w_index) * stream + q_index


def build_fleet(
    n_workloads: int,
    seed: int = 0,
    max_queries_per_workload: Optional[int] = None,
) -> List[FleetSession]:
    """Materialize the session population for a fleet run.

    Session keys are ``(workload_id, "<workload_id>/q<j>")`` — the query
    signature embeds the workload id so session keys stay globally unique
    even though :func:`generate_population` shares user ids across
    workloads.  Priorities follow :func:`fleet_priority_class` (a fixed
    interactive / batch / best-effort mix by workload index).
    """
    sessions: List[FleetSession] = []
    for w_index, workload in enumerate(generate_population(n_workloads, seed=seed)):
        priority = _PRIORITY_BY_NAME[fleet_priority_class(w_index)]
        plans = workload.plans
        if max_queries_per_workload is not None:
            plans = plans[:max_queries_per_workload]
        for q_index, plan in enumerate(plans):
            sessions.append(FleetSession(
                workload=workload,
                workload_index=w_index,
                query_index=q_index,
                plan=plan,
                signature=f"{workload.workload_id}/q{q_index}",
                simulator=SparkSimulator(
                    noise=workload.noise,
                    seed=_session_seed(seed, w_index, q_index, 101),
                ),
                priority=priority,
            ))
    return sessions


def default_optimizer_factory(
    fleet: Sequence[FleetSession], base_seed: int = 0
) -> Callable[[str, str], CentroidLearning]:
    """The fleet's per-session optimizer builder.

    Looks the session up by key and derives its seed arithmetically, so any
    shard — or the single-backend reference — constructs the identical
    optimizer for a given key (the host's determinism contract).
    """
    space = query_level_space()
    by_key = {(s.workload_id, s.signature): s for s in fleet}

    def factory(workload_id: str, query_signature: str) -> CentroidLearning:
        session = by_key[(workload_id, query_signature)]
        return CentroidLearning(space, seed=session.optimizer_seed(base_seed))

    return factory


def fleet_user_map(fleet: Sequence[FleetSession]) -> Callable[[str], str]:
    """``workload_id -> user_id`` resolver for the service's backends."""
    users = {s.workload_id: s.user_id for s in fleet}
    return lambda workload_id: users[workload_id]


@dataclass
class FleetReport:
    """Headline numbers from one fleet run."""

    n_sessions: int
    n_iterations: int
    n_requests: int
    duration_seconds: float
    drain_seconds: float
    service_throughput_rps: float
    sessions_per_sec: float
    latency_p50_ms: float
    latency_p99_ms: float
    shed_events: int
    shed_rate: float
    lost_requests: int
    utilization_skew: float
    shard_metrics: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_sessions": self.n_sessions,
            "n_iterations": self.n_iterations,
            "n_requests": self.n_requests,
            "duration_seconds": self.duration_seconds,
            "drain_seconds": self.drain_seconds,
            "service_throughput_rps": self.service_throughput_rps,
            "sessions_per_sec": self.sessions_per_sec,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "shed_events": self.shed_events,
            "shed_rate": self.shed_rate,
            "lost_requests": self.lost_requests,
            "utilization_skew": self.utilization_skew,
        }


def run_fleet(
    service: ShardedAutotuneService,
    fleet: Sequence[FleetSession],
    n_iterations: int,
    *,
    parallel_drain: bool = False,
    events: bool = False,
    max_shed_retries: int = 8,
    clock: Callable[[], float] = time.perf_counter,
) -> FleetReport:
    """Drive ``fleet`` for ``n_iterations`` phased rounds and report.

    Args:
        service: the deployment under test (any shard count / coalesce
            setting — the request stream is deployment-independent).
        parallel_drain: drain shards on threads (benchmark mode; only takes
            effect while telemetry is disabled — see ``drain_all``).
        events: also forward a ``QueryEndEvent`` per observation (exercises
            the per-shard backend pipeline; leave off for pure service
            micro-benchmarks).
        max_shed_retries: per-request resubmission budget.  A shed request
            backs off exactly like a client ``RetryPolicy`` honoring
            ``retry_after`` — the driver drains the service (time passes,
            queues empty) and resubmits; past the budget it counts as lost.
    """
    space = query_level_space()
    started = clock()
    drain_seconds = 0.0
    latencies: List[float] = []
    shed_events = 0
    lost = 0
    completed = 0

    def timed_drain() -> None:
        nonlocal drain_seconds
        t0 = clock()
        service.drain_all(parallel=parallel_drain)
        drain_seconds += clock() - t0

    def submit_all(requests: List[TuneRequest]) -> None:
        nonlocal shed_events, lost
        pending = list(requests)
        for request in pending:
            request.submitted_at = clock()
        attempts = {id(r): 0 for r in pending}
        while pending:
            still_shed: List[TuneRequest] = []
            for request in pending:
                if service.submit(request).accepted:
                    continue
                shed_events += 1
                attempts[id(request)] += 1
                if attempts[id(request)] > max_shed_retries:
                    lost += 1
                else:
                    still_shed.append(request)
            if still_shed:
                # Back off: draining is the service-time analogue of
                # sleeping retry_after — the overloaded queues empty out.
                timed_drain()
            pending = still_shed

    for t in range(n_iterations):
        suggests = [
            TuneRequest.suggest(s.workload_id, s.signature, priority=s.priority)
            for s in fleet
        ]
        submit_all(suggests)
        timed_drain()

        observes: List[TuneRequest] = []
        for session, request in zip(fleet, suggests):
            if not request.done:
                continue  # lost to shedding under overload
            latencies.append(request.completed_at - request.submitted_at)
            completed += 1
            vector = np.asarray(request.result, dtype=float)
            scale = session.workload.data_scale(t)
            if events:
                event = session.simulator.run_to_event(
                    session.plan, space.to_dict(vector),
                    app_id=session.app_id, artifact_id=session.workload_id,
                    user_id=session.user_id, iteration=t, data_scale=scale,
                )
                observation = Observation(
                    config=vector, performance=event.duration_seconds,
                    data_size=event.data_size, iteration=t,
                )
            else:
                result = session.simulator.run(
                    session.plan, space.to_dict(vector), data_scale=scale
                )
                event = None
                observation = Observation(
                    config=vector, performance=result.elapsed_seconds,
                    data_size=result.data_size, iteration=t,
                )
            observes.append(TuneRequest.observe(
                session.workload_id, session.signature, observation,
                event=event, priority=session.priority,
            ))
        submit_all(observes)
        timed_drain()
        for request in observes:
            if request.done:
                latencies.append(request.completed_at - request.submitted_at)
                completed += 1
            else:
                lost += 1

    duration = clock() - started
    latency_array = np.asarray(latencies) if latencies else np.zeros(1)
    submitted_total = completed + lost
    metrics = service.metrics()["service"]
    return FleetReport(
        n_sessions=len(fleet),
        n_iterations=n_iterations,
        n_requests=completed,
        duration_seconds=duration,
        drain_seconds=drain_seconds,
        service_throughput_rps=completed / drain_seconds if drain_seconds > 0 else 0.0,
        sessions_per_sec=(
            len(fleet) * n_iterations / duration if duration > 0 else 0.0
        ),
        latency_p50_ms=float(np.percentile(latency_array, 50) * 1e3),
        latency_p99_ms=float(np.percentile(latency_array, 99) * 1e3),
        shed_events=shed_events,
        shed_rate=shed_events / max(1, submitted_total + shed_events),
        lost_requests=lost,
        utilization_skew=float(metrics["utilization_skew"]),
        shard_metrics=metrics["shards"],
    )
