"""Autotune Backend storage (Sec. 5).

"Each Spark application is assigned a dedicated folder for event files,
organized by its job ID, and another folder for its artifact_id ... A
Storage Manager oversees the cleanup of outdated event files to maintain
GDPR compliance."  File layout under ``root``:

    events/by-app/<app_id>/events.jsonl
    events/by-artifact/<artifact_id>/<app_id>.jsonl
    models/<user_id>/<query_signature>.json
    manifest.json                       (creation timestamps for TTL cleanup)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..sparksim.events import QueryEndEvent, events_from_jsonl, events_to_jsonl

__all__ = ["StorageManager"]


class StorageManager:
    """File-backed event/model storage with GDPR TTL cleanup.

    Args:
        root: storage root directory (created if missing).
        clock: injectable time source.
    """

    def __init__(self, root: Union[str, Path], clock=time.time):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._manifest_path = self.root / "manifest.json"
        self._manifest: Dict[str, float] = {}
        self.manifest_recovered = False
        if self._manifest_path.exists():
            try:
                self._manifest = json.loads(self._manifest_path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError):
                # A corrupt manifest must not take the backend down: rebuild
                # it from the files on disk, stamping them "now" (they will
                # age out one TTL later than they should — safe direction
                # for availability, and GDPR cleanup still happens).
                self.manifest_recovered = True
                self._manifest = {
                    str(p.relative_to(self.root)): self._clock()
                    for p in self.root.rglob("*")
                    if p.is_file() and p != self._manifest_path
                    and p.suffix != ".tmp"
                }
                self._write_manifest()

    # -- paths -------------------------------------------------------------------

    def _app_dir(self, app_id: str) -> Path:
        return self.root / "events" / "by-app" / app_id

    def _artifact_dir(self, artifact_id: str) -> Path:
        return self.root / "events" / "by-artifact" / artifact_id

    def model_path(self, user_id: str, query_signature: str) -> Path:
        return self.root / "models" / user_id / f"{query_signature}.json"

    def _atomic_write(self, path: Path, text: str) -> None:
        """Write-then-rename so a crash mid-write never leaves a torn file
        (a torn manifest or model payload is a real corruption source the
        chaos suite injects)."""
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _write_manifest(self) -> None:
        self._atomic_write(self._manifest_path, json.dumps(self._manifest))

    def _record(self, path: Path) -> None:
        self._manifest[str(path.relative_to(self.root))] = self._clock()
        self._write_manifest()

    # -- events ------------------------------------------------------------------

    def append_events(
        self, app_id: str, artifact_id: str, events: Sequence[QueryEndEvent]
    ) -> None:
        """Append events under both the app and the artifact folders."""
        if not events:
            return
        payload = events_to_jsonl(events) + "\n"
        app_file = self._app_dir(app_id) / "events.jsonl"
        app_file.parent.mkdir(parents=True, exist_ok=True)
        with open(app_file, "a") as f:
            f.write(payload)
        self._record(app_file)
        artifact_file = self._artifact_dir(artifact_id) / f"{app_id}.jsonl"
        artifact_file.parent.mkdir(parents=True, exist_ok=True)
        with open(artifact_file, "a") as f:
            f.write(payload)
        self._record(artifact_file)

    def read_app_events(self, app_id: str) -> List[QueryEndEvent]:
        path = self._app_dir(app_id) / "events.jsonl"
        if not path.exists():
            return []
        return [e for e in events_from_jsonl(path.read_text())
                if isinstance(e, QueryEndEvent)]

    def read_artifact_events(self, artifact_id: str) -> List[QueryEndEvent]:
        directory = self._artifact_dir(artifact_id)
        if not directory.exists():
            return []
        out: List[QueryEndEvent] = []
        for path in sorted(directory.glob("*.jsonl")):
            out.extend(
                e for e in events_from_jsonl(path.read_text())
                if isinstance(e, QueryEndEvent)
            )
        return out

    # -- models ------------------------------------------------------------------

    def write_model(self, user_id: str, query_signature: str, payload: str) -> Path:
        path = self.model_path(user_id, query_signature)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        self._record(path)
        return path

    def read_model(self, user_id: str, query_signature: str) -> Optional[str]:
        path = self.model_path(user_id, query_signature)
        return path.read_text() if path.exists() else None

    # -- retrieval corpus ------------------------------------------------------------

    def corpus_path(self) -> Path:
        """The retrieval corpus lives outside ``events/`` on purpose: like
        models, it holds no raw trace rows, so GDPR cleanup retains it."""
        return self.root / "retrieval" / "corpus.json"

    def write_retrieval_corpus(self, payload: str) -> Path:
        path = self.corpus_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        self._record(path)
        return path

    def read_retrieval_corpus(self) -> Optional[str]:
        path = self.corpus_path()
        return path.read_text() if path.exists() else None

    # -- GDPR cleanup ---------------------------------------------------------------

    def cleanup(self, ttl_seconds: float) -> List[str]:
        """Delete event files older than ``ttl_seconds``; returns what was
        removed.  Models are retained (they contain no raw trace data)."""
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        now = self._clock()
        removed: List[str] = []
        for rel, created in list(self._manifest.items()):
            if not rel.startswith("events/"):
                continue
            if now - created > ttl_seconds:
                path = self.root / rel
                if path.exists():
                    path.unlink()
                removed.append(rel)
                del self._manifest[rel]
        if removed:
            self._write_manifest()
        return removed
