"""The sharded, queue-driven multi-tenant Autotune service.

Request path::

    submit(request)                       drain_shard / drain_all
    ────────────────►  ConsistentHashRing ──► ShardQueue ──► batched drain
       workload id          (routing)       (admission +      (coalesced
                                            load shedding)    model calls)

* **Routing** — a :class:`~repro.service.ring.ConsistentHashRing` maps the
  request's workload id to one shard, so a tenant's sessions always land
  where their optimizer state lives.
* **Admission** — each shard fronts a bounded
  :class:`~repro.service.admission.ShardQueue`; overloaded shards shed
  lower :class:`~repro.service.admission.Priority` classes first and answer
  with a ``retry_after`` hint (:class:`~repro.service.admission.ShedError`
  on the blocking :meth:`ShardedAutotuneService.call` path).
* **Batched drain** — :meth:`drain_shard` splits the FIFO backlog into runs
  of pairwise-distinct sessions and hands each run to
  :func:`repro.service.batch_exec.execute_run`, which coalesces the
  co-tenant window-model fits and predictions into batched kernel calls
  while reproducing the scalar request path bit-for-bit.
* **Rebalance** — :meth:`add_shard` / :meth:`remove_shard` /
  :meth:`resize` recompute the ring and hand live sessions to their new
  owners (bounded movement, optimizer state intact);
  :meth:`fail_shard` is the outage path: the dead shard's sessions fail
  over the same way and its queued requests are re-routed (re-admitted,
  possibly shed).

All ``service.*`` telemetry is namespaced so the ``diff_sharded_single``
oracle can compare sharded-vs-single counter trails while ignoring the
deployment-shaped counters.  :meth:`plant_misroute` deliberately breaks the
ring contract for one workload — the oracle's sensitivity test uses it to
prove the bit-identity check actually bites.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .. import telemetry
from ..core.observation import Observation
from ..sparksim.events import QueryEndEvent
from .admission import AdmissionController, Priority, ShardQueue, ShedError, ShedVerdict
from .backend import AutotuneBackend
from .batch_exec import execute_run
from .ring import ConsistentHashRing
from .sessions import OptimizerFactory, SessionKey, TenantSession, TenantSessionHost

__all__ = ["ShardedAutotuneService", "TuneRequest"]


@dataclass
class TuneRequest:
    """One tuning request enqueued at a shard.

    ``result`` is filled at drain time: the suggested internal vector for
    ``op="suggest"``, ``None`` for ``op="observe"``.  ``submitted_at`` /
    ``completed_at`` are service-clock stamps (queue wait included), the
    fleet benchmark's latency source.
    """

    op: str
    workload_id: str
    query_signature: str
    priority: Priority = Priority.BATCH
    data_size: Optional[float] = None
    observation: Optional[Observation] = None
    event: Optional[QueryEndEvent] = None
    result: object = None
    done: bool = False
    shard_id: Optional[str] = None
    submitted_at: float = 0.0
    completed_at: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("suggest", "observe"):
            raise ValueError(f"op must be 'suggest' or 'observe', got {self.op!r}")
        if self.op == "observe" and self.observation is None:
            raise ValueError("observe requests need an observation")

    @classmethod
    def suggest(cls, workload_id: str, query_signature: str,
                data_size: Optional[float] = None,
                priority: Priority = Priority.BATCH) -> "TuneRequest":
        return cls("suggest", workload_id, query_signature,
                   priority=priority, data_size=data_size)

    @classmethod
    def observe(cls, workload_id: str, query_signature: str,
                observation: Observation, event: Optional[QueryEndEvent] = None,
                priority: Priority = Priority.BATCH) -> "TuneRequest":
        return cls("observe", workload_id, query_signature, priority=priority,
                   observation=observation, event=event)


@dataclass
class _Shard:
    shard_id: str
    host: TenantSessionHost
    queue: ShardQueue
    processed: int = 0
    runs: int = 0
    drain_seconds: float = 0.0
    down: bool = False


class ShardedAutotuneService:
    """N session-hosting shards behind consistent hashing and bounded queues.

    Args:
        n_shards: initial shard count.
        optimizer_factory: per-session optimizer builder (must derive all
            state, seeds included, from the session key — see
            :class:`~repro.service.sessions.TenantSessionHost`).
        queue_capacity: per-shard ingress queue bound.
        coalesce: batch co-tenant requests per drain run (the tentpole
            fast path); ``False`` processes every request scalar — the
            single-backend reference behavior behind the same queues.
        backend_factory: optional ``shard_id -> AutotuneBackend``; when
            given, each shard forwards observed events through its own
            backend pipeline.
        admission_factory: optional ``capacity -> AdmissionController`` to
            customize shed thresholds.
        ring_replicas: virtual nodes per shard.
        clock: injectable monotonic clock for latency stamps.
    """

    def __init__(
        self,
        n_shards: int,
        optimizer_factory: OptimizerFactory,
        *,
        queue_capacity: int = 1024,
        coalesce: bool = True,
        backend_factory: Optional[Callable[[str], AutotuneBackend]] = None,
        user_id_fn: Optional[Callable[[str], str]] = None,
        admission_factory: Optional[Callable[[int], AdmissionController]] = None,
        ring_replicas: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.optimizer_factory = optimizer_factory
        self.queue_capacity = queue_capacity
        self.coalesce = coalesce
        self.backend_factory = backend_factory
        self.user_id_fn = user_id_fn
        self.admission_factory = admission_factory or AdmissionController
        self.clock = clock
        self._next_index = 0
        self._shards: Dict[str, _Shard] = {}
        self.ring = ConsistentHashRing(replicas=ring_replicas)
        for _ in range(n_shards):
            self._spawn_shard()
        self._misroutes: Dict[str, Tuple[str, int]] = {}
        self._workload_submits: Dict[str, int] = {}
        self.submitted = 0
        self.shed = 0
        self.outages = 0

    # -- shard lifecycle ---------------------------------------------------------

    def _spawn_shard(self) -> _Shard:
        shard_id = f"shard-{self._next_index}"
        self._next_index += 1
        backend = self.backend_factory(shard_id) if self.backend_factory else None
        shard = _Shard(
            shard_id=shard_id,
            host=TenantSessionHost(
                shard_id, self.optimizer_factory, backend=backend,
                user_id_fn=self.user_id_fn,
            ),
            queue=ShardQueue(self.queue_capacity, self.admission_factory(self.queue_capacity)),
        )
        self._shards[shard_id] = shard
        self.ring.add_shard(shard_id)
        return shard

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard(self, shard_id: str) -> _Shard:
        return self._shards[shard_id]

    # -- routing -----------------------------------------------------------------

    def route(self, workload_id: str) -> str:
        """The shard that should serve ``workload_id`` (misroutes applied)."""
        planted = self._misroutes.get(workload_id)
        if planted is not None:
            to_shard, after = planted
            if self._workload_submits.get(workload_id, 0) >= after:
                telemetry.counter("service.ring.misroutes").inc()
                return to_shard
        return self.ring.owner(workload_id)

    def plant_misroute(self, workload_id: str, to_shard: str, after: int = 0) -> None:
        """Deliberately violate the ring contract for one workload.

        From the ``after``-th submit on, ``workload_id`` routes to
        ``to_shard`` *without* a state handoff — the receiving shard spins
        up a fresh session, which is exactly the divergence the
        ``diff_sharded_single`` sensitivity test expects to catch.
        """
        if to_shard not in self._shards:
            raise KeyError(f"unknown shard {to_shard!r}")
        self._misroutes[workload_id] = (to_shard, after)

    # -- request intake ----------------------------------------------------------

    def submit(self, request: TuneRequest) -> ShedVerdict:
        """Route + admit ``request``; never blocks, sheds under overload."""
        request.submitted_at = request.submitted_at or self.clock()
        shard = self._shards[self.route(request.workload_id)]
        self._workload_submits[request.workload_id] = (
            self._workload_submits.get(request.workload_id, 0) + 1
        )
        verdict = shard.queue.offer(request, request.priority)
        self.submitted += 1
        if verdict.accepted:
            request.shard_id = shard.shard_id
            telemetry.counter(
                "service.requests", op=request.op, result="admitted"
            ).inc()
        else:
            self.shed += 1
            telemetry.counter("service.requests", op=request.op, result="shed").inc()
        return verdict

    def call(self, request: TuneRequest):
        """Blocking single-request path: submit, drain the shard, reply.

        Raises :class:`ShedError` (a retryable
        :class:`~repro.service.resilience.TransientServiceError`) when
        admission sheds the request — callers run this under their
        :class:`~repro.service.resilience.RetryPolicy`, which honors the
        verdict's ``retry_after``.
        """
        verdict = self.submit(request)
        if not verdict.accepted:
            raise ShedError(verdict, shard_id=self.route(request.workload_id))
        self.drain_shard(request.shard_id)
        return request.result

    # -- drain (the batched execution cycle) -------------------------------------

    def drain_shard(self, shard_id: str, max_batch: Optional[int] = None) -> int:
        """Process up to ``max_batch`` queued requests on one shard."""
        shard = self._shards[shard_id]
        batch = shard.queue.drain(max_batch)
        if not batch:
            return 0
        started = self.clock()
        for run in self._distinct_session_runs(batch):
            pairs = [
                (shard.host.session(r.workload_id, r.query_signature), r)
                for r in run
            ]
            if self.coalesce:
                execute_run(shard.host, pairs)
            else:
                for session, request in pairs:
                    self._scalar_request(shard.host, session, request)
            now = self.clock()
            for request in run:
                request.completed_at = now
                request.done = True
            shard.runs += 1
        shard.processed += len(batch)
        shard.drain_seconds += self.clock() - started
        telemetry.counter("service.shard.processed", shard=shard_id).inc(len(batch))
        return len(batch)

    @staticmethod
    def _distinct_session_runs(batch: List[TuneRequest]) -> Iterator[List[TuneRequest]]:
        """Split a FIFO backlog into maximal runs of pairwise-distinct sessions.

        Within a run no session appears twice, so batched execution may
        reorder freely; across runs FIFO order is preserved, so a tenant's
        own requests still apply in submission order.
        """
        run: List[TuneRequest] = []
        seen: set = set()
        for request in batch:
            key: SessionKey = (request.workload_id, request.query_signature)
            if key in seen:
                yield run
                run, seen = [], set()
            run.append(request)
            seen.add(key)
        if run:
            yield run

    @staticmethod
    def _scalar_request(host: TenantSessionHost, session: TenantSession,
                        request: TuneRequest) -> None:
        session.requests += 1
        if request.op == "suggest":
            request.result = session.optimizer.suggest(data_size=request.data_size)
        else:
            session.optimizer.observe(request.observation)
            if request.event is not None:
                host.forward_event(session, request.event)
            request.result = None

    def drain_all(self, parallel: bool = False) -> int:
        """Drain every shard once; ``parallel`` drains shards on threads.

        Thread-parallel drains are only safe while global telemetry is
        disabled (counter sinks are not synchronized); the benchmark uses
        it, oracle runs (which capture telemetry) stay serial.
        """
        shard_ids = list(self._shards)
        if parallel and len(shard_ids) > 1 and not telemetry.enabled():
            with ThreadPoolExecutor(max_workers=len(shard_ids)) as pool:
                return sum(pool.map(self.drain_shard, shard_ids))
        return sum(self.drain_shard(shard_id) for shard_id in shard_ids)

    # -- rebalance / failover ----------------------------------------------------

    def _handoff_to_owners(self, sessions: List[TenantSession]) -> int:
        for session in sessions:
            owner = self._shards[self.ring.owner(session.workload_id)]
            owner.host.adopt(session)
        if sessions:
            telemetry.counter("service.shard.handoffs").inc(len(sessions))
        return len(sessions)

    def add_shard(self) -> str:
        """Scale out by one shard; steals only the keys it now owns."""
        self.drain_all()
        shard = self._spawn_shard()
        moved = 0
        for other in self._shards.values():
            if other.shard_id == shard.shard_id:
                continue
            workloads = {key[0] for key in other.host.sessions}
            stolen = [
                wid for wid in workloads
                if self.ring.owner(wid) == shard.shard_id
            ]
            moved += self._handoff_to_owners(other.host.export_sessions(stolen))
        telemetry.counter("service.ring.rebalances", kind="add").inc()
        return shard.shard_id

    def remove_shard(self, shard_id: str) -> int:
        """Scale in: hand the shard's sessions to their new owners."""
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self.drain_all()
        shard = self._shards[shard_id]
        self.ring.remove_shard(shard_id)
        del self._shards[shard_id]
        moved = self._handoff_to_owners(
            shard.host.export_sessions({key[0] for key in shard.host.sessions})
        )
        telemetry.counter("service.ring.rebalances", kind="remove").inc()
        return moved

    def resize(self, n_shards: int) -> None:
        """Grow or shrink to ``n_shards`` with state handoff at each step."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        while len(self._shards) < n_shards:
            self.add_shard()
        while len(self._shards) > n_shards:
            self.remove_shard(sorted(self._shards)[-1])

    def fail_shard(self, shard_id: str) -> List[TuneRequest]:
        """Outage: fail the shard over without touching other tenants.

        The dead shard leaves the ring, its live sessions move (optimizer
        state intact — surviving *and* failed-over tenants keep bit-identical
        trails), and its queued requests are re-routed through admission;
        requests the survivors shed are returned to the caller.
        """
        if len(self._shards) == 1:
            raise ValueError("cannot fail the last shard")
        shard = self._shards[shard_id]
        shard.down = True
        self.ring.remove_shard(shard_id)
        del self._shards[shard_id]
        stranded = shard.queue.drain()
        self._handoff_to_owners(
            shard.host.export_sessions({key[0] for key in shard.host.sessions})
        )
        self.outages += 1
        telemetry.counter("service.shard.outages").inc()
        lost: List[TuneRequest] = []
        for request in stranded:
            request.shard_id = None
            if not self.submit(request).accepted:
                lost.append(request)
        if stranded:
            telemetry.counter("service.shard.failover_requeued").inc(
                len(stranded) - len(lost)
            )
        return lost

    # -- introspection -----------------------------------------------------------

    def sessions(self) -> Dict[SessionKey, TenantSession]:
        """Every hosted session across shards (for trail collection)."""
        merged: Dict[SessionKey, TenantSession] = {}
        for shard in self._shards.values():
            merged.update(shard.host.sessions)
        return merged

    def metrics(self) -> Dict[str, object]:
        """Service-level metrics: per-shard stats + fleet aggregates."""
        per_shard = {}
        processed = []
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            per_shard[shard_id] = {
                "sessions": len(shard.host.sessions),
                "queue_depth": shard.queue.depth,
                "queue_high_watermark": shard.queue.high_watermark,
                "enqueued": shard.queue.enqueued,
                "shed": shard.queue.shed,
                "shed_by_reason": dict(shard.queue.shed_by_reason),
                "processed": shard.processed,
                "runs": shard.runs,
                "drain_seconds": shard.drain_seconds,
            }
            processed.append(shard.processed)
        total = sum(processed)
        mean = total / len(processed) if processed else 0.0
        skew = (max(processed) / mean) if mean > 0 else 1.0
        return {
            "service": {
                "n_shards": len(self._shards),
                "submitted": self.submitted,
                "shed": self.shed,
                "shed_rate": self.shed / self.submitted if self.submitted else 0.0,
                "outages": self.outages,
                "utilization_skew": skew,
                "coalesce": self.coalesce,
                "shards": per_shard,
            }
        }
