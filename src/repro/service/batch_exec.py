"""Batched drain execution: coalesce co-tenant requests into batched fits.

A shard drain hands this module a *run* of requests touching pairwise
distinct sessions.  For every session whose optimizer matches the plain
production shape (:func:`batch_profile_for`), the per-request window-model
work is coalesced across the run:

* one :func:`repro.ml.batched.fit_ridge_pipeline` call fits every window
  model the run needs (grouped by window length — ``slice k`` of a batched
  fit is bitwise-identical to the scalar ``Pipeline`` fit, the PR-6
  contract);
* one :class:`~repro.ml.batched.BatchedRidgePipeline.predict` call scores
  all candidate sets (suggest), ranks all windows (FIND_BEST) and probes
  all sign sets (FIND_GRADIENT) per shape group.

Everything *around* the model math replays the scalar code path exactly —
same RNG draws (`generate_candidates` consumes each session's own
generator), same telemetry counters, same tie-breaking ``argmin``/``argmax``
— so the per-session observation/counter trail is bit-identical to
request-by-request :class:`~repro.service.sessions.TenantSessionHost`
calls.  The ``diff_sharded_single`` oracle (:mod:`repro.verify.diff`) pins
this end to end; sessions that don't match the profile (guardrails,
detectors, safe gates, custom selectors/models) silently fall back to the
scalar path.

Fitted batch parameters are memoized per window at
``window.__dict__["_batched_window_params"]`` keyed by the window's append
version — the same invalidation rule as
:func:`repro.core.find_best.fit_window_model` — so each session pays one
fit per observation, exactly like the scalar path's memo cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..core.candidates import generate_candidates
from ..core.centroid import CentroidLearning
from ..core.find_best import FindBestMode
from ..core.gradient import _MAX_ENUM_DIM, _candidate_deltas
from ..core.optimizer_base import Optimizer
from ..core.selectors import SurrogateSelector
from ..ml.acquisition import MeanMinimizer
from ..ml.batched import BatchedRidgePipeline, fit_ridge_pipeline
from ..ml.linear import PolynomialFeatures, RidgeRegression
from ..ml.scaler import Pipeline, StandardScaler
from .sessions import TenantSession, TenantSessionHost, UNPROBED

__all__ = ["BatchProfile", "batch_profile_for", "execute_run"]

_PARAMS_ATTR = "_batched_window_params"


@dataclass
class BatchProfile:
    """Everything the batched path needs to know about one session's shape."""

    alpha: float
    degree: int
    interaction_only: bool
    dim: int
    bounds_low: np.ndarray
    bounds_high: np.ndarray
    span: np.ndarray
    deltas: np.ndarray  # the FIND_GRADIENT sign set D for this dim


def batch_profile_for(optimizer: Optimizer) -> Optional[BatchProfile]:
    """Probe whether ``optimizer`` is exactly the plain production shape.

    Batching replays `CentroidLearning`'s default flow; anything that adds
    behavior to suggest/observe — guardrails, switch detectors, safe gates,
    baselines, non-default selectors/acquisitions/modes — routes the session
    to the scalar fallback instead.  Returns ``None`` when ineligible.
    """
    if type(optimizer) is not CentroidLearning:
        return None
    if (
        optimizer.guardrail is not None
        or optimizer.switch_detector is not None
        or optimizer.safe_gate is not None
    ):
        return None
    if optimizer.find_best_mode is not FindBestMode.MODEL:
        return None
    if optimizer.gradient_mode != "ml" or optimizer.probe != "span":
        return None
    if optimizer.space.dim > _MAX_ENUM_DIM:
        return None
    selector = optimizer.selector
    if type(selector) is not SurrogateSelector:
        return None
    if selector.baseline is not None:
        return None
    if type(selector.acquisition) is not MeanMinimizer:
        return None
    if selector.model_factory is not optimizer.model_factory:
        return None
    try:
        probe = optimizer.model_factory()
    except Exception:  # noqa: BLE001 — an exploding factory is "not batchable"
        return None
    if type(probe) is not Pipeline or len(probe.steps) != 3:
        return None
    scaler, poly, ridge = (step for _, step in probe.steps)
    if (
        type(scaler) is not StandardScaler
        or type(poly) is not PolynomialFeatures
        or type(ridge) is not RidgeRegression
    ):
        return None
    bounds = optimizer.space.internal_bounds
    dim = optimizer.space.dim
    return BatchProfile(
        alpha=float(ridge.alpha),
        degree=int(poly.degree),
        interaction_only=bool(poly.interaction_only),
        dim=dim,
        bounds_low=bounds[:, 0].copy(),
        bounds_high=bounds[:, 1].copy(),
        span=(bounds[:, 1] - bounds[:, 0]).copy(),
        deltas=_candidate_deltas(dim),
    )


# One fitted window model in SoA-slice form: (mean, scale, coef, intercept).
_Params = Tuple[np.ndarray, np.ndarray, np.ndarray, float]


def _ensure_window_models(
    entries: Sequence[Tuple[TenantSession, BatchProfile]],
) -> List[_Params]:
    """Current-version window-model parameters for every entry.

    Cached parameters are reused (same version ⇒ same model, the
    `fit_window_model` rule); the rest are fitted in one
    :func:`fit_ridge_pipeline` call per ``(n, features, degree)`` group.
    """
    params: List[Optional[_Params]] = [None] * len(entries)
    groups: Dict[Tuple[int, int, int, bool], List[int]] = {}
    for i, (session, profile) in enumerate(entries):
        window = session.optimizer.observations
        cached = window.__dict__.get(_PARAMS_ATTR)
        if cached is not None and cached[0] == window.version:
            params[i] = cached[1]
            continue
        X = window.design_matrix()
        key = (X.shape[0], X.shape[1], profile.degree, profile.interaction_only)
        groups.setdefault(key, []).append(i)
    for (n, f, degree, interaction_only), members in groups.items():
        stacked_X = np.empty((len(members), n, f))
        stacked_y = np.empty((len(members), n))
        alphas = np.empty(len(members))
        for j, i in enumerate(members):
            session, profile = entries[i]
            window = session.optimizer.observations
            stacked_X[j] = window.design_matrix()
            stacked_y[j] = window.performances()
            alphas[j] = profile.alpha
        fitted = fit_ridge_pipeline(
            stacked_X, stacked_y, alphas, degree=degree,
            interaction_only=interaction_only,
        )
        for j, i in enumerate(members):
            window = entries[i][0].optimizer.observations
            slice_params: _Params = (
                fitted.mean[j], fitted.scale[j], fitted.coef[j],
                float(fitted.intercept[j]),
            )
            params[i] = slice_params
            window.__dict__[_PARAMS_ATTR] = (window.version, slice_params)
    return params  # type: ignore[return-value]


def _predict_groups(
    params: Sequence[_Params],
    queries: Sequence[np.ndarray],
    degree: int,
    interaction_only: bool,
) -> List[np.ndarray]:
    """Per-entry predictions, one batched predict per query shape."""
    out: List[Optional[np.ndarray]] = [None] * len(queries)
    by_shape: Dict[Tuple[int, int], List[int]] = {}
    for i, rows in enumerate(queries):
        by_shape.setdefault(rows.shape, []).append(i)
    for shape, members in by_shape.items():
        model = BatchedRidgePipeline(
            mean=np.stack([params[i][0] for i in members]),
            scale=np.stack([params[i][1] for i in members]),
            coef=np.stack([params[i][2] for i in members]),
            intercept=np.array([params[i][3] for i in members]),
            degree=degree,
            interaction_only=interaction_only,
        )
        predictions = model.predict(np.stack([queries[i] for i in members]))
        for j, i in enumerate(members):
            out[i] = predictions[j]
    return out  # type: ignore[return-value]


# -- request execution ---------------------------------------------------------------


def execute_run(
    host: TenantSessionHost, pairs: Sequence[Tuple[TenantSession, object]]
) -> None:
    """Process one drained run of requests over pairwise-distinct sessions.

    Each request object carries ``op`` (``"suggest"``/``"observe"``),
    ``data_size`` or ``observation``/``event``, and receives its ``result``.
    Distinctness is the caller's contract — it makes intra-run order
    irrelevant (sessions are independent), which is what lets suggests and
    observes regroup into batched phases without changing any trail.
    """
    suggests: List[Tuple[TenantSession, object]] = []
    observes: List[Tuple[TenantSession, object]] = []
    for session, request in pairs:
        if session.batch_profile is UNPROBED:
            session.batch_profile = batch_profile_for(session.optimizer)
        if session.batch_profile is None:
            _scalar_apply(host, session, request)
        elif request.op == "suggest":
            suggests.append((session, request))
        else:
            observes.append((session, request))
    if observes:
        _run_observes(host, observes)
    if suggests:
        _run_suggests(suggests)


def _scalar_apply(host: TenantSessionHost, session: TenantSession, request) -> None:
    """The per-request scalar path (identical to TenantSessionHost calls)."""
    session.requests += 1
    if request.op == "suggest":
        request.result = session.optimizer.suggest(data_size=request.data_size)
    else:
        session.optimizer.observe(request.observation)
        if request.event is not None:
            host.forward_event(session, request.event)
        request.result = None


# -- suggest: candidates → (batched fit+predict) → acquisition argmax ---------------


def _finish_suggest(request, candidates: np.ndarray, index: int) -> None:
    telemetry.counter("centroid.suggests", mode="tuning").inc()
    active = telemetry.current_span()
    active.set_attr("candidate_index", int(index))
    active.set_attr("n_candidates", int(len(candidates)))
    request.result = candidates[index]


def _run_suggests(items: Sequence[Tuple[TenantSession, object]]) -> None:
    warm: List[Tuple[TenantSession, object, np.ndarray, float]] = []
    for session, request in items:
        session.requests += 1
        opt = session.optimizer
        if not opt.tuning_active:
            telemetry.counter("centroid.suggests", mode="default").inc()
            request.result = opt.space.default_vector()
            continue
        data_size = 1.0 if request.data_size is None else float(request.data_size)
        candidates = generate_candidates(
            opt.space, opt._centroid, opt.beta, opt.n_candidates, opt._rng
        )
        if len(opt.observations.window) < opt.selector.min_observations:
            # Cold start without a baseline: explore the neighborhood.
            index = int(opt._rng.integers(0, len(candidates)))
            _finish_suggest(request, candidates, index)
        else:
            warm.append((session, request, candidates, data_size))
    if not warm:
        return
    profile = warm[0][0].batch_profile
    params = _ensure_window_models([(s, s.batch_profile) for s, _, _, _ in warm])
    queries = [
        np.column_stack([candidates, np.full(len(candidates), data_size)])
        for _, _, candidates, data_size in warm
    ]
    means = _predict_groups(params, queries, profile.degree, profile.interaction_only)
    for i, (session, request, candidates, _) in enumerate(warm):
        opt = session.optimizer
        selector = opt.selector
        mean = means[i]
        std = np.full(len(candidates), 1e-9)
        best = float(np.min(opt.observations.performances()))
        scores = selector.acquisition(mean, std, best)
        chosen = int(np.argmax(scores))
        if telemetry.enabled():
            tspan = telemetry.current_span()
            tspan.set_attr("candidate_scores", np.asarray(scores, dtype=float).tolist())
            tspan.set_attr("candidate_chosen_score", float(scores[chosen]))
            tspan.set_attr("candidate_mean_prediction", float(np.mean(mean)))
        _finish_suggest(request, candidates, chosen)


# -- observe: append → (batched fit) → FIND_BEST → FIND_GRADIENT → update -----------


def _run_observes(
    host: TenantSessionHost, items: Sequence[Tuple[TenantSession, object]]
) -> None:
    pending: List[Tuple[TenantSession, object]] = []
    for session, request in items:
        session.requests += 1
        opt = session.optimizer
        Optimizer.observe(opt, request.observation)  # validate + append
        if len(opt.observations.window) < opt.min_update_observations:
            telemetry.counter("centroid.updates_skipped", reason="window").inc()
        else:
            pending.append((session, request))
    if pending:
        _batched_centroid_updates(pending)
    for session, request in items:
        if request.event is not None:
            host.forward_event(session, request.event)
        request.result = None


def _batched_centroid_updates(pending: Sequence[Tuple[TenantSession, object]]) -> None:
    profile0 = None
    for session, _ in pending:
        profile0 = profile0 or session.batch_profile
    params = _ensure_window_models([(s, s.batch_profile) for s, _ in pending])

    # FIND_BEST (MODEL mode): rank each window's configs at the latest size.
    rank_queries: List[np.ndarray] = []
    for session, request in pending:
        window = session.optimizer.observations
        configs = window.configs()
        rank_queries.append(np.column_stack([
            configs, np.full(len(configs), request.observation.data_size)
        ]))
    rank_predictions = _predict_groups(
        params, rank_queries, profile0.degree, profile0.interaction_only
    )

    # FIND_GRADIENT (Eq. 6): probe the sign set around each session's c*.
    best_indices = [int(np.argmin(p)) for p in rank_predictions]
    probe_queries: List[np.ndarray] = []
    alphas: List[float] = []
    c_stars: List[np.ndarray] = []
    for i, (session, request) in enumerate(pending):
        opt = session.optimizer
        profile = session.batch_profile
        window_obs = opt.observations.window
        best_obs = window_obs[0] if len(window_obs) < 2 else window_obs[best_indices[i]]
        c_star = best_obs.config
        alpha = opt.effective_alpha
        points = c_star[None, :] - alpha * profile.deltas * profile.span[None, :]
        points = np.clip(points, profile.bounds_low, profile.bounds_high)
        probe_queries.append(np.column_stack([
            points, np.full(len(points), request.observation.data_size)
        ]))
        alphas.append(alpha)
        c_stars.append(c_star)
    probe_predictions = _predict_groups(
        params, probe_queries, profile0.degree, profile0.interaction_only
    )

    for i, (session, request) in enumerate(pending):
        opt = session.optimizer
        profile = session.batch_profile
        latest = request.observation
        with telemetry.span("centroid.update", iteration=latest.iteration) as tspan:
            c_star = c_stars[i]
            alpha = alphas[i]
            delta = profile.deltas[int(np.argmin(probe_predictions[i]))]
            new_centroid = c_star - alpha * delta * profile.span
            before = opt._centroid
            opt._centroid = opt.space.clip(new_centroid)
            opt._n_updates += 1
            opt._last_gradient = np.asarray(delta, dtype=float)
            opt._last_best = np.asarray(c_star, dtype=float)
            telemetry.counter("centroid.updates").inc()
            if telemetry.enabled():
                move = float(np.linalg.norm(opt._centroid - before))
                telemetry.gauge("centroid.last_move_norm").set(move)
                tspan.set_attr("n_update", opt._n_updates)
                tspan.set_attr("alpha", alpha)
                tspan.set_attr("centroid_before", before.tolist())
                tspan.set_attr("centroid_after", opt._centroid.tolist())
                tspan.set_attr("c_star", opt._last_best.tolist())
                tspan.set_attr("sign_gradient", opt._last_gradient.tolist())
                tspan.set_attr("move_norm", move)
