"""The Autotune Client (Sec. 5): runs on the customer's Spark cluster.

Components mirroring the paper's architecture:

* :class:`AutotuneCredentialManager` — retrieves, caches, and refreshes SAS
  tokens through the backend ("the Autotune Manager").
* :class:`ModelLoader` — fetches and deserializes per-query models.
* the query listener — buffers completed-query events and flushes them to
  backend storage.
* :class:`AutotuneClient` — configuration inference before physical
  planning, honoring the ``spark.autotune.query.enabled`` knob and logging
  "the suggested configurations along with their rationale".

The client keeps one :class:`CentroidLearning` state per query signature; by
design the *candidate selection model* comes from the backend's Model
Updater (the production split: training server-side, inference client-side).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from .. import telemetry
from ..core.centroid import CentroidLearning
from ..core.config_space import ConfigSpace
from ..core.observation import Observation, ObservationWindow
from ..embedding.embedder import WorkloadEmbedder
from ..ml.serialize import loads_model
from ..sparksim.events import AppEndEvent, QueryEndEvent
from ..sparksim.plan import PhysicalPlan
from .admission import ShedError
from .auth import TokenError
from .backend import AutotuneBackend, JobGrant
from .resilience import RetryExhaustedError, RetryPolicy, TransientServiceError

__all__ = ["AutotuneCredentialManager", "ModelLoader", "RemoteModelSelector", "AutotuneClient"]

ENABLE_KNOB = "spark.autotune.query.enabled"

# Every client↔backend call retries on these; TokenError additionally
# triggers a credential refresh between attempts.
_RETRYABLE = (TransientServiceError, TokenError)


class AutotuneCredentialManager:
    """Caches the job grant; re-registers on expiry, with retry/backoff.

    The cached grant is never served stale: :attr:`grant` checks both
    tokens' expiry against ``clock`` (with a safety margin) and re-registers
    proactively, so a client that sat idle past the SAS TTL does not start
    its next flush with a dead token.  Reactive refreshes (a backend
    ``TokenError`` mid-operation) still go through :meth:`refresh`.

    Args:
        backend: the Autotune backend handle.
        app_id / artifact_id / user_id: registration identity.
        retry_policy: backoff policy for ``register_job`` itself (``None``
            = a single attempt).
        clock: injectable time source for the expiry check.
        expiry_margin: seconds before actual expiry at which a cached
            token already counts as expired.
    """

    def __init__(
        self,
        backend: AutotuneBackend,
        app_id: str,
        artifact_id: str,
        user_id: str,
        retry_policy: Optional[RetryPolicy] = None,
        clock=time.time,
        expiry_margin: float = 1.0,
    ):
        self.backend = backend
        self.app_id = app_id
        self.artifact_id = artifact_id
        self.user_id = user_id
        self.retry_policy = retry_policy
        self._clock = clock
        self.expiry_margin = expiry_margin
        self._grant: Optional[JobGrant] = None
        self.refresh_count = 0

    def _register(self) -> JobGrant:
        def attempt() -> JobGrant:
            return self.backend.register_job(self.app_id, self.artifact_id, self.user_id)

        if self.retry_policy is None:
            return attempt()
        return self.retry_policy.call(attempt, retry_on=_RETRYABLE)

    def _expired(self, grant: JobGrant) -> bool:
        now = self._clock()
        return grant.event_write_token.expires_within(now, self.expiry_margin) or \
            grant.model_read_token.expires_within(now, self.expiry_margin)

    @property
    def grant(self) -> JobGrant:
        if self._grant is None:
            self._grant = self._register()
        elif self._expired(self._grant):
            self._grant = self._register()
            self.refresh_count += 1
            telemetry.counter("client.token_refreshes", trigger="proactive").inc()
        return self._grant

    def refresh(self) -> JobGrant:
        self._grant = self._register()
        self.refresh_count += 1
        telemetry.counter("client.token_refreshes", trigger="reactive").inc()
        return self._grant


class ModelLoader:
    """Fetches and caches per-query models from the backend.

    Degradation ladder, in order:

    1. transient fetch failures and token rejections retry under
       ``retry_policy`` (credentials are refreshed between attempts on
       ``TokenError`` — surviving expiry *storms*, not just single misses);
    2. a fetch that still fails, or a corrupt/incompatible payload
       (:attr:`decode_failures`), serves the last good cached model instead
       (:attr:`stale_serves`) — a slightly stale surrogate beats losing the
       model mid-tuning;
    3. with nothing cached, the result is "no model yet" and the optimizer
       falls back to exploration, exactly as on a cold start.

    Query submission is never crashed by the model path.
    """

    def __init__(
        self,
        credentials: AutotuneCredentialManager,
        retry_policy: Optional[RetryPolicy] = None,
        serve_stale: bool = True,
    ):
        self.credentials = credentials
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.serve_stale = serve_stale
        self._cache: Dict[str, object] = {}
        self.fetch_count = 0
        self.fetch_failures = 0
        self.decode_failures = 0
        self.stale_serves = 0

    def _serve_stale(self, query_signature: str):
        if self.serve_stale and query_signature in self._cache:
            self.stale_serves += 1
            telemetry.counter("client.stale_serves").inc()
            return self._cache[query_signature]
        return None

    def load(self, query_signature: str, use_cache: bool = True):
        """The per-query model, or ``None`` if the backend has none yet."""
        if use_cache and query_signature in self._cache:
            return self._cache[query_signature]
        creds = self.credentials

        def attempt():
            return creds.backend.fetch_model(
                creds.grant.model_read_token, creds.user_id, query_signature
            )

        def on_retry(_attempt: int, error: Exception) -> None:
            if isinstance(error, TokenError):
                creds.refresh()

        try:
            payload = self.retry_policy.call(attempt, retry_on=_RETRYABLE, on_retry=on_retry)
        except RetryExhaustedError:
            self.fetch_failures += 1
            telemetry.counter("client.model_fetches", result="failure").inc()
            return self._serve_stale(query_signature)
        self.fetch_count += 1
        telemetry.counter("client.model_fetches", result="success").inc()
        if payload is None:
            return None
        try:
            model = loads_model(payload)
        except Exception:  # noqa: BLE001 — any decode failure = no model
            self.decode_failures += 1
            telemetry.counter("client.decode_failures").inc()
            return self._serve_stale(query_signature)
        self._cache[query_signature] = model
        return model

    def invalidate(self, query_signature: Optional[str] = None) -> None:
        if query_signature is None:
            self._cache.clear()
        else:
            self._cache.pop(query_signature, None)


class RemoteModelSelector:
    """Candidate selector backed by the backend-trained model.

    Falls back to uniform-random exploration while no model exists yet —
    the backend needs a few events before the Model Updater produces one.
    Once a model *has* been seen, an outage is treated differently: the
    selector holds the centroid candidate (index 0, always included by
    ``generate_candidates``) instead of re-randomizing, so a degraded
    period keeps the paper's conservative "stand still" behavior rather
    than regressing to cold-start exploration.
    """

    def __init__(self, loader: ModelLoader, query_signature: str, hold_when_degraded: bool = True):
        self.loader = loader
        self.query_signature = query_signature
        self.hold_when_degraded = hold_when_degraded
        self.used_model_last = False
        self.degraded_holds = 0
        self._had_model = False

    def select(self, candidates, window: ObservationWindow, data_size, embedding, rng) -> int:
        model = self.loader.load(self.query_signature, use_cache=False)
        if model is None:
            self.used_model_last = False
            if self.hold_when_degraded and self._had_model:
                self.degraded_holds += 1
                telemetry.counter("client.degraded_holds").inc()
                return 0
            return int(rng.integers(0, len(candidates)))
        self.used_model_last = True
        self._had_model = True
        rows = np.column_stack([candidates, np.full(len(candidates), data_size)])
        return int(np.argmin(model.predict(rows)))


@dataclass
class SuggestionLog:
    """One rationale entry ('enhancing transparency and facilitating
    debugging')."""

    query_signature: str
    iteration: int
    config: Dict[str, float]
    model_available: bool
    tuning_active: bool
    n_candidates: int


class AutotuneClient:
    """Client-side inference + event emission for one Spark application.

    Args:
        backend: the Autotune backend handle.
        app_id: this application's id.
        artifact_id: recurrent-workload identity (e.g. notebook hash).
        user_id: owning customer.
        query_space: query-level knob space.
        embedder: workload embedder (compile-time features).
        enabled: the ``spark.autotune.query.enabled`` switch.
        guardrail_factory: per-query guardrail constructor (``None`` = no
            guardrail).
        seed: RNG seed for the per-query optimizers.
        retry_policy: backoff policy shared by every backend call
            (registration, model fetches, event flushes).  ``None`` uses
            the :class:`RetryPolicy` defaults; pass
            ``RetryPolicy(max_attempts=1)`` for the pre-resilience
            single-attempt behavior.
        max_pending_events: bound on the locally buffered event queue while
            the backend is unreachable; beyond it the *oldest* events are
            shed (counted in :attr:`events_shed`) so a long outage degrades
            telemetry instead of exhausting client memory.
    """

    def __init__(
        self,
        backend: AutotuneBackend,
        app_id: str,
        artifact_id: str,
        user_id: str,
        query_space: ConfigSpace,
        embedder: Optional[WorkloadEmbedder] = None,
        enabled: bool = True,
        guardrail_factory=None,
        seed: Optional[int] = None,
        initial_state: Optional[Dict[str, dict]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_pending_events: int = 10_000,
    ):
        if max_pending_events < 1:
            raise ValueError("max_pending_events must be >= 1")
        self.backend = backend
        self.query_space = query_space
        self.embedder = embedder or WorkloadEmbedder()
        self.enabled = enabled
        self.guardrail_factory = guardrail_factory
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.credentials = AutotuneCredentialManager(
            backend, app_id, artifact_id, user_id, retry_policy=self.retry_policy
        )
        self.model_loader = ModelLoader(self.credentials, retry_policy=self.retry_policy)
        self.max_pending_events = max_pending_events
        self._optimizers: Dict[str, CentroidLearning] = {}
        self._selectors: Dict[str, RemoteModelSelector] = {}
        self._pending_events: List[QueryEndEvent] = []
        self._next_sequence = 0
        self._seed = seed
        self.suggestion_log: List[SuggestionLog] = []
        self._completed_signatures: List[str] = []
        self._total_duration = 0.0
        self._initial_state = dict(initial_state or {})
        self.flush_failures = 0
        self.app_end_failures = 0
        self.events_shed = 0
        self.requests_shed = 0

    @classmethod
    def from_spark_conf(cls, backend: AutotuneBackend, conf: Dict[str, object],
                        query_space: ConfigSpace, **kwargs) -> "AutotuneClient":
        """Build a client from submission-time Spark configuration entries."""
        enabled = str(conf.get(ENABLE_KNOB, "true")).lower() == "true"
        return cls(
            backend=backend,
            app_id=str(conf["spark.app.id"]),
            artifact_id=str(conf["spark.autotune.artifact.id"]),
            user_id=str(conf["spark.autotune.user.id"]),
            query_space=query_space,
            enabled=enabled,
            **kwargs,
        )

    # -- startup ------------------------------------------------------------------

    def app_level_config(self) -> Optional[Dict[str, float]]:
        """The pre-computed app_cache configuration, if any."""
        return self.credentials.grant.app_config

    # -- per-query inference -----------------------------------------------------------

    def _optimizer_for(self, signature: str) -> CentroidLearning:
        if signature not in self._optimizers:
            selector = RemoteModelSelector(self.model_loader, signature)
            self._selectors[signature] = selector
            guardrail = self.guardrail_factory() if self.guardrail_factory else None
            optimizer = CentroidLearning(
                self.query_space,
                selector=selector,
                guardrail=guardrail,
                seed=self._seed,
            )
            if signature in self._initial_state:
                optimizer.restore_state(self._initial_state[signature])
            self._optimizers[signature] = optimizer
        return self._optimizers[signature]

    def export_state(self) -> Dict[str, dict]:
        """Per-signature tuning state for persistence across app runs.

        Pass the returned mapping as ``initial_state`` to the next run's
        client so centroids, windows and guardrail decisions carry over —
        the recurrent-workload continuity that production stores alongside
        the artifact.
        """
        return {sig: opt.to_state() for sig, opt in self._optimizers.items()}

    def suggest_config(self, plan: PhysicalPlan) -> Dict[str, float]:
        """Configuration for ``plan``, decided before physical planning."""
        if not self.enabled:
            return self.query_space.default_dict()
        signature = plan.signature()
        optimizer = self._optimizer_for(signature)
        embedding = self.embedder.embed(plan)
        estimated_size = max(plan.total_leaf_cardinality, 1.0)
        vector = optimizer.suggest(data_size=estimated_size, embedding=embedding)
        config = self.query_space.to_dict(vector)
        self.suggestion_log.append(
            SuggestionLog(
                query_signature=signature,
                iteration=optimizer.iteration,
                config=config,
                model_available=self._selectors[signature].used_model_last,
                tuning_active=optimizer.tuning_active,
                n_candidates=optimizer.n_candidates,
            )
        )
        return config

    # -- query listener --------------------------------------------------------------

    def on_query_end(self, event: QueryEndEvent) -> None:
        """Record a completed query; updates local state and buffers the event.

        Events are stamped with a monotone per-client delivery ``sequence``
        before buffering — the idempotency key the backend deduplicates on
        when a flush has to be retried.
        """
        if self.enabled:
            optimizer = self._optimizer_for(event.query_signature)
            embedding = np.array(event.embedding) if event.embedding else None
            optimizer.observe(
                Observation(
                    config=self.query_space.to_vector(event.config),
                    data_size=event.data_size,
                    performance=event.duration_seconds,
                    iteration=event.iteration,
                    embedding=embedding,
                )
            )
        if event.sequence < 0:
            event = replace(event, sequence=self._next_sequence)
        self._next_sequence = max(self._next_sequence, event.sequence) + 1
        if len(self._pending_events) >= self.max_pending_events:
            self._pending_events.pop(0)
            self.events_shed += 1
            telemetry.counter("client.events_shed").inc()
        self._pending_events.append(event)
        self._completed_signatures.append(event.query_signature)
        self._total_duration += event.duration_seconds

    def _call_backend(self, attempt) -> bool:
        """Run one backend operation under the retry policy.

        ``TokenError`` refreshes credentials between attempts, so the call
        rides out expiry storms up to the policy's budget.  A
        :class:`~repro.service.admission.ShedError` (backpressure from an
        overloaded shard) is retried like any transient failure, but the
        policy raises its backoff to at least the verdict's ``retry_after``
        hint, and every shed is counted in :attr:`requests_shed`.  Returns
        whether the operation eventually succeeded.
        """
        creds = self.credentials

        def on_retry(_attempt: int, error: Exception) -> None:
            if isinstance(error, TokenError):
                creds.refresh()
            elif isinstance(error, ShedError):
                self.requests_shed += 1
                telemetry.counter("client.requests_shed", phase="retried").inc()

        try:
            self.retry_policy.call(attempt, retry_on=_RETRYABLE, on_retry=on_retry)
        except RetryExhaustedError as exc:
            if isinstance(exc.last_error, ShedError):
                self.requests_shed += 1
                telemetry.counter("client.requests_shed", phase="exhausted").inc()
            return False
        return True

    def flush_events(self) -> int:
        """Upload buffered events via the SAS write token; returns count.

        The buffer is only cleared after the backend accepts the batch: a
        flush that fails even after retries keeps the events pending (up to
        :attr:`max_pending_events`) for the next flush, so transient
        outages delay telemetry instead of losing it.
        """
        if not self._pending_events:
            return 0
        creds = self.credentials
        events = list(self._pending_events)

        def attempt() -> None:
            self.backend.submit_events(
                creds.grant.event_write_token, creds.app_id, creds.artifact_id, events
            )

        if not self._call_backend(attempt):
            self.flush_failures += 1
            telemetry.counter("client.flushes", result="failure").inc()
            return 0
        del self._pending_events[: len(events)]
        telemetry.counter("client.flushes", result="success").inc()
        return len(events)

    def finish_app(self, app_config: Optional[Dict[str, float]] = None) -> AppEndEvent:
        """Flush events and notify the backend the application completed.

        A persistently unreachable backend cannot block application
        shutdown: the failure is recorded in :attr:`app_end_failures` and
        the event is still returned — losing an app-end only delays the
        next app-cache refresh.
        """
        self.flush_events()
        event = AppEndEvent(
            app_id=self.credentials.app_id,
            artifact_id=self.credentials.artifact_id,
            user_id=self.credentials.user_id,
            app_config={k: float(v) for k, v in (app_config or {}).items()},
            query_signatures=list(self._completed_signatures),
            total_duration_seconds=self._total_duration,
        )

        def attempt() -> None:
            self.backend.submit_app_end(self.credentials.grant.event_write_token, event)

        if not self._call_backend(attempt):
            self.app_end_failures += 1
            telemetry.counter("client.app_end_failures").inc()
        return event
