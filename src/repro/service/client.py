"""The Autotune Client (Sec. 5): runs on the customer's Spark cluster.

Components mirroring the paper's architecture:

* :class:`AutotuneCredentialManager` — retrieves, caches, and refreshes SAS
  tokens through the backend ("the Autotune Manager").
* :class:`ModelLoader` — fetches and deserializes per-query models.
* the query listener — buffers completed-query events and flushes them to
  backend storage.
* :class:`AutotuneClient` — configuration inference before physical
  planning, honoring the ``spark.autotune.query.enabled`` knob and logging
  "the suggested configurations along with their rationale".

The client keeps one :class:`CentroidLearning` state per query signature; by
design the *candidate selection model* comes from the backend's Model
Updater (the production split: training server-side, inference client-side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.config_space import ConfigSpace
from ..core.observation import Observation, ObservationWindow
from ..embedding.embedder import WorkloadEmbedder
from ..ml.serialize import loads_model
from ..sparksim.events import AppEndEvent, QueryEndEvent
from ..sparksim.plan import PhysicalPlan
from .auth import TokenError
from .backend import AutotuneBackend, JobGrant

__all__ = ["AutotuneCredentialManager", "ModelLoader", "RemoteModelSelector", "AutotuneClient"]

ENABLE_KNOB = "spark.autotune.query.enabled"


class AutotuneCredentialManager:
    """Caches the job grant and re-registers when a token expires."""

    def __init__(self, backend: AutotuneBackend, app_id: str, artifact_id: str, user_id: str):
        self.backend = backend
        self.app_id = app_id
        self.artifact_id = artifact_id
        self.user_id = user_id
        self._grant: Optional[JobGrant] = None
        self.refresh_count = 0

    @property
    def grant(self) -> JobGrant:
        if self._grant is None:
            self._grant = self.backend.register_job(
                self.app_id, self.artifact_id, self.user_id
            )
        return self._grant

    def refresh(self) -> JobGrant:
        self._grant = self.backend.register_job(self.app_id, self.artifact_id, self.user_id)
        self.refresh_count += 1
        return self._grant


class ModelLoader:
    """Fetches and caches per-query models from the backend.

    A corrupt or incompatible payload must never crash query submission —
    it is treated as "no model yet" (recorded in :attr:`decode_failures`)
    and the optimizer falls back to exploration, exactly as on a cold start.
    """

    def __init__(self, credentials: AutotuneCredentialManager):
        self.credentials = credentials
        self._cache: Dict[str, object] = {}
        self.fetch_count = 0
        self.decode_failures = 0

    def load(self, query_signature: str, use_cache: bool = True):
        """The per-query model, or ``None`` if the backend has none yet."""
        if use_cache and query_signature in self._cache:
            return self._cache[query_signature]
        creds = self.credentials
        try:
            payload = creds.backend.fetch_model(
                creds.grant.model_read_token, creds.user_id, query_signature
            )
        except TokenError:
            creds.refresh()
            payload = creds.backend.fetch_model(
                creds.grant.model_read_token, creds.user_id, query_signature
            )
        self.fetch_count += 1
        if payload is None:
            return None
        try:
            model = loads_model(payload)
        except Exception:  # noqa: BLE001 — any decode failure = no model
            self.decode_failures += 1
            return None
        self._cache[query_signature] = model
        return model

    def invalidate(self, query_signature: Optional[str] = None) -> None:
        if query_signature is None:
            self._cache.clear()
        else:
            self._cache.pop(query_signature, None)


class RemoteModelSelector:
    """Candidate selector backed by the backend-trained model.

    Falls back to uniform-random exploration while no model exists — the
    backend needs a few events before the Model Updater produces one.
    """

    def __init__(self, loader: ModelLoader, query_signature: str):
        self.loader = loader
        self.query_signature = query_signature
        self.used_model_last = False

    def select(self, candidates, window: ObservationWindow, data_size, embedding, rng) -> int:
        model = self.loader.load(self.query_signature, use_cache=False)
        if model is None:
            self.used_model_last = False
            return int(rng.integers(0, len(candidates)))
        self.used_model_last = True
        rows = np.column_stack([candidates, np.full(len(candidates), data_size)])
        return int(np.argmin(model.predict(rows)))


@dataclass
class SuggestionLog:
    """One rationale entry ('enhancing transparency and facilitating
    debugging')."""

    query_signature: str
    iteration: int
    config: Dict[str, float]
    model_available: bool
    tuning_active: bool
    n_candidates: int


class AutotuneClient:
    """Client-side inference + event emission for one Spark application.

    Args:
        backend: the Autotune backend handle.
        app_id: this application's id.
        artifact_id: recurrent-workload identity (e.g. notebook hash).
        user_id: owning customer.
        query_space: query-level knob space.
        embedder: workload embedder (compile-time features).
        enabled: the ``spark.autotune.query.enabled`` switch.
        guardrail_factory: per-query guardrail constructor (``None`` = no
            guardrail).
        seed: RNG seed for the per-query optimizers.
    """

    def __init__(
        self,
        backend: AutotuneBackend,
        app_id: str,
        artifact_id: str,
        user_id: str,
        query_space: ConfigSpace,
        embedder: Optional[WorkloadEmbedder] = None,
        enabled: bool = True,
        guardrail_factory=None,
        seed: Optional[int] = None,
        initial_state: Optional[Dict[str, dict]] = None,
    ):
        self.backend = backend
        self.query_space = query_space
        self.embedder = embedder or WorkloadEmbedder()
        self.enabled = enabled
        self.guardrail_factory = guardrail_factory
        self.credentials = AutotuneCredentialManager(backend, app_id, artifact_id, user_id)
        self.model_loader = ModelLoader(self.credentials)
        self._optimizers: Dict[str, CentroidLearning] = {}
        self._selectors: Dict[str, RemoteModelSelector] = {}
        self._pending_events: List[QueryEndEvent] = []
        self._seed = seed
        self.suggestion_log: List[SuggestionLog] = []
        self._completed_signatures: List[str] = []
        self._total_duration = 0.0
        self._initial_state = dict(initial_state or {})

    @classmethod
    def from_spark_conf(cls, backend: AutotuneBackend, conf: Dict[str, object],
                        query_space: ConfigSpace, **kwargs) -> "AutotuneClient":
        """Build a client from submission-time Spark configuration entries."""
        enabled = str(conf.get(ENABLE_KNOB, "true")).lower() == "true"
        return cls(
            backend=backend,
            app_id=str(conf["spark.app.id"]),
            artifact_id=str(conf["spark.autotune.artifact.id"]),
            user_id=str(conf["spark.autotune.user.id"]),
            query_space=query_space,
            enabled=enabled,
            **kwargs,
        )

    # -- startup ------------------------------------------------------------------

    def app_level_config(self) -> Optional[Dict[str, float]]:
        """The pre-computed app_cache configuration, if any."""
        return self.credentials.grant.app_config

    # -- per-query inference -----------------------------------------------------------

    def _optimizer_for(self, signature: str) -> CentroidLearning:
        if signature not in self._optimizers:
            selector = RemoteModelSelector(self.model_loader, signature)
            self._selectors[signature] = selector
            guardrail = self.guardrail_factory() if self.guardrail_factory else None
            optimizer = CentroidLearning(
                self.query_space,
                selector=selector,
                guardrail=guardrail,
                seed=self._seed,
            )
            if signature in self._initial_state:
                optimizer.restore_state(self._initial_state[signature])
            self._optimizers[signature] = optimizer
        return self._optimizers[signature]

    def export_state(self) -> Dict[str, dict]:
        """Per-signature tuning state for persistence across app runs.

        Pass the returned mapping as ``initial_state`` to the next run's
        client so centroids, windows and guardrail decisions carry over —
        the recurrent-workload continuity that production stores alongside
        the artifact.
        """
        return {sig: opt.to_state() for sig, opt in self._optimizers.items()}

    def suggest_config(self, plan: PhysicalPlan) -> Dict[str, float]:
        """Configuration for ``plan``, decided before physical planning."""
        if not self.enabled:
            return self.query_space.default_dict()
        signature = plan.signature()
        optimizer = self._optimizer_for(signature)
        embedding = self.embedder.embed(plan)
        estimated_size = max(plan.total_leaf_cardinality, 1.0)
        vector = optimizer.suggest(data_size=estimated_size, embedding=embedding)
        config = self.query_space.to_dict(vector)
        self.suggestion_log.append(
            SuggestionLog(
                query_signature=signature,
                iteration=optimizer.iteration,
                config=config,
                model_available=self._selectors[signature].used_model_last,
                tuning_active=optimizer.tuning_active,
                n_candidates=optimizer.n_candidates,
            )
        )
        return config

    # -- query listener --------------------------------------------------------------

    def on_query_end(self, event: QueryEndEvent) -> None:
        """Record a completed query; updates local state and buffers the event."""
        if self.enabled:
            optimizer = self._optimizer_for(event.query_signature)
            embedding = np.array(event.embedding) if event.embedding else None
            optimizer.observe(
                Observation(
                    config=self.query_space.to_vector(event.config),
                    data_size=event.data_size,
                    performance=event.duration_seconds,
                    iteration=event.iteration,
                    embedding=embedding,
                )
            )
        self._pending_events.append(event)
        self._completed_signatures.append(event.query_signature)
        self._total_duration += event.duration_seconds

    def flush_events(self) -> int:
        """Upload buffered events via the SAS write token; returns count."""
        if not self._pending_events:
            return 0
        creds = self.credentials
        events, self._pending_events = self._pending_events, []
        try:
            self.backend.submit_events(
                creds.grant.event_write_token, creds.app_id, creds.artifact_id, events
            )
        except TokenError:
            creds.refresh()
            self.backend.submit_events(
                creds.grant.event_write_token, creds.app_id, creds.artifact_id, events
            )
        return len(events)

    def finish_app(self, app_config: Optional[Dict[str, float]] = None) -> AppEndEvent:
        """Flush events and notify the backend the application completed."""
        self.flush_events()
        event = AppEndEvent(
            app_id=self.credentials.app_id,
            artifact_id=self.credentials.artifact_id,
            user_id=self.credentials.user_id,
            app_config={k: float(v) for k, v in (app_config or {}).items()},
            query_signatures=list(self._completed_signatures),
            total_duration_seconds=self._total_duration,
        )
        try:
            self.backend.submit_app_end(self.credentials.grant.event_write_token, event)
        except TokenError:
            self.credentials.refresh()
            self.backend.submit_app_end(self.credentials.grant.event_write_token, event)
        return event
