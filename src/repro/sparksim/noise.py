"""Production noise model — Eq. 8 of the paper.

Two noise types observed in the Microsoft Fabric environment (Sec. 1):

* **fluctuation noise** — Gaussian-distributed slowdowns with level ``FL``;
* **performance spikes** — with probability ``SL/10`` the execution time
  doubles on top of the fluctuation.

Drawing ``u ~ U[0,1]`` and ``ε ~ N(0, FL)``:

    g = g0 · (1 + |ε|)        if u > SL/10
    g = g0 · (1 + |ε|) · 2    otherwise

High noise: FL = SL = 1 (10% spike probability); low: FL = SL = 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel", "high_noise", "low_noise", "no_noise"]


@dataclass(frozen=True)
class NoiseModel:
    """Eq.-8 observational noise.

    Attributes:
        fluctuation_level: standard deviation ``FL`` of the Gaussian slowdown.
        spike_level: ``SL``; spikes occur with probability ``SL/10``.
    """

    fluctuation_level: float = 1.0
    spike_level: float = 1.0

    def __post_init__(self) -> None:
        if self.fluctuation_level < 0:
            raise ValueError("fluctuation_level must be >= 0")
        if not 0 <= self.spike_level <= 10:
            raise ValueError("spike_level must be in [0, 10] (probability = SL/10)")

    @property
    def spike_probability(self) -> float:
        return self.spike_level / 10.0

    def apply(self, g0: float, rng: np.random.Generator) -> float:
        """Inject noise into a baseline execution time ``g0`` (Eq. 8)."""
        if g0 < 0:
            raise ValueError("baseline time must be >= 0")
        eps = rng.normal(0.0, self.fluctuation_level) if self.fluctuation_level > 0 else 0.0
        g = g0 * (1.0 + abs(eps))
        if rng.uniform() <= self.spike_probability:
            g *= 2.0
        return g

    def apply_many(self, g0: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized :meth:`apply` over an array of baseline times."""
        g0 = np.asarray(g0, dtype=float)
        if np.any(g0 < 0):
            raise ValueError("baseline times must be >= 0")
        eps = (
            rng.normal(0.0, self.fluctuation_level, size=g0.shape)
            if self.fluctuation_level > 0
            else np.zeros_like(g0)
        )
        g = g0 * (1.0 + np.abs(eps))
        spikes = rng.uniform(size=g0.shape) <= self.spike_probability
        g[spikes] *= 2.0
        return g


def high_noise() -> NoiseModel:
    """FL = 1, SL = 1 — the paper's 'high noise' regime (Fig. 8a)."""
    return NoiseModel(fluctuation_level=1.0, spike_level=1.0)


def low_noise() -> NoiseModel:
    """FL = 0.1, SL = 0.1 — the 'low noise' regime (Fig. 8b)."""
    return NoiseModel(fluctuation_level=0.1, spike_level=0.1)


def no_noise() -> NoiseModel:
    """Deterministic observations (for testing and true-optimum sweeps)."""
    return NoiseModel(fluctuation_level=0.0, spike_level=0.0)
