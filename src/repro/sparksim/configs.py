"""Catalog of the Spark knobs tuned in the paper.

Sec. 6.3: the production deployment tunes three **query-level** knobs —
``spark.sql.files.maxPartitionBytes``, ``spark.sql.autoBroadcastJoinThreshold``
and ``spark.sql.shuffle.partitions``.  The manual-tuning study (Sec. 2.2)
additionally exposes four **app-level** knobs: ``spark.executor.instances``,
``spark.executor.memory``, ``spark.memory.offHeap.enabled`` and
``spark.memory.offHeap.size``.
"""

from __future__ import annotations

from typing import List

from ..core.categorical import CategoricalParameter
from ..core.config_space import ConfigSpace, Parameter

__all__ = [
    "COMPRESSION_CODEC",
    "SERIALIZER",
    "categorical_query_knobs",
    "MAX_PARTITION_BYTES",
    "AUTO_BROADCAST_JOIN_THRESHOLD",
    "SHUFFLE_PARTITIONS",
    "EXECUTOR_INSTANCES",
    "EXECUTOR_MEMORY",
    "EXECUTOR_CORES",
    "OFFHEAP_ENABLED",
    "OFFHEAP_SIZE",
    "query_level_space",
    "app_level_space",
    "manual_study_space",
    "full_space",
]

MIB = 1024.0 * 1024.0
GIB = 1024.0 * MIB

MAX_PARTITION_BYTES = Parameter(
    name="spark.sql.files.maxPartitionBytes",
    low=1 * MIB,
    high=1 * GIB,
    default=128 * MIB,
    log_scale=True,
    integer=True,
    scope="query",
)

AUTO_BROADCAST_JOIN_THRESHOLD = Parameter(
    name="spark.sql.autoBroadcastJoinThreshold",
    low=0.25 * MIB,
    high=512 * MIB,
    default=10 * MIB,
    log_scale=True,
    integer=True,
    scope="query",
)

SHUFFLE_PARTITIONS = Parameter(
    name="spark.sql.shuffle.partitions",
    low=8,
    high=4000,
    default=200,
    log_scale=True,
    integer=True,
    scope="query",
)

EXECUTOR_INSTANCES = Parameter(
    name="spark.executor.instances",
    low=1,
    high=64,
    default=4,
    log_scale=True,
    integer=True,
    scope="app",
)

EXECUTOR_MEMORY = Parameter(  # gigabytes
    name="spark.executor.memory",
    low=2,
    high=64,
    default=8,
    log_scale=True,
    integer=True,
    scope="app",
)

EXECUTOR_CORES = Parameter(
    name="spark.executor.cores",
    low=1,
    high=16,
    default=4,
    integer=True,
    scope="app",
)

# Boolean knob modeled on a continuous [0, 1] axis that rounds to {0, 1}; the
# paper notes categorical knobs are handled by embedding them into a
# continuous space (Sec. 4.3).
OFFHEAP_ENABLED = Parameter(
    name="spark.memory.offHeap.enabled",
    low=0,
    high=1,
    default=0,
    integer=True,
    scope="app",
)

OFFHEAP_SIZE = Parameter(  # gigabytes
    name="spark.memory.offHeap.size",
    low=1,
    high=32,
    default=2,
    log_scale=True,
    integer=True,
    scope="app",
)


# Categorical knobs (Sec. 4.3 notes these are tuned via continuous
# embeddings — see repro.core.categorical).
COMPRESSION_CODEC = CategoricalParameter(
    name="spark.io.compression.codec",
    choices=("lz4", "snappy", "zstd"),
    default="lz4",
    scope="query",
)

SERIALIZER = CategoricalParameter(
    name="spark.serializer",
    choices=("java", "kryo"),
    default="java",
    scope="app",
)


def categorical_query_knobs() -> List[CategoricalParameter]:
    """Categorical knobs available to the mixed-space tuner."""
    return [COMPRESSION_CODEC, SERIALIZER]


def query_level_space() -> ConfigSpace:
    """The three query-level knobs tuned by the production deployment."""
    return ConfigSpace(
        [MAX_PARTITION_BYTES, AUTO_BROADCAST_JOIN_THRESHOLD, SHUFFLE_PARTITIONS]
    )


def app_level_space() -> ConfigSpace:
    """App-level knobs fixed at application startup."""
    return ConfigSpace(
        [EXECUTOR_INSTANCES, EXECUTOR_MEMORY, EXECUTOR_CORES, OFFHEAP_ENABLED, OFFHEAP_SIZE]
    )


def manual_study_space() -> ConfigSpace:
    """The seven knobs exposed in the Sec. 2.2 manual-tuning user study."""
    return ConfigSpace(
        [
            MAX_PARTITION_BYTES,
            AUTO_BROADCAST_JOIN_THRESHOLD,
            SHUFFLE_PARTITIONS,
            EXECUTOR_INSTANCES,
            EXECUTOR_MEMORY,
            OFFHEAP_ENABLED,
            OFFHEAP_SIZE,
        ]
    )


def full_space() -> ConfigSpace:
    """Query- plus app-level knobs (used by the joint optimizer, Alg. 2)."""
    return ConfigSpace(
        [
            MAX_PARTITION_BYTES,
            AUTO_BROADCAST_JOIN_THRESHOLD,
            SHUFFLE_PARTITIONS,
            EXECUTOR_INSTANCES,
            EXECUTOR_MEMORY,
            EXECUTOR_CORES,
            OFFHEAP_ENABLED,
            OFFHEAP_SIZE,
        ]
    )
