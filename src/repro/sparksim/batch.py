"""Support structures for the vectorized batch-evaluation fast path.

The cost model's batch kernel (:meth:`CostModel.estimate_batch`) evaluates
N configurations against one plan in a handful of NumPy operations instead
of N interpreter passes.  Three ingredients live here:

* :class:`PlanArrays` — a per-plan precompiled view of the operator DAG
  (topological op order, cardinality/byte arrays, resolved join build/probe
  inputs), cached by ``(plan.signature(), data_scale)`` so sweeps over the
  same plan never re-walk the graph or re-allocate a scaled copy;
* :class:`ConfigColumns` — a columnar natural-unit view of a batch of
  configurations, built either from config dicts or from an ``(N, dim)``
  internal-vector array plus its :class:`~repro.core.config_space.ConfigSpace`;
* :func:`resolve_layouts` — the batch :class:`ExecutorLayout` resolver: app
  knob columns are deduplicated and each unique combination goes through the
  exact scalar ``ExecutorLayout.from_config`` behind a small LRU, so
  repeated configurations pay the resolution once.

Everything here is derived data; the arithmetic that turns it into seconds
stays in :mod:`repro.sparksim.cost_model` next to the scalar reference
kernel it mirrors.
"""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .cluster import ExecutorLayout, Pool, default_pool
from .plan import OpType, PhysicalPlan

__all__ = [
    "ConfigColumns",
    "LayoutArrays",
    "PlanArrays",
    "clear_plan_arrays_cache",
    "plan_arrays",
    "plan_arrays_cache_stats",
    "resolve_layouts",
]

Column = Union[np.ndarray, float]


# -- precompiled plan arrays -------------------------------------------------------

@dataclass(frozen=True)
class PlanArrays:
    """Operator-array view of one plan at one data scale.

    All per-operator values are listed in topological (execution) order —
    the same order :attr:`PhysicalPlan.operators` yields — and carry the
    data scale already applied, with the exact multiplication order of
    ``plan.scaled(factor)`` (rows scale first, bytes derive from scaled
    rows) so batch results are bit-compatible with the scalar path.
    """

    signature: str
    data_scale: float
    op_ids: Tuple[int, ...]
    op_types: Tuple[str, ...]
    rows_in: np.ndarray          # (n_ops,) scaled estimated input rows
    rows_out: np.ndarray         # (n_ops,) scaled estimated output rows
    row_bytes: np.ndarray        # (n_ops,) average row width (scale-invariant)
    bytes_in: np.ndarray         # (n_ops,) rows_in * row_bytes
    join_build_bytes: np.ndarray  # (n_ops,) build-side bytes for joins, 0 otherwise
    join_probe_rows: np.ndarray   # (n_ops,) probe-side rows for joins, 0 otherwise
    total_leaf_cardinality: float
    total_input_bytes: float
    # Join-side components, kept separate so a *per-config* data-scale sweep
    # can recompute build/probe inputs in the exact scalar multiplication
    # order ``(rows * scale) * row_bytes`` (see CostModel.estimate_batch's
    # ``data_scales``): build-side output rows, build-side row width, and a
    # degenerate-single-input-join mask.
    join_build_rows: Optional[np.ndarray] = None
    join_build_row_bytes: Optional[np.ndarray] = None
    join_degenerate: Optional[np.ndarray] = None

    @property
    def n_ops(self) -> int:
        return len(self.op_ids)

    @classmethod
    def build(cls, plan: PhysicalPlan, data_scale: float = 1.0) -> "PlanArrays":
        """Precompile ``plan`` at ``data_scale`` (no caching; see :func:`plan_arrays`)."""
        if data_scale <= 0:
            raise ValueError("data_scale must be > 0")
        ops = plan.operators
        n = len(ops)
        rows_in = np.empty(n)
        rows_out = np.empty(n)
        row_bytes = np.empty(n)
        build_bytes = np.zeros(n)
        probe_rows = np.zeros(n)
        join_build_rows = np.zeros(n)
        join_build_row_bytes = np.zeros(n)
        join_degenerate = np.zeros(n, dtype=bool)
        op_ids: List[int] = []
        op_types: List[str] = []
        for i, op in enumerate(ops):
            op_ids.append(op.op_id)
            op_types.append(op.op_type)
            # Match plan.scaled(): rows scale first, bytes derive from the
            # scaled rows — this keeps ceil() boundaries identical between
            # the batch kernel and the scalar path on a scaled plan.
            rows_in[i] = op.est_rows_in * data_scale
            rows_out[i] = op.est_rows_out * data_scale
            row_bytes[i] = op.row_bytes
            if op.op_type == OpType.JOIN:
                children = [plan.operator(c) for c in op.children]
                if len(children) >= 2:
                    # Build/probe selection is invariant under uniform
                    # scaling (sorted() is stable on ties), so resolving it
                    # here once matches the scalar per-call resolution.
                    sides = sorted(
                        children, key=lambda c: (c.est_rows_out * data_scale) * c.row_bytes
                    )
                    build, probe = sides[0], sides[-1]
                    build_bytes[i] = (build.est_rows_out * data_scale) * build.row_bytes
                    probe_rows[i] = probe.est_rows_out * data_scale
                    join_build_rows[i] = build.est_rows_out * data_scale
                    join_build_row_bytes[i] = build.row_bytes
                else:
                    # Self-join / degenerate single-input join: split the input.
                    build_bytes[i] = (rows_in[i] * op.row_bytes) * 0.2
                    probe_rows[i] = rows_in[i] * 0.8
                    join_degenerate[i] = True
        # Leaf sums in the same node order the plan properties use, so the
        # reported metrics match the scalar path exactly.
        leaf_rows = 0.0
        leaf_bytes = 0.0
        for leaf in plan.leaves:
            scaled_rows = leaf.est_rows_in * data_scale
            leaf_rows += scaled_rows
            leaf_bytes += scaled_rows * leaf.row_bytes
        return cls(
            signature=plan.signature(),
            data_scale=float(data_scale),
            op_ids=tuple(op_ids),
            op_types=tuple(op_types),
            rows_in=rows_in,
            rows_out=rows_out,
            row_bytes=row_bytes,
            bytes_in=rows_in * row_bytes,
            join_build_bytes=build_bytes,
            join_probe_rows=probe_rows,
            total_leaf_cardinality=leaf_rows,
            total_input_bytes=leaf_bytes,
            join_build_rows=join_build_rows,
            join_build_row_bytes=join_build_row_bytes,
            join_degenerate=join_degenerate,
        )


_PLAN_ARRAYS_CACHE: "OrderedDict[tuple, PlanArrays]" = OrderedDict()
_PLAN_ARRAYS_LOCK = threading.Lock()
_PLAN_ARRAYS_MAXSIZE = 128
_plan_arrays_hits = 0
_plan_arrays_misses = 0


def plan_arrays(plan: PhysicalPlan, data_scale: float = 1.0) -> PlanArrays:
    """Cached :class:`PlanArrays` for ``(plan, data_scale)``.

    Keyed by ``(plan.signature(), data_scale)`` plus the plan's absolute
    leaf cardinality/bytes — the signature alone is shared by uniformly
    scaled copies of the same query, which must not collide here.
    """
    key = (
        plan.signature(),
        len(plan),
        float(plan.total_leaf_cardinality),
        float(plan.total_input_bytes),
        float(data_scale),
    )
    global _plan_arrays_hits, _plan_arrays_misses
    with _PLAN_ARRAYS_LOCK:
        cached = _PLAN_ARRAYS_CACHE.get(key)
        if cached is not None:
            _PLAN_ARRAYS_CACHE.move_to_end(key)
            _plan_arrays_hits += 1
            return cached
    arrays = PlanArrays.build(plan, data_scale)
    with _PLAN_ARRAYS_LOCK:
        _plan_arrays_misses += 1
        _PLAN_ARRAYS_CACHE[key] = arrays
        while len(_PLAN_ARRAYS_CACHE) > _PLAN_ARRAYS_MAXSIZE:
            _PLAN_ARRAYS_CACHE.popitem(last=False)
    return arrays


def clear_plan_arrays_cache() -> None:
    """Drop all cached plan arrays (tests and long-lived services)."""
    global _plan_arrays_hits, _plan_arrays_misses
    with _PLAN_ARRAYS_LOCK:
        _PLAN_ARRAYS_CACHE.clear()
        _plan_arrays_hits = 0
        _plan_arrays_misses = 0


def plan_arrays_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the plan-array cache."""
    with _PLAN_ARRAYS_LOCK:
        return {
            "hits": _plan_arrays_hits,
            "misses": _plan_arrays_misses,
            "size": len(_PLAN_ARRAYS_CACHE),
        }


# -- columnar configuration batches ------------------------------------------------

class ConfigColumns:
    """Columnar (natural-unit) view of N configurations.

    Built from a sequence of config dicts (:meth:`from_dicts`) or from an
    ``(N, dim)`` internal-vector array plus its space (:meth:`from_vectors`).
    Knobs a batch never sets are returned as scalar defaults so NumPy
    broadcasting keeps them free.
    """

    def __init__(
        self,
        n: int,
        dicts: Optional[Sequence[Mapping[str, float]]] = None,
        matrix: Optional[np.ndarray] = None,
        names: Optional[Dict[str, int]] = None,
    ):
        self.n = int(n)
        self._dicts = dicts
        self._matrix = matrix
        self._names = names or {}
        self._numeric_cache: Dict[str, Column] = {}

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_dicts(cls, configs: Sequence[Mapping[str, float]]) -> "ConfigColumns":
        configs = list(configs)
        if not configs:
            raise ValueError("need at least one configuration")
        return cls(n=len(configs), dicts=configs)

    @classmethod
    def from_vectors(cls, space, vectors: np.ndarray) -> "ConfigColumns":
        """Columns from internal vectors; conversion is vectorized per knob."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        # Pruned-subspace batches (repro.core.importance.PrunedSpace) decode
        # to full-space vectors here, so the kernel always sees complete
        # configurations — kept knobs bitwise, dropped knobs pinned.
        decode = getattr(space, "decode_matrix", None)
        if decode is not None:
            vectors = decode(vectors)
            space = space.full_space
        matrix = space.to_natural_matrix(vectors)
        return cls(
            n=matrix.shape[0],
            matrix=matrix,
            names={name: j for j, name in enumerate(space.names)},
        )

    @classmethod
    def coerce(cls, configs, space=None) -> "ConfigColumns":
        """Accept columns, an (N, dim) array (needs ``space``), or dicts."""
        if isinstance(configs, ConfigColumns):
            return configs
        if isinstance(configs, np.ndarray):
            if space is None:
                raise ValueError("vector-shaped config batches need space=")
            return cls.from_vectors(space, configs)
        configs = list(configs)
        if configs and isinstance(configs[0], Mapping):
            return cls.from_dicts(configs)
        if space is None:
            raise ValueError("vector-shaped config batches need space=")
        return cls.from_vectors(space, np.asarray(configs, dtype=float))

    # -- column access ---------------------------------------------------------

    def numeric(self, name: str, default: float) -> Column:
        """The knob's per-config values, or a scalar default when unset."""
        cached = self._numeric_cache.get(name)
        if cached is not None:
            return cached
        if self._matrix is not None:
            j = self._names.get(name)
            column: Column = (
                self._matrix[:, j] if j is not None else float(default)
            )
        elif self.n == 1:
            # Single-config batches (the scalar estimate() wrapper) stay on
            # NumPy's scalar fast path — no (1,) broadcasting machinery.
            column = float(self._dicts[0].get(name, default))
        elif any(name in c for c in self._dicts):
            column = np.fromiter(
                (float(c.get(name, default)) for c in self._dicts),
                dtype=float,
                count=self.n,
            )
        else:
            column = float(default)
        self._numeric_cache[name] = column
        return column

    def dict_at(self, i: int) -> Dict[str, float]:
        """Config *i* as the dict a scalar caller would have passed.

        For vector-backed batches this is exactly ``space.to_dict(v_i)``
        (same natural-unit conversion, same key order).
        """
        if self._dicts is not None:
            return dict(self._dicts[i])
        return {name: float(self._matrix[i, j]) for name, j in self._names.items()}

    def factor(self, name: str, default: str, table: Mapping[str, float]) -> Column:
        """Per-config multiplier for a categorical knob via a factor table."""
        if self._dicts is None or not any(name in c for c in self._dicts):
            return float(table.get(default, 1.0))
        if self.n == 1:
            return float(table.get(str(self._dicts[0].get(name, default)), 1.0))
        return np.fromiter(
            (table.get(str(c.get(name, default)), 1.0) for c in self._dicts),
            dtype=float,
            count=self.n,
        )


# -- batch executor-layout resolution ----------------------------------------------

# (knob, default) pairs mirroring ExecutorLayout.from_config's fallbacks.
_APP_KNOBS: Tuple[Tuple[str, float], ...] = (
    ("spark.executor.instances", 4.0),
    ("spark.executor.cores", 4.0),
    ("spark.executor.memory", 8.0),
    ("spark.memory.offHeap.enabled", 0.0),
    ("spark.memory.offHeap.size", 0.0),
)


@functools.lru_cache(maxsize=256)
def _layout_for(
    pool: Pool, instances: float, cores: float, memory: float,
    offheap_enabled: float, offheap_size: float,
) -> ExecutorLayout:
    """LRU-cached scalar layout resolution for one unique app-knob tuple."""
    return ExecutorLayout.from_config(
        {
            "spark.executor.instances": instances,
            "spark.executor.cores": cores,
            "spark.executor.memory": memory,
            "spark.memory.offHeap.enabled": offheap_enabled,
            "spark.memory.offHeap.size": offheap_size,
        },
        pool,
    )


@dataclass(frozen=True)
class LayoutArrays:
    """Per-config executor-layout columns (scalars when uniform)."""

    executors: Column
    total_cores: Column            # clamped to >= 1, as the scalar kernels do
    memory_gb_per_executor: Column
    memory_gb_per_core: Column
    offheap_positive: Union[np.ndarray, bool]

    @classmethod
    def from_layout(cls, layout: ExecutorLayout) -> "LayoutArrays":
        return cls(
            executors=float(layout.executors),
            total_cores=float(max(layout.total_cores, 1)),
            memory_gb_per_executor=float(layout.memory_gb_per_executor),
            memory_gb_per_core=float(layout.memory_gb_per_core),
            offheap_positive=layout.offheap_gb_per_executor > 0,
        )

    @classmethod
    def from_layouts(cls, layouts: Sequence[ExecutorLayout]) -> "LayoutArrays":
        return cls(
            executors=np.array([float(l.executors) for l in layouts]),
            total_cores=np.array([float(max(l.total_cores, 1)) for l in layouts]),
            memory_gb_per_executor=np.array(
                [l.memory_gb_per_executor for l in layouts]
            ),
            memory_gb_per_core=np.array([l.memory_gb_per_core for l in layouts]),
            offheap_positive=np.array(
                [l.offheap_gb_per_executor > 0 for l in layouts]
            ),
        )


def resolve_layouts(cols: ConfigColumns, pool: Optional[Pool] = None) -> LayoutArrays:
    """Resolve one :class:`ExecutorLayout` per configuration, deduplicated.

    Unique app-knob rows go through the exact scalar
    ``ExecutorLayout.from_config`` (behind :func:`_layout_for`'s LRU), then
    gather back to per-config columns.  Batches that never touch app knobs
    — every query-level sweep — collapse to one shared layout.
    """
    pool = pool or default_pool()
    columns = [cols.numeric(name, default) for name, default in _APP_KNOBS]
    if all(not isinstance(c, np.ndarray) for c in columns):
        return LayoutArrays.from_layout(_layout_for(pool, *columns))
    stacked = np.column_stack([np.broadcast_to(c, cols.n) for c in columns])
    unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
    layouts = [_layout_for(pool, *row) for row in unique]
    if len(layouts) == 1:
        return LayoutArrays.from_layout(layouts[0])
    per_unique = LayoutArrays.from_layouts(layouts)
    inverse = inverse.reshape(-1)
    return LayoutArrays(
        executors=per_unique.executors[inverse],
        total_cores=per_unique.total_cores[inverse],
        memory_gb_per_executor=per_unique.memory_gb_per_executor[inverse],
        memory_gb_per_core=per_unique.memory_gb_per_core[inverse],
        offheap_positive=per_unique.offheap_positive[inverse],
    )
