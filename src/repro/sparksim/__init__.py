"""Simulated Spark substrate: knobs, plans, cost model, cluster, noise."""

from .batch import (
    ConfigColumns,
    LayoutArrays,
    PlanArrays,
    clear_plan_arrays_cache,
    plan_arrays,
    plan_arrays_cache_stats,
    resolve_layouts,
)
from .calibration import (
    HeadroomReport,
    KnobSensitivity,
    knob_sensitivity,
    measure_headroom,
)
from .cluster import ExecutorLayout, NodeType, Pool, STANDARD_POOLS, default_pool
from .configs import (
    app_level_space,
    full_space,
    manual_study_space,
    query_level_space,
)
from .cost_model import BatchCostBreakdown, CostBreakdown, CostModel, CostParameters
from .events import (
    AppEndEvent,
    QueryEndEvent,
    StageRuntimeEvent,
    events_from_jsonl,
    events_to_jsonl,
)
from .executor import QueryRunResult, SparkSimulator
from .noise import NoiseModel, high_noise, low_noise, no_noise
from .overlay import StageConfigOverlay, StageOverride
from .plan import OP_TYPES, Operator, OpType, PhysicalPlan
from .replan import (
    ReplanPolicy,
    ReplanResult,
    TargetBytesPerPartition,
    run_with_replan,
)

__all__ = [
    "AppEndEvent",
    "BatchCostBreakdown",
    "ConfigColumns",
    "CostBreakdown",
    "HeadroomReport",
    "KnobSensitivity",
    "knob_sensitivity",
    "measure_headroom",
    "CostModel",
    "CostParameters",
    "ExecutorLayout",
    "LayoutArrays",
    "NodeType",
    "NoiseModel",
    "OP_TYPES",
    "Operator",
    "OpType",
    "PhysicalPlan",
    "PlanArrays",
    "Pool",
    "QueryEndEvent",
    "QueryRunResult",
    "ReplanPolicy",
    "ReplanResult",
    "STANDARD_POOLS",
    "SparkSimulator",
    "StageConfigOverlay",
    "StageOverride",
    "StageRuntimeEvent",
    "TargetBytesPerPartition",
    "app_level_space",
    "clear_plan_arrays_cache",
    "default_pool",
    "events_from_jsonl",
    "events_to_jsonl",
    "full_space",
    "high_noise",
    "low_noise",
    "manual_study_space",
    "no_noise",
    "plan_arrays",
    "plan_arrays_cache_stats",
    "query_level_space",
    "resolve_layouts",
    "run_with_replan",
]
