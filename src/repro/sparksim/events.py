"""Spark listener-style event records.

After query/application completion "Spark events are recorded to retrain ML
models and refine app-level configurations" (Sec. 5).  These records are the
payload flowing through the storage manager, event hub, and ETL.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

__all__ = ["QueryEndEvent", "AppEndEvent", "events_to_jsonl", "events_from_jsonl"]


@dataclass(frozen=True)
class QueryEndEvent:
    """Emitted by the query listener when a query finishes."""

    app_id: str
    artifact_id: str
    query_signature: str
    user_id: str
    iteration: int
    config: Dict[str, float]
    data_size: float
    duration_seconds: float
    embedding: List[float] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    region: str = "default"
    event_type: str = "QueryEnd"

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, data: str) -> "QueryEndEvent":
        payload = json.loads(data)
        payload.pop("event_type", None)
        return cls(**payload)


@dataclass(frozen=True)
class AppEndEvent:
    """Emitted when a Spark application completes all its queries."""

    app_id: str
    artifact_id: str
    user_id: str
    app_config: Dict[str, float]
    query_signatures: List[str]
    total_duration_seconds: float
    region: str = "default"
    event_type: str = "AppEnd"

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, data: str) -> "AppEndEvent":
        payload = json.loads(data)
        payload.pop("event_type", None)
        return cls(**payload)


_EVENT_TYPES = {"QueryEnd": QueryEndEvent, "AppEnd": AppEndEvent}


def events_to_jsonl(events) -> str:
    """Serialize a sequence of events to JSON-lines."""
    return "\n".join(e.to_json() for e in events)


def events_from_jsonl(text: str) -> List[object]:
    """Parse a JSON-lines event file back into event objects."""
    out: List[object] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        kind = json.loads(line).get("event_type", "QueryEnd")
        cls = _EVENT_TYPES.get(kind)
        if cls is None:
            raise ValueError(f"unknown event type {kind!r}")
        out.append(cls.from_json(line))
    return out
