"""Spark listener-style event records.

After query/application completion "Spark events are recorded to retrain ML
models and refine app-level configurations" (Sec. 5).  These records are the
payload flowing through the storage manager, event hub, and ETL.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

__all__ = [
    "QueryEndEvent",
    "AppEndEvent",
    "StageRuntimeEvent",
    "events_to_jsonl",
    "events_from_jsonl",
]


def _known_fields(cls, payload: dict) -> dict:
    """Drop unknown keys so newer writers never break older readers."""
    names = {f.name for f in fields(cls)}
    return {k: v for k, v in payload.items() if k in names and k != "event_type"}


@dataclass(frozen=True)
class QueryEndEvent:
    """Emitted by the query listener when a query finishes.

    ``sequence`` is the client-assigned per-application delivery number that
    makes event upload idempotent: the backend deduplicates on
    ``(app_id, sequence)`` so at-least-once retries never double-count.  The
    default ``-1`` marks an unsequenced (legacy or hand-built) event, which
    is never deduplicated.
    """

    app_id: str
    artifact_id: str
    query_signature: str
    user_id: str
    iteration: int
    config: Dict[str, float]
    data_size: float
    duration_seconds: float
    embedding: List[float] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    region: str = "default"
    sequence: int = -1
    event_type: str = "QueryEnd"

    @property
    def dedup_key(self) -> Optional[Tuple[str, int]]:
        """The idempotency key, or ``None`` for unsequenced events."""
        return (self.app_id, self.sequence) if self.sequence >= 0 else None

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, data: str) -> "QueryEndEvent":
        return cls(**_known_fields(cls, json.loads(data)))


@dataclass(frozen=True)
class AppEndEvent:
    """Emitted when a Spark application completes all its queries."""

    app_id: str
    artifact_id: str
    user_id: str
    app_config: Dict[str, float]
    query_signatures: List[str]
    total_duration_seconds: float
    region: str = "default"
    event_type: str = "AppEnd"

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, data: str) -> "AppEndEvent":
        return cls(**_known_fields(cls, json.loads(data)))


@dataclass(frozen=True)
class StageRuntimeEvent:
    """Emitted after an exchange materializes, with *observed* sizes.

    This is the AQE-style runtime feedback channel: the planner's
    ``estimated_bytes`` for the exchange versus the ``observed_bytes`` it
    actually shuffled.  A :class:`~repro.sparksim.replan.ReplanPolicy`
    consumes these mid-query to swap the overrides of stages that have not
    started yet (see ``repro.sparksim.replan``).
    """

    app_id: str
    query_signature: str
    op_id: int
    op_type: str
    estimated_bytes: float
    observed_bytes: float
    observed_rows: float = 0.0
    iteration: int = 0
    event_type: str = "StageRuntime"

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, data: str) -> "StageRuntimeEvent":
        return cls(**_known_fields(cls, json.loads(data)))


_EVENT_TYPES = {
    "QueryEnd": QueryEndEvent,
    "AppEnd": AppEndEvent,
    "StageRuntime": StageRuntimeEvent,
}


def events_to_jsonl(events) -> str:
    """Serialize a sequence of events to JSON-lines."""
    return "\n".join(e.to_json() for e in events)


def events_from_jsonl(text: str) -> List[object]:
    """Parse a JSON-lines event file back into event objects."""
    out: List[object] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        kind = json.loads(line).get("event_type", "QueryEnd")
        cls = _EVENT_TYPES.get(kind)
        if cls is None:
            raise ValueError(f"unknown event type {kind!r}")
        out.append(cls.from_json(line))
    return out
