"""Stage-scoped knob overrides for the simulated Spark cost model.

Rockhopper (and our reproduction so far) tunes one configuration for the
whole application.  The Spark Optimizer line (PAPERS.md, 2403.00995) shows
the finer-grained formulation: *per-stage* parameters — a partition count
per exchange, a memory fraction or task-parallelism cap per scan/shuffle
stage — adapted mid-query.  A :class:`StageConfigOverlay` carries those
per-operator overrides; ``CostModel.estimate``/``estimate_batch`` and the
``SparkSimulator`` entry points accept an ``overlay=`` keyword and resolve
each operator's effective knobs as *override if set, else the app-level
config*.  The batch kernel stays bitwise-equal to the scalar path with or
without an overlay (pinned by the ``stages`` tier and the Hypothesis
battery), and ``overlay=None`` leaves every existing code path untouched.

Overrides scope to the stage-shaped cost terms: scan split sizing and the
shuffle read/write/scheduling terms (including the shuffle inside
sort-merge joins, aggregates, sorts and windows).  Broadcast-side and pure
CPU terms are not stage-scoped — they have no per-stage knob in the
catalog this models.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = ["StageOverride", "StageConfigOverlay"]


@dataclass(frozen=True)
class StageOverride:
    """Per-stage knob overrides; every field ``None`` means "inherit".

    * ``shuffle_partitions`` — replaces ``spark.sql.shuffle.partitions``
      for this exchange's shuffle terms.
    * ``max_partition_bytes`` — replaces
      ``spark.sql.files.maxPartitionBytes`` for this scan's split sizing.
    * ``memory_fraction`` — replaces the cost model's
      ``executor_memory_fraction`` in this stage's spill budget.
    * ``task_parallelism`` — caps the cores this stage's waves may use
      (models per-stage dynamic-allocation / slot limits).
    """

    shuffle_partitions: Optional[int] = None
    max_partition_bytes: Optional[float] = None
    memory_fraction: Optional[float] = None
    task_parallelism: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shuffle_partitions is not None and self.shuffle_partitions < 1:
            raise ValueError("shuffle_partitions override must be >= 1")
        if self.max_partition_bytes is not None and self.max_partition_bytes <= 0:
            raise ValueError("max_partition_bytes override must be > 0")
        if self.memory_fraction is not None and not 0.0 < self.memory_fraction <= 1.0:
            raise ValueError("memory_fraction override must be in (0, 1]")
        if self.task_parallelism is not None and self.task_parallelism < 1:
            raise ValueError("task_parallelism override must be >= 1")

    @property
    def is_null(self) -> bool:
        """True when every field inherits (the override does nothing)."""
        return (
            self.shuffle_partitions is None
            and self.max_partition_bytes is None
            and self.memory_fraction is None
            and self.task_parallelism is None
        )

    def to_state(self) -> Dict[str, object]:
        return {
            "shuffle_partitions": self.shuffle_partitions,
            "max_partition_bytes": self.max_partition_bytes,
            "memory_fraction": self.memory_fraction,
            "task_parallelism": self.task_parallelism,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StageOverride":
        return cls(
            shuffle_partitions=state.get("shuffle_partitions"),  # type: ignore[arg-type]
            max_partition_bytes=state.get("max_partition_bytes"),  # type: ignore[arg-type]
            memory_fraction=state.get("memory_fraction"),  # type: ignore[arg-type]
            task_parallelism=state.get("task_parallelism"),  # type: ignore[arg-type]
        )


class StageConfigOverlay:
    """An immutable-by-convention map of operator id -> :class:`StageOverride`.

    Operator ids are the plan's integer ``op_id`` values.  Null overrides
    are dropped at construction, so an overlay is falsy iff it changes
    nothing.  :meth:`with_override` returns a **new** overlay — re-plan
    policies build up overlays functionally, which keeps replayed event
    streams trivially deterministic.
    """

    def __init__(self, overrides: Optional[Mapping[int, StageOverride]] = None):
        self._overrides: Dict[int, StageOverride] = {
            int(op_id): ov
            for op_id, ov in (overrides or {}).items()
            if not ov.is_null
        }

    def get(self, op_id: int) -> Optional[StageOverride]:
        return self._overrides.get(op_id)

    def with_override(self, op_id: int, override: StageOverride) -> "StageConfigOverlay":
        merged = dict(self._overrides)
        merged[int(op_id)] = override
        return StageConfigOverlay(merged)

    def items(self) -> Iterator[Tuple[int, StageOverride]]:
        return iter(sorted(self._overrides.items()))

    def __len__(self) -> int:
        return len(self._overrides)

    def __bool__(self) -> bool:
        return bool(self._overrides)

    def __contains__(self, op_id: int) -> bool:
        return int(op_id) in self._overrides

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StageConfigOverlay):
            return NotImplemented
        return self._overrides == other._overrides

    def __repr__(self) -> str:
        body = ", ".join(f"{op_id}" for op_id, _ in self.items())
        return f"StageConfigOverlay({{{body}}})"

    def to_state(self) -> Dict[str, object]:
        # JSON object keys are strings; from_state converts back to int.
        return {str(op_id): ov.to_state() for op_id, ov in self.items()}

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StageConfigOverlay":
        return cls({
            int(op_id): StageOverride.from_state(ov)  # type: ignore[arg-type]
            for op_id, ov in state.items()
        })

    def to_json(self) -> str:
        return json.dumps(self.to_state(), sort_keys=True)

    @classmethod
    def from_json(cls, data: str) -> "StageConfigOverlay":
        return cls.from_state(json.loads(data))
