"""Cost-model calibration probes.

The claims this reproduction makes about its substrate — how much headroom
the Spark defaults leave, and how sensitive each knob is — should be
measurable, not asserted.  These utilities quantify both over a workload
set, and back the numbers quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.config_space import ConfigSpace
from .configs import query_level_space
from .executor import SparkSimulator
from .noise import no_noise
from .plan import PhysicalPlan

__all__ = ["HeadroomReport", "KnobSensitivity", "measure_headroom", "knob_sensitivity"]


@dataclass(frozen=True)
class HeadroomReport:
    """How far the default configuration sits from each plan's optimum."""

    per_plan_pct: Dict[str, float]     # plan name -> (default/best − 1)·100

    @property
    def mean_pct(self) -> float:
        return float(np.mean(list(self.per_plan_pct.values())))

    @property
    def median_pct(self) -> float:
        return float(np.median(list(self.per_plan_pct.values())))

    @property
    def max_pct(self) -> float:
        return float(np.max(list(self.per_plan_pct.values())))

    def render(self) -> str:
        lines = [f"{'plan':<28}{'headroom %':>12}"]
        for name, pct in sorted(self.per_plan_pct.items()):
            lines.append(f"{name:<28}{pct:>12.1f}")
        lines.append(
            f"{'(mean / median / max)':<28}"
            f"{self.mean_pct:>6.1f} / {self.median_pct:.1f} / {self.max_pct:.1f}"
        )
        return "\n".join(lines)


def measure_headroom(
    plans: Sequence[PhysicalPlan],
    space: Optional[ConfigSpace] = None,
    n_probe_configs: int = 200,
    seed: int = 0,
) -> HeadroomReport:
    """Default-vs-best noiseless time over a Latin-hypercube probe.

    Args:
        plans: the workload set.
        space: knob space (default: the three production knobs).
        n_probe_configs: probe-set size per plan (a lower bound on the true
            optimum, so headroom numbers are conservative).
        seed: RNG seed.
    """
    if not plans:
        raise ValueError("need at least one plan")
    space = space or query_level_space()
    simulator = SparkSimulator(noise=no_noise(), seed=seed)
    rng = np.random.default_rng(seed)
    per_plan: Dict[str, float] = {}
    for plan in plans:
        default_time = simulator.true_time(plan, space.default_dict())
        probes = space.latin_hypercube(n_probe_configs, rng)
        # One vectorized evaluation of the whole probe set (bit-identical to
        # the per-config scalar loop it replaces).
        best = float(simulator.true_time_batch(plan, probes, space=space).min())
        per_plan[plan.name] = (default_time / best - 1.0) * 100.0
    return HeadroomReport(per_plan_pct=per_plan)


@dataclass(frozen=True)
class KnobSensitivity:
    """One-knob-at-a-time response summary for a single plan."""

    plan_name: str
    knob: str
    grid: np.ndarray
    times: np.ndarray

    @property
    def range_ratio(self) -> float:
        """Worst/best time over the sweep (1.0 = insensitive)."""
        return float(self.times.max() / self.times.min())

    @property
    def best_value(self) -> float:
        return float(self.grid[int(np.argmin(self.times))])

    @property
    def is_unimodal(self) -> bool:
        """Whether the *smoothed* response has at most one trend flip.

        Task-wave quantization (``ceil(tasks / cores)``) imprints a sawtooth
        on the raw curve, so a 3-point moving average is applied before
        counting descending→ascending flips.
        """
        times = self.times
        if len(times) >= 3:
            kernel = np.ones(3) / 3.0
            times = np.convolve(times, kernel, mode="valid")
        diffs = np.diff(times)
        signs = np.sign(diffs[np.abs(diffs) > 1e-9 * times.max()])
        if len(signs) == 0:
            return True
        flips = int(np.sum(np.diff(signs) != 0))
        return flips <= 1


def knob_sensitivity(
    plan: PhysicalPlan,
    knob: str,
    space: Optional[ConfigSpace] = None,
    n_points: int = 25,
    seed: int = 0,
) -> KnobSensitivity:
    """Sweep one knob (others at defaults) on the noiseless simulator."""
    space = space or query_level_space()
    if knob not in space:
        raise KeyError(f"unknown knob {knob!r}")
    parameter = space[knob]
    simulator = SparkSimulator(noise=no_noise(), seed=seed)
    internal = np.linspace(parameter.internal_low, parameter.internal_high, n_points)
    grid = np.array([parameter.to_natural(v) for v in internal])
    base = space.default_dict()
    times = simulator.true_time_batch(
        plan, [{**base, knob: float(value)} for value in grid]
    )
    return KnobSensitivity(plan_name=plan.name, knob=knob, grid=grid, times=times)
