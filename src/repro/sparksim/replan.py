"""AQE-style mid-query re-planning over stage overrides.

Spark's adaptive query execution re-optimizes the not-yet-started stages of
a running query from the *observed* sizes of completed exchanges.  The
simulator analogue walks a plan's exchanges in execution order, emits a
:class:`~repro.sparksim.events.StageRuntimeEvent` per materialized exchange
(planner estimate vs observed bytes), and lets a :class:`ReplanPolicy`
swap the downstream stage's :class:`~repro.sparksim.overlay.StageOverride`
before that stage runs.  Overrides freeze once their stage has started —
re-planning only ever touches the future, never the past.

Determinism contract (pinned by the ``stages`` tier): policies are pure
functions of the event, so the same observed sizes always produce the same
overlay and the same event stream — replaying a recorded actuals map
reproduces the run bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .. import telemetry
from .events import StageRuntimeEvent
from .executor import QueryRunResult, SparkSimulator
from .overlay import StageConfigOverlay, StageOverride
from .plan import PhysicalPlan

__all__ = [
    "ReplanPolicy",
    "TargetBytesPerPartition",
    "ReplanResult",
    "run_with_replan",
]


class ReplanPolicy:
    """Decides a stage's override from its exchange's observed runtime size.

    Subclasses implement :meth:`override_for` as a **pure function** of the
    event (and the stage's current override): no RNG, no mutable state —
    that is what makes re-planned runs replayable from recorded events.
    Returning ``None`` keeps the current override.
    """

    def override_for(
        self, event: StageRuntimeEvent, current: Optional[StageOverride]
    ) -> Optional[StageOverride]:
        raise NotImplementedError


@dataclass(frozen=True)
class TargetBytesPerPartition(ReplanPolicy):
    """Spark AQE's coalescing rule: size partitions to a target byte count.

    ``partitions = clip(ceil(observed_bytes / target_bytes), min, max)`` —
    undersized exchanges coalesce to fewer, larger partitions (less
    scheduling and straggler overhead), oversized exchanges split further
    (less spill).
    """

    target_bytes: float = 64.0 * 1024 * 1024
    min_partitions: int = 1
    max_partitions: int = 4000

    def __post_init__(self) -> None:
        if self.target_bytes <= 0:
            raise ValueError("target_bytes must be > 0")
        if not 1 <= self.min_partitions <= self.max_partitions:
            raise ValueError("need 1 <= min_partitions <= max_partitions")

    def override_for(
        self, event: StageRuntimeEvent, current: Optional[StageOverride]
    ) -> Optional[StageOverride]:
        want = -(-int(event.observed_bytes) // int(self.target_bytes))  # ceil
        partitions = min(max(want, self.min_partitions), self.max_partitions)
        if current is not None and current.shuffle_partitions == partitions:
            return None
        base = current or StageOverride()
        return StageOverride(
            shuffle_partitions=partitions,
            max_partition_bytes=base.max_partition_bytes,
            memory_fraction=base.memory_fraction,
            task_parallelism=base.task_parallelism,
        )


@dataclass
class ReplanResult:
    """Outcome of one re-planned execution."""

    result: QueryRunResult
    overlay: StageConfigOverlay
    events: List[StageRuntimeEvent] = field(default_factory=list)
    replans: int = 0


def run_with_replan(
    simulator: SparkSimulator,
    plan: PhysicalPlan,
    config: Mapping[str, float],
    policy: ReplanPolicy,
    *,
    data_scale: float = 1.0,
    actuals: Optional[Mapping[int, float]] = None,
    initial_overlay: Optional[StageConfigOverlay] = None,
    app_id: str = "app",
    iteration: int = 0,
) -> ReplanResult:
    """Execute ``plan`` once with mid-query re-planning.

    Walks the exchanges in execution order; each one's observed size is its
    planner estimate times ``actuals.get(op_id, 1.0)`` (the cardinality
    misestimation factor a real run would reveal — skew, bad statistics).
    The policy may then re-plan *that* exchange's shuffle before it runs.
    The accumulated overlay drives the final simulated execution, so the
    noise stream advances exactly once, like a plain ``run``.
    """
    overlay = initial_overlay or StageConfigOverlay()
    actuals = dict(actuals or {})
    signature = plan.signature()
    events: List[StageRuntimeEvent] = []
    replans = 0
    for op in plan.exchange_ops():
        estimated = op.est_rows_in * op.row_bytes * data_scale
        factor = float(actuals.get(op.op_id, 1.0))
        event = StageRuntimeEvent(
            app_id=app_id,
            query_signature=signature,
            op_id=op.op_id,
            op_type=op.op_type,
            estimated_bytes=estimated,
            observed_bytes=estimated * factor,
            observed_rows=op.est_rows_in * data_scale * factor,
            iteration=iteration,
        )
        events.append(event)
        override = policy.override_for(event, overlay.get(op.op_id))
        if override is not None:
            overlay = overlay.with_override(op.op_id, override)
            replans += 1
    if replans:
        telemetry.counter("sparksim.replans").inc(replans)
    result = simulator.run(plan, config, data_scale=data_scale, overlay=overlay)
    return ReplanResult(result=result, overlay=overlay, events=events, replans=replans)
