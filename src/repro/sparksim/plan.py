"""Physical execution plans: operator DAGs with cardinality estimates.

Plans carry the information the workload embedder (Sec. 4.1) and the cost
model consume: operator types, estimated input/output row counts, and the
DAG structure.  A stable *query signature* hashes the plan shape — the paper
fine-tunes per "query signature [30] (each corresponds to a distinct query
execution plan)".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import networkx as nx

__all__ = ["OpType", "Operator", "PhysicalPlan", "OP_TYPES"]


class OpType:
    """Physical operator vocabulary (a subset of Spark's)."""

    TABLE_SCAN = "TableScan"
    FILTER = "Filter"
    PROJECT = "Project"
    HASH_AGGREGATE = "HashAggregate"
    JOIN = "Join"               # strategy resolved at runtime vs broadcast threshold
    EXCHANGE = "Exchange"       # shuffle boundary
    SORT = "Sort"
    WINDOW = "Window"
    UNION = "Union"
    LIMIT = "Limit"


OP_TYPES: Tuple[str, ...] = (
    OpType.TABLE_SCAN,
    OpType.FILTER,
    OpType.PROJECT,
    OpType.HASH_AGGREGATE,
    OpType.JOIN,
    OpType.EXCHANGE,
    OpType.SORT,
    OpType.WINDOW,
    OpType.UNION,
    OpType.LIMIT,
)


@dataclass(frozen=True)
class Operator:
    """One node of a physical plan.

    Attributes:
        op_id: Unique id within the plan.
        op_type: One of :data:`OP_TYPES`.
        est_rows_in: Optimizer-estimated total input rows (sum over children;
            for scans, the table row count).
        est_rows_out: Optimizer-estimated output rows.
        row_bytes: Average row width in bytes.
        children: Ids of child operators (inputs).
    """

    op_id: int
    op_type: str
    est_rows_in: float
    est_rows_out: float
    row_bytes: float = 100.0
    children: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op_type not in OP_TYPES:
            raise ValueError(f"unknown operator type {self.op_type!r}")
        if self.est_rows_in < 0 or self.est_rows_out < 0:
            raise ValueError("row estimates must be >= 0")
        if self.row_bytes <= 0:
            raise ValueError("row_bytes must be > 0")

    @property
    def bytes_in(self) -> float:
        return self.est_rows_in * self.row_bytes

    @property
    def bytes_out(self) -> float:
        return self.est_rows_out * self.row_bytes


class PhysicalPlan:
    """A single-rooted operator DAG."""

    def __init__(self, operators: Sequence[Operator], name: str = "query"):
        if not operators:
            raise ValueError("a plan needs at least one operator")
        self.name = name
        self._ops: Dict[int, Operator] = {}
        graph = nx.DiGraph()
        for op in operators:
            if op.op_id in self._ops:
                raise ValueError(f"duplicate operator id {op.op_id}")
            self._ops[op.op_id] = op
            graph.add_node(op.op_id)
        for op in operators:
            for child in op.children:
                if child not in self._ops:
                    raise ValueError(f"operator {op.op_id} references unknown child {child}")
                graph.add_edge(child, op.op_id)  # data flows child -> parent
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("plan contains a cycle")
        roots = [n for n in graph.nodes if graph.out_degree(n) == 0]
        if len(roots) != 1:
            raise ValueError(f"plan must have exactly one root, found {len(roots)}")
        self._graph = graph
        self._root_id = roots[0]
        # Plans are immutable once constructed, so the topological order and
        # signature are computed lazily and cached (both sit on hot paths of
        # the batch-evaluation pipeline).
        self._topo_ids: List[int] = []
        self._signature = ""
        self._leaf_ids: List[int] = [
            n for n in graph.nodes if graph.in_degree(n) == 0
        ]
        self._total_leaf_cardinality = float(
            sum(self._ops[n].est_rows_in for n in self._leaf_ids)
        )
        self._total_input_bytes = float(
            sum(self._ops[n].bytes_in for n in self._leaf_ids)
        )

    # -- accessors --------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    @property
    def root(self) -> Operator:
        return self._ops[self._root_id]

    @property
    def operators(self) -> List[Operator]:
        """Operators in topological (execution) order."""
        if not self._topo_ids:
            self._topo_ids = list(nx.topological_sort(self._graph))
        return [self._ops[i] for i in self._topo_ids]

    @property
    def leaves(self) -> List[Operator]:
        return [self._ops[n] for n in self._leaf_ids]

    def exchange_ops(self) -> List[Operator]:
        """The shuffle boundaries, in topological (execution) order.

        Covers explicit ``Exchange`` nodes *and* the operators whose cost
        embeds a shuffle (joins resolve to sort-merge past the broadcast
        threshold; aggregates, sorts and windows always repartition).
        These are the stage cut points: per-exchange overrides
        (``repro.sparksim.overlay``) and the AQE-style re-plan hook
        (``repro.sparksim.replan``) key on their ``op_id``.
        """
        boundaries = (
            OpType.EXCHANGE,
            OpType.JOIN,
            OpType.HASH_AGGREGATE,
            OpType.SORT,
            OpType.WINDOW,
        )
        return [op for op in self.operators if op.op_type in boundaries]

    def operator(self, op_id: int) -> Operator:
        return self._ops[op_id]

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.operators)

    # -- embedding ingredients (Sec. 4.1) ----------------------------------------

    @property
    def root_cardinality(self) -> float:
        """Estimated cardinality of the root node operator."""
        return self.root.est_rows_out

    @property
    def total_leaf_cardinality(self) -> float:
        """Total input cardinality of all leaf node operators."""
        return self._total_leaf_cardinality

    @property
    def total_input_bytes(self) -> float:
        return self._total_input_bytes

    def operator_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for op in self._ops.values():
            counts[op.op_type] = counts.get(op.op_type, 0) + 1
        return counts

    # -- identity -----------------------------------------------------------------

    def signature(self) -> str:
        """Stable hash of the plan identity.

        Covers the topology, operator types, row widths, and per-operator
        selectivity *ratios* — all invariant under uniform input scaling —
        so two runs of the same recurrent query with different input sizes
        share a signature (which is what groups observations for per-query
        tuning), while different queries with the same shape do not collide.
        """
        if self._signature:
            return self._signature
        shape = [
            (
                op.op_id,
                op.op_type,
                tuple(sorted(op.children)),
                round(op.row_bytes, 3),
                round(op.est_rows_out / op.est_rows_in, 9) if op.est_rows_in > 0 else 1.0,
            )
            for op in sorted(self._ops.values(), key=lambda o: o.op_id)
        ]
        digest = hashlib.sha256(json.dumps(shape).encode()).hexdigest()
        self._signature = digest[:16]
        return self._signature

    def scaled(self, factor: float) -> "PhysicalPlan":
        """Return a copy with all cardinalities multiplied by ``factor``.

        Models the same recurrent query running over a grown/shrunk input.
        """
        if factor <= 0:
            raise ValueError("scale factor must be > 0")
        ops = [
            Operator(
                op_id=op.op_id,
                op_type=op.op_type,
                est_rows_in=op.est_rows_in * factor,
                est_rows_out=op.est_rows_out * factor,
                row_bytes=op.row_bytes,
                children=op.children,
            )
            for op in self._ops.values()
        ]
        return PhysicalPlan(ops, name=self.name)
