"""Cluster, pool and executor-layout model.

The flighting pipeline runs benchmarks "with varying Spark cluster sizes"
selected by a *pool ID linked to node configurations* (Sec. 4.2); this module
provides those pools and derives the effective executor layout from app-level
knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = ["NodeType", "Pool", "ExecutorLayout", "STANDARD_POOLS", "default_pool"]

GIB = 1024.0 ** 3


@dataclass(frozen=True)
class NodeType:
    """A VM flavor backing a Spark pool."""

    name: str
    cores: int
    memory_gb: float
    disk_throughput_mb_s: float = 400.0
    network_throughput_mb_s: float = 1000.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_gb <= 0:
            raise ValueError(f"invalid node type {self.name!r}")


@dataclass(frozen=True)
class Pool:
    """A named pool of identical nodes (Fabric 'Spark pool')."""

    pool_id: str
    node_type: NodeType
    max_nodes: int = 16

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")

    @property
    def max_cores(self) -> int:
        return self.node_type.cores * self.max_nodes

    @property
    def max_memory_gb(self) -> float:
        return self.node_type.memory_gb * self.max_nodes


@dataclass(frozen=True)
class ExecutorLayout:
    """The effective parallel layout an application runs with."""

    executors: int
    cores_per_executor: int
    memory_gb_per_executor: float
    offheap_gb_per_executor: float = 0.0

    @property
    def total_cores(self) -> int:
        return self.executors * self.cores_per_executor

    @property
    def memory_gb_per_core(self) -> float:
        usable = self.memory_gb_per_executor + self.offheap_gb_per_executor
        return usable / self.cores_per_executor

    @classmethod
    def from_config(
        cls, config: Mapping[str, float], pool: Optional[Pool] = None
    ) -> "ExecutorLayout":
        """Derive the layout from app-level knobs, capped by the pool.

        Missing knobs fall back to Fabric-like defaults (4 executors,
        4 cores, 8 GB each, off-heap disabled).
        """
        pool = pool or default_pool()
        executors = int(config.get("spark.executor.instances", 4))
        cores = int(config.get("spark.executor.cores", 4))
        memory = float(config.get("spark.executor.memory", 8))
        offheap_on = float(config.get("spark.memory.offHeap.enabled", 0)) >= 0.5
        offheap = float(config.get("spark.memory.offHeap.size", 0)) if offheap_on else 0.0

        # Cap by pool capacity: executors cannot exceed what nodes can host.
        per_node = max(1, min(pool.node_type.cores // max(cores, 1), 8))
        executors = max(1, min(executors, per_node * pool.max_nodes))
        cores = max(1, min(cores, pool.node_type.cores))
        memory = max(1.0, min(memory, pool.node_type.memory_gb))
        return cls(
            executors=executors,
            cores_per_executor=cores,
            memory_gb_per_executor=memory,
            offheap_gb_per_executor=max(0.0, offheap),
        )


_MEDIUM = NodeType(name="Medium", cores=8, memory_gb=64.0)
_LARGE = NodeType(name="Large", cores=16, memory_gb=128.0)
_XLARGE = NodeType(
    name="XLarge", cores=32, memory_gb=256.0, disk_throughput_mb_s=800.0,
    network_throughput_mb_s=2000.0,
)

STANDARD_POOLS: Dict[str, Pool] = {
    "pool-medium": Pool(pool_id="pool-medium", node_type=_MEDIUM, max_nodes=8),
    "pool-large": Pool(pool_id="pool-large", node_type=_LARGE, max_nodes=16),
    "pool-xlarge": Pool(pool_id="pool-xlarge", node_type=_XLARGE, max_nodes=32),
}


def default_pool() -> Pool:
    return STANDARD_POOLS["pool-large"]
