"""Analytic operator cost model.

This stands in for real Spark cluster executions.  It maps
``(physical plan, configuration, executor layout)`` to an execution time
whose *shape* over each knob matches the behaviors the paper's knobs are
known for (and that Fig. 1 shows):

* ``spark.sql.files.maxPartitionBytes`` — small values create many tiny scan
  tasks (scheduling overhead dominates); large values under-utilize cores.
* ``spark.sql.shuffle.partitions`` — few partitions concentrate data (skew
  stragglers + memory spills); many partitions pay per-task overhead.
* ``spark.sql.autoBroadcastJoinThreshold`` — too low forces shuffle joins on
  small build sides; too high broadcasts large tables and causes memory
  pressure.

Each knob therefore has a convex response with a query-dependent optimum,
exactly the structure the Centroid Learning algorithm assumes locally.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from .batch import ConfigColumns, LayoutArrays, plan_arrays, resolve_layouts
from .cluster import ExecutorLayout, GIB, Pool
from .overlay import StageConfigOverlay, StageOverride
from .plan import Operator, OpType, PhysicalPlan

__all__ = ["CostParameters", "CostBreakdown", "BatchCostBreakdown", "CostModel"]


@dataclass(frozen=True)
class CostParameters:
    """Physical constants of the simulated cluster software stack."""

    scan_throughput_mb_s: float = 250.0       # per core, columnar scan
    shuffle_throughput_mb_s: float = 80.0     # per core, write+read combined
    network_throughput_mb_s: float = 900.0    # broadcast distribution
    cpu_rows_per_s: float = 4.0e6             # per core, narrow transforms
    task_overhead_s: float = 0.03             # JVM task launch + commit
    scheduling_overhead_s: float = 0.0005     # driver-side, per task
    skew_coefficient: float = 0.3             # straggler severity at P=reference
    skew_reference_partitions: float = 200.0
    spill_coefficient: float = 1.6            # slowdown per x of memory overflow
    executor_memory_fraction: float = 0.6     # usable fraction of heap
    broadcast_memory_fraction: float = 0.3    # safe broadcast share of memory
    offheap_shuffle_discount: float = 0.85    # off-heap reduces GC-bound shuffles
    fixed_query_overhead_s: float = 1.0       # planning + session setup


# Categorical-knob effects (see repro.core.categorical for the tuning side).
# Compression trades CPU for shuffle I/O: zstd compresses harder (faster
# effective shuffle for large exchanges, slight CPU tax), snappy is cheap but
# lighter than lz4's balance.
_CODEC_SHUFFLE_FACTOR = {"lz4": 1.0, "snappy": 0.94, "zstd": 1.18}
_CODEC_CPU_TAX = {"lz4": 1.0, "snappy": 0.98, "zstd": 1.06}
# Kryo serializes rows ~25% faster than Java serialization.
_SERIALIZER_CPU_FACTOR = {"java": 1.0, "kryo": 1.25}


def _elementwise_log2(values: np.ndarray) -> np.ndarray:
    """``math.log2`` applied per element.

    ``np.log2`` and ``math.log2`` disagree in the last ulp on a small
    fraction of inputs, which would break the kernel's bitwise contract for
    per-config data scales; plans have few ``n·log2(n)`` operators, so the
    Python-level loop stays cheap relative to the batch.
    """
    return np.fromiter(
        (math.log2(v) for v in values), dtype=float, count=len(values)
    )


@dataclass
class CostBreakdown:
    """Estimated cost of one query execution (noiseless)."""

    total_seconds: float
    per_operator: Dict[int, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class BatchCostBreakdown:
    """Vectorized cost breakdown: one plan evaluated under N configurations.

    ``metric_values[key][i]`` holds config *i*'s accumulated value for
    ``key``; ``metric_masks[key][i]`` says whether the scalar path would
    have emitted that key at all for config *i* (the broadcast/sort-merge
    branch changes which join metrics exist row by row).
    """

    total_seconds: np.ndarray                 # (N,)
    per_operator: Dict[int, np.ndarray]       # op_id -> (N,), topological order
    metric_values: Dict[str, np.ndarray]      # key -> (N,)
    metric_masks: Dict[str, np.ndarray]       # key -> (N,) bool
    input_bytes: float
    input_rows: float

    @property
    def n(self) -> int:
        return int(self.total_seconds.shape[0])

    def breakdown_at(self, i: int) -> CostBreakdown:
        """Config *i*'s result as the scalar :class:`CostBreakdown` shape."""
        metrics: Dict[str, float] = {}
        for key, values in self.metric_values.items():
            if self.metric_masks[key][i]:
                metrics[key] = float(values[i])
        metrics["input_bytes"] = self.input_bytes
        metrics["input_rows"] = self.input_rows
        return CostBreakdown(
            total_seconds=float(self.total_seconds[i]),
            per_operator={op: float(costs[i]) for op, costs in self.per_operator.items()},
            metrics=metrics,
        )


class CostModel:
    """Maps (plan, config, layout) to a deterministic execution time."""

    def __init__(self, params: Optional[CostParameters] = None):
        self.params = params or CostParameters()

    # -- primitive cost kernels ---------------------------------------------------

    def _wave_time(self, n_tasks: float, per_task_s: float, total_cores: int) -> float:
        """Tasks execute in waves of ``total_cores``; time = waves × task time."""
        waves = math.ceil(max(n_tasks, 1.0) / max(total_cores, 1))
        return waves * per_task_s

    def _scan_cost(
        self, op: Operator, config: Mapping[str, float], layout: ExecutorLayout,
        override: Optional[StageOverride] = None,
    ) -> Tuple[float, Dict[str, float]]:
        bytes_total = op.bytes_in
        if override is not None and override.max_partition_bytes is not None:
            max_part = float(override.max_partition_bytes)
        else:
            max_part = float(config.get("spark.sql.files.maxPartitionBytes", 128 * 1024 * 1024))
        cores = layout.total_cores
        if override is not None and override.task_parallelism is not None:
            cores = min(cores, max(int(override.task_parallelism), 1))
        n_parts = max(1.0, math.ceil(bytes_total / max(max_part, 1.0)))
        per_task_bytes = bytes_total / n_parts
        per_task_s = (
            per_task_bytes / (self.params.scan_throughput_mb_s * 1e6)
            + self.params.task_overhead_s
        )
        time = self._wave_time(n_parts, per_task_s, cores)
        time += n_parts * self.params.scheduling_overhead_s
        return time, {"scan_tasks": n_parts, "scan_bytes": bytes_total}

    def _shuffle_cost(
        self, rows: float, row_bytes: float, config: Mapping[str, float],
        layout: ExecutorLayout, override: Optional[StageOverride] = None,
    ) -> Tuple[float, Dict[str, float]]:
        data_bytes = rows * row_bytes
        if override is not None and override.shuffle_partitions is not None:
            partitions = max(1.0, float(override.shuffle_partitions))
        else:
            partitions = max(1.0, float(config.get("spark.sql.shuffle.partitions", 200)))
        throughput = self.params.shuffle_throughput_mb_s * 1e6
        if layout.offheap_gb_per_executor > 0:
            throughput /= self.params.offheap_shuffle_discount  # faster with off-heap
        codec = str(config.get("spark.io.compression.codec", "lz4"))
        throughput *= _CODEC_SHUFFLE_FACTOR.get(codec, 1.0)
        throughput /= _CODEC_CPU_TAX.get(codec, 1.0)

        cores = layout.total_cores
        if override is not None and override.task_parallelism is not None:
            cores = min(cores, max(int(override.task_parallelism), 1))

        # Map side: write all data once, fully parallel.
        write_s = data_bytes / (throughput * cores)

        # Reduce side: the slowest task governs each wave.  Skewed keys make
        # the hottest partition larger; more partitions dilute the skew.
        per_task_bytes = data_bytes / partitions
        straggler = 1.0 + self.params.skew_coefficient * math.sqrt(
            self.params.skew_reference_partitions / partitions
        )
        hot_task_bytes = per_task_bytes * straggler

        # Memory spill: reducers that exceed their memory share hit disk.
        fraction = self.params.executor_memory_fraction
        if override is not None and override.memory_fraction is not None:
            fraction = float(override.memory_fraction)
        mem_budget = layout.memory_gb_per_core * GIB * fraction
        spill = 0.0
        if hot_task_bytes > mem_budget:
            overflow = hot_task_bytes / mem_budget - 1.0
            spill = min(self.params.spill_coefficient * overflow, 8.0)
        per_task_s = (hot_task_bytes / throughput) * (1.0 + spill) + self.params.task_overhead_s
        read_s = self._wave_time(partitions, per_task_s, cores)
        sched_s = partitions * self.params.scheduling_overhead_s
        total = write_s + read_s + sched_s
        return total, {
            "shuffle_bytes": data_bytes,
            "shuffle_partitions": partitions,
            "spilled": 1.0 if spill > 0 else 0.0,
        }

    def _cpu_cost(
        self, rows: float, layout: ExecutorLayout, factor: float = 1.0,
        config: Optional[Mapping[str, float]] = None,
    ) -> float:
        rate = self.params.cpu_rows_per_s
        if config is not None:
            serializer = str(config.get("spark.serializer", "java"))
            rate *= _SERIALIZER_CPU_FACTOR.get(serializer, 1.0)
        return factor * rows / (rate * max(layout.total_cores, 1))

    def _join_cost(
        self, op: Operator, plan: PhysicalPlan, config: Mapping[str, float],
        layout: ExecutorLayout, override: Optional[StageOverride] = None,
    ) -> Tuple[float, Dict[str, float]]:
        children = [plan.operator(c) for c in op.children]
        if len(children) >= 2:
            sides = sorted(children, key=lambda c: c.bytes_out)
            build, probe = sides[0], sides[-1]
            build_bytes, probe_rows = build.bytes_out, probe.est_rows_out
        else:
            # Self-join / degenerate single-input join: split the input.
            build_bytes = op.bytes_in * 0.2
            probe_rows = op.est_rows_in * 0.8

        threshold = float(
            config.get("spark.sql.autoBroadcastJoinThreshold", 10 * 1024 * 1024)
        )
        metrics: Dict[str, float] = {}
        if build_bytes <= threshold:
            # Broadcast hash join: ship the build side to every executor.
            broadcast_s = (
                build_bytes * layout.executors
                / (self.params.network_throughput_mb_s * 1e6)
            )
            hash_build_s = self._cpu_cost(build_bytes / max(op.row_bytes, 1.0), layout, 2.0, config)
            probe_s = self._cpu_cost(probe_rows, layout, 1.5, config)
            time = broadcast_s + hash_build_s + probe_s
            # Memory pressure when a large build side is broadcast anyway.
            mem_budget = (
                layout.memory_gb_per_executor * GIB
                * self.params.broadcast_memory_fraction
            )
            if build_bytes > mem_budget:
                pressure = build_bytes / mem_budget
                time *= 1.0 + min(pressure * pressure, 25.0)
                metrics["broadcast_memory_pressure"] = pressure
            metrics["broadcast_joins"] = 1.0
        else:
            # Sort-merge join: shuffle both sides on the join key, then merge.
            # Stage overrides scope to the shuffle terms; the broadcast
            # branch above has no per-stage knob in the catalog this models.
            shuffle_s, shuffle_m = self._shuffle_cost(
                op.est_rows_in, op.row_bytes, config, layout, override
            )
            n = max(op.est_rows_in, 2.0)
            sort_s = self._cpu_cost(n * math.log2(n) / 20.0, layout, 1.0, config)
            merge_s = self._cpu_cost(op.est_rows_in, layout, 1.2, config)
            time = shuffle_s + sort_s + merge_s
            metrics.update(shuffle_m)
            metrics["sort_merge_joins"] = 1.0
        return time, metrics

    # -- plan-level estimate ---------------------------------------------------------

    def estimate(
        self,
        plan: PhysicalPlan,
        config: Mapping[str, float],
        layout: Optional[ExecutorLayout] = None,
        overlay: Optional[StageConfigOverlay] = None,
    ) -> CostBreakdown:
        """Noiseless execution-time estimate for ``plan`` under ``config``.

        Thin wrapper over :meth:`estimate_batch` on a 1-row batch; results
        are bit-identical to :meth:`estimate_scalar`, the legacy
        per-operator loop kept as the golden reference.  ``overlay``
        applies per-stage knob overrides (see ``repro.sparksim.overlay``).
        """
        batch = self.estimate_batch(
            plan, [config], layout=layout, overlay=overlay, breakdown=True
        )
        return batch.breakdown_at(0)

    def estimate_scalar(
        self,
        plan: PhysicalPlan,
        config: Mapping[str, float],
        layout: Optional[ExecutorLayout] = None,
        overlay: Optional[StageConfigOverlay] = None,
    ) -> CostBreakdown:
        """Reference implementation: the original scalar per-operator loop.

        Kept verbatim as the golden baseline the vectorized kernel is pinned
        against (tests/sparksim/test_batch.py) and as the bench's scalar
        comparator; production callers go through :meth:`estimate` /
        :meth:`estimate_batch`.
        """
        layout = layout or ExecutorLayout.from_config(config)
        per_op: Dict[int, float] = {}
        metrics: Dict[str, float] = {"tasks": 0.0}
        for op in plan.operators:
            ov = overlay.get(op.op_id) if overlay is not None else None
            if op.op_type == OpType.TABLE_SCAN:
                cost, m = self._scan_cost(op, config, layout, ov)
                metrics["tasks"] += m.get("scan_tasks", 0.0)
            elif op.op_type == OpType.EXCHANGE:
                cost, m = self._shuffle_cost(op.est_rows_in, op.row_bytes, config, layout, ov)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            elif op.op_type == OpType.JOIN:
                cost, m = self._join_cost(op, plan, config, layout, ov)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            elif op.op_type == OpType.HASH_AGGREGATE:
                shuffle_s, m = self._shuffle_cost(
                    op.est_rows_in * 0.5, op.row_bytes, config, layout, ov
                )
                cost = shuffle_s + self._cpu_cost(op.est_rows_in, layout, 1.3, config)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            elif op.op_type in (OpType.SORT, OpType.WINDOW):
                shuffle_s, m = self._shuffle_cost(op.est_rows_in, op.row_bytes, config, layout, ov)
                n = max(op.est_rows_in, 2.0)
                factor = 1.5 if op.op_type == OpType.WINDOW else 1.0
                cost = shuffle_s + self._cpu_cost(n * math.log2(n) / 25.0, layout, factor, config)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            else:  # Filter, Project, Union, Limit — narrow transforms
                cost = self._cpu_cost(op.est_rows_in, layout, 0.5, config)
                m = {}
            per_op[op.op_id] = cost
            for key, value in m.items():
                if key not in ("scan_tasks", "shuffle_partitions"):
                    metrics[key] = metrics.get(key, 0.0) + value

        total = sum(per_op.values()) + self.params.fixed_query_overhead_s
        metrics["input_bytes"] = plan.total_input_bytes
        metrics["input_rows"] = plan.total_leaf_cardinality
        return CostBreakdown(total_seconds=total, per_operator=per_op, metrics=metrics)

    # -- vectorized batch estimate ----------------------------------------------------

    def estimate_batch(
        self,
        plan: PhysicalPlan,
        configs: Union[Sequence[Mapping[str, float]], np.ndarray, ConfigColumns],
        layout: Optional[ExecutorLayout] = None,
        *,
        space=None,
        pool: Optional[Pool] = None,
        data_scale: float = 1.0,
        data_scales: Optional[np.ndarray] = None,
        overlay: Optional[StageConfigOverlay] = None,
        breakdown: bool = False,
    ) -> Union[np.ndarray, BatchCostBreakdown]:
        """Noiseless estimates for all N configurations at once.

        ``configs`` may be a sequence of config dicts, an ``(N, dim)`` array
        of internal vectors (then ``space`` is required), or a prebuilt
        :class:`ConfigColumns`.  Returns ``(N,)`` seconds, or the full
        :class:`BatchCostBreakdown` when ``breakdown=True``.  Every value is
        bit-identical to N calls of :meth:`estimate_scalar` — the kernel
        replays the scalar arithmetic operation-for-operation on arrays.

        ``data_scales`` gives every configuration its *own* input scale (an
        ``(N,)`` array): row counts scale per element in the exact
        multiplication order of ``plan.scaled(s)``, so element *i* is
        bit-identical to a scalar estimate on ``plan.scaled(data_scales[i])``.
        This is what lets the lock-step engine evaluate K sessions with
        heterogeneous data-size drift in one kernel pass.  Mutually
        exclusive with a non-unit ``data_scale`` and with ``breakdown``.

        ``overlay`` applies the same per-stage knob overrides to every row
        (see ``repro.sparksim.overlay``); results stay bit-identical to N
        calls of ``estimate_scalar(..., overlay=overlay)``.
        """
        started = time.perf_counter() if telemetry.enabled() else None
        cols = ConfigColumns.coerce(configs, space)
        if data_scales is not None:
            data_scales = np.asarray(data_scales, dtype=float)
            if data_scales.shape != (cols.n,):
                raise ValueError(
                    f"data_scales must have shape ({cols.n},), got {data_scales.shape}"
                )
            if np.any(data_scales <= 0):
                raise ValueError("data_scales must be > 0")
            if data_scale != 1.0:
                raise ValueError("pass data_scale or data_scales, not both")
            if breakdown:
                raise ValueError("breakdown is not supported with data_scales")
            if np.all(data_scales == 1.0):
                data_scales = None  # uniform unit scales: plain fast path
        arrays = plan_arrays(plan, data_scale)
        if layout is not None:
            layouts = LayoutArrays.from_layout(layout)
        else:
            layouts = resolve_layouts(cols, pool)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = self._batch_kernel(arrays, cols, layouts, breakdown,
                                        scales=data_scales, overlay=overlay)
        if started is not None:
            telemetry.counter("sparksim.batch_estimates").inc()
            telemetry.counter("sparksim.batch_configs").inc(cols.n)
            telemetry.histogram("sparksim.batch_kernel_seconds").observe(
                time.perf_counter() - started
            )
        return result if breakdown else result.total_seconds

    def _batch_kernel(
        self, arrays, cols: ConfigColumns, layouts: LayoutArrays,
        want_breakdown: bool, scales: Optional[np.ndarray] = None,
        overlay: Optional[StageConfigOverlay] = None,
    ) -> BatchCostBreakdown:
        """The vectorized analogue of :meth:`estimate_scalar`.

        Per-operator costs stay a short Python loop (plans have ~10 nodes);
        the N-config axis is pure NumPy.  Arithmetic mirrors the scalar
        kernels term for term — same association, same evaluation order —
        so results match bitwise, not just to tolerance.  When
        ``want_breakdown`` is false only ``total_seconds`` is populated —
        per-operator and metric accumulation (pure bookkeeping, no effect
        on totals) is skipped.

        With per-config ``scales`` (an ``(N,)`` array; ``arrays`` must then
        be compiled at scale 1.0) row counts become per-config arrays.  The
        ``n·log2(n)`` sort terms go through :func:`_elementwise_log2` —
        ``np.log2`` differs from ``math.log2`` in the last ulp on a few
        inputs, so the scalar ``math.log2`` is applied per element to keep
        the bitwise contract.
        """
        p = self.params
        n = cols.n
        cores = layouts.total_cores                       # already max(·, 1)
        executors = layouts.executors

        # Config columns (arrays, or plain floats when uniform across rows).
        max_part_col = cols.numeric(
            "spark.sql.files.maxPartitionBytes", 128 * 1024 * 1024
        )
        partitions_col = cols.numeric("spark.sql.shuffle.partitions", 200)
        threshold = cols.numeric(
            "spark.sql.autoBroadcastJoinThreshold", 10 * 1024 * 1024
        )
        codec_shuffle = cols.factor(
            "spark.io.compression.codec", "lz4", _CODEC_SHUFFLE_FACTOR
        )
        codec_tax = cols.factor("spark.io.compression.codec", "lz4", _CODEC_CPU_TAX)
        ser_factor = cols.factor("spark.serializer", "java", _SERIALIZER_CPU_FACTOR)

        # When every operand is a uniform scalar (N=1, or a batch that never
        # varies the relevant knobs) the math/builtin equivalents produce the
        # same IEEE values as the ufuncs without per-call dispatch overhead —
        # this keeps the 1-row estimate() wrapper close to the old scalar
        # loop's speed.  Selection only; the formulas below are shared.
        uniform = scales is None and not any(
            isinstance(c, np.ndarray)
            for c in (
                max_part_col, partitions_col, threshold, codec_shuffle,
                codec_tax, ser_factor, cores, executors,
                layouts.memory_gb_per_executor, layouts.memory_gb_per_core,
                layouts.offheap_positive,
            )
        )
        if uniform:
            ceil_, sqrt_ = math.ceil, math.sqrt
            maximum_, minimum_ = lambda a, b: max(a, b), lambda a, b: min(a, b)
            where_ = lambda c, a, b: a if c else b
        else:
            ceil_, sqrt_ = np.ceil, np.sqrt
            maximum_, minimum_, where_ = np.maximum, np.minimum, np.where

        max_part = maximum_(max_part_col, 1.0)
        partitions = maximum_(1.0, partitions_col)

        # Shuffle throughput, same op order as _shuffle_cost: base, optional
        # off-heap division, codec multiply, CPU-tax division.
        tp_base = p.shuffle_throughput_mb_s * 1e6
        throughput = (
            where_(layouts.offheap_positive, tp_base / p.offheap_shuffle_discount, tp_base)
            * codec_shuffle
            / codec_tax
        )
        cpu_rate_cores = (p.cpu_rows_per_s * ser_factor) * cores
        scan_denom = p.scan_throughput_mb_s * 1e6
        net_denom = p.network_throughput_mb_s * 1e6
        shuffle_mem_budget = layouts.memory_gb_per_core * GIB * p.executor_memory_fraction
        bc_mem_budget = (
            layouts.memory_gb_per_executor * GIB * p.broadcast_memory_fraction
        )
        shuffle_waves = ceil_(maximum_(partitions, 1.0) / cores)
        shuffle_sched = partitions * p.scheduling_overhead_s
        straggler = 1.0 + p.skew_coefficient * sqrt_(
            p.skew_reference_partitions / partitions
        )

        def shuffle(data_bytes, parts=partitions, strag=straggler,
                    waves=shuffle_waves, sched=shuffle_sched,
                    budget=shuffle_mem_budget, c=cores):
            """(read+write time, spill slowdown) for one exchange of data_bytes.

            Defaults are the app-level columns bound at definition time; a
            stage override passes its own terms via :func:`stage_terms`.
            """
            write_s = data_bytes / (throughput * c)
            hot = (data_bytes / parts) * strag
            overflow = hot / budget - 1.0
            spill = where_(
                hot > budget,
                minimum_(p.spill_coefficient * overflow, 8.0),
                0.0,
            )
            per_task_s = (hot / throughput) * (1.0 + spill) + p.task_overhead_s
            total = write_s + waves * per_task_s + sched
            return total, spill

        def stage_terms(ov):
            """Per-stage shuffle terms for one override, mirroring the
            scalar ``_shuffle_cost`` arithmetic order exactly."""
            if ov.task_parallelism is None:
                c = cores
            else:
                c = minimum_(cores, float(max(int(ov.task_parallelism), 1)))
            if ov.shuffle_partitions is None:
                parts = partitions
            else:
                parts = maximum_(1.0, float(ov.shuffle_partitions))
            strag = 1.0 + p.skew_coefficient * sqrt_(
                p.skew_reference_partitions / parts
            )
            waves = ceil_(maximum_(parts, 1.0) / c)
            sched = parts * p.scheduling_overhead_s
            if ov.memory_fraction is None:
                budget = shuffle_mem_budget
            else:
                budget = (
                    layouts.memory_gb_per_core * GIB * float(ov.memory_fraction)
                )
            return parts, strag, waves, sched, budget, c

        def cpu(rows, factor):
            return factor * rows / cpu_rate_cores

        per_op: Dict[int, np.ndarray] = {}
        metric_values: Dict[str, np.ndarray] = {}
        metric_masks: Dict[str, np.ndarray] = {}
        total = np.zeros(n)
        if want_breakdown:
            metric_values["tasks"] = np.zeros(n)
            metric_masks["tasks"] = np.ones(n, dtype=bool)

        def add_metric(key, value, mask=None):
            if not want_breakdown:
                return
            if key not in metric_values:
                metric_values[key] = np.zeros(n)
                metric_masks[key] = np.zeros(n, dtype=bool)
            if mask is None:
                metric_values[key] = metric_values[key] + value
                metric_masks[key] |= True
            else:
                metric_values[key] = metric_values[key] + np.where(mask, value, 0.0)
                metric_masks[key] |= mask

        def add_tasks(value):
            if want_breakdown:
                metric_values["tasks"] = metric_values["tasks"] + value

        for i in range(arrays.n_ops):
            op_type = arrays.op_types[i]
            # Stage override for this operator (None on every existing path).
            ov = overlay.get(arrays.op_ids[i]) if overlay is not None else None
            sh = () if ov is None else stage_terms(ov)
            op_parts = partitions if ov is None else sh[0]
            # Per-config scales multiply the *rows* first; bytes derive from
            # the scaled rows — the exact order of plan.scaled(s).
            rows_in = (
                arrays.rows_in[i] if scales is None else arrays.rows_in[i] * scales
            )
            row_bytes = arrays.row_bytes[i]
            if op_type == OpType.TABLE_SCAN:
                bytes_total = (
                    arrays.bytes_in[i] if scales is None else rows_in * row_bytes
                )
                if ov is None:
                    mp, c = max_part, cores
                else:
                    if ov.max_partition_bytes is None:
                        mp = max_part
                    else:
                        mp = maximum_(float(ov.max_partition_bytes), 1.0)
                    c = sh[5]
                n_parts = maximum_(1.0, ceil_(bytes_total / mp))
                per_task_s = (
                    (bytes_total / n_parts) / scan_denom + p.task_overhead_s
                )
                cost = ceil_(maximum_(n_parts, 1.0) / c) * per_task_s
                cost = cost + n_parts * p.scheduling_overhead_s
                add_tasks(n_parts)
                add_metric("scan_bytes", bytes_total)
            elif op_type == OpType.EXCHANGE:
                cost, spill = shuffle(rows_in * row_bytes, *sh)
                add_tasks(op_parts)
                add_metric("shuffle_bytes", rows_in * row_bytes)
                add_metric("spilled", where_(spill > 0, 1.0, 0.0))
            elif op_type == OpType.JOIN:
                if scales is None:
                    build_bytes = arrays.join_build_bytes[i]
                    probe_rows = arrays.join_probe_rows[i]
                elif arrays.join_degenerate[i]:
                    build_bytes = (rows_in * row_bytes) * 0.2
                    probe_rows = rows_in * 0.8
                else:
                    build_bytes = (
                        arrays.join_build_rows[i] * scales
                    ) * arrays.join_build_row_bytes[i]
                    probe_rows = arrays.join_probe_rows[i] * scales
                is_broadcast = build_bytes <= threshold
                # Broadcast hash join (computed for every config, selected
                # by mask — matches the scalar branch arithmetic exactly).
                t_bc = (
                    build_bytes * executors / net_denom
                    + cpu(build_bytes / max(row_bytes, 1.0), 2.0)
                    + cpu(probe_rows, 1.5)
                )
                pressure = build_bytes / bc_mem_budget
                pressured = build_bytes > bc_mem_budget
                t_bc = where_(
                    pressured,
                    t_bc * (1.0 + minimum_(pressure * pressure, 25.0)),
                    t_bc,
                )
                # Sort-merge join (stage overrides scope to its shuffle).
                shuffle_s, spill = shuffle(rows_in * row_bytes, *sh)
                if scales is None:
                    n_rows = max(rows_in, 2.0)
                    nlogn = n_rows * math.log2(n_rows)
                else:
                    n_rows = np.maximum(rows_in, 2.0)
                    nlogn = n_rows * _elementwise_log2(n_rows)
                t_smj = (
                    shuffle_s
                    + cpu(nlogn / 20.0, 1.0)
                    + cpu(rows_in, 1.2)
                )
                cost = where_(is_broadcast, t_bc, t_smj)
                if want_breakdown:
                    is_broadcast = np.broadcast_to(is_broadcast, (n,))
                    smj = ~is_broadcast
                    add_tasks(np.where(smj, op_parts, 0.0))
                    add_metric(
                        "broadcast_memory_pressure", pressure,
                        is_broadcast & pressured,
                    )
                    add_metric("broadcast_joins", 1.0, is_broadcast)
                    add_metric("shuffle_bytes", rows_in * row_bytes, smj)
                    add_metric("spilled", where_(spill > 0, 1.0, 0.0), smj)
                    add_metric("sort_merge_joins", 1.0, smj)
            elif op_type == OpType.HASH_AGGREGATE:
                shuffle_s, spill = shuffle((rows_in * 0.5) * row_bytes, *sh)
                cost = shuffle_s + cpu(rows_in, 1.3)
                add_tasks(op_parts)
                add_metric("shuffle_bytes", (rows_in * 0.5) * row_bytes)
                add_metric("spilled", where_(spill > 0, 1.0, 0.0))
            elif op_type in (OpType.SORT, OpType.WINDOW):
                shuffle_s, spill = shuffle(rows_in * row_bytes, *sh)
                if scales is None:
                    n_rows = max(rows_in, 2.0)
                    nlogn = n_rows * math.log2(n_rows)
                else:
                    n_rows = np.maximum(rows_in, 2.0)
                    nlogn = n_rows * _elementwise_log2(n_rows)
                factor = 1.5 if op_type == OpType.WINDOW else 1.0
                cost = shuffle_s + cpu(nlogn / 25.0, factor)
                add_tasks(op_parts)
                add_metric("shuffle_bytes", rows_in * row_bytes)
                add_metric("spilled", where_(spill > 0, 1.0, 0.0))
            else:  # Filter, Project, Union, Limit — narrow transforms
                cost = cpu(rows_in, 0.5)
            if want_breakdown:
                per_op[arrays.op_ids[i]] = np.broadcast_to(cost, (n,))
            total = total + cost

        total = total + p.fixed_query_overhead_s
        return BatchCostBreakdown(
            total_seconds=total,
            per_operator=per_op,
            metric_values=metric_values,
            metric_masks=metric_masks,
            input_bytes=arrays.total_input_bytes,
            input_rows=arrays.total_leaf_cardinality,
        )
