"""Analytic operator cost model.

This stands in for real Spark cluster executions.  It maps
``(physical plan, configuration, executor layout)`` to an execution time
whose *shape* over each knob matches the behaviors the paper's knobs are
known for (and that Fig. 1 shows):

* ``spark.sql.files.maxPartitionBytes`` — small values create many tiny scan
  tasks (scheduling overhead dominates); large values under-utilize cores.
* ``spark.sql.shuffle.partitions`` — few partitions concentrate data (skew
  stragglers + memory spills); many partitions pay per-task overhead.
* ``spark.sql.autoBroadcastJoinThreshold`` — too low forces shuffle joins on
  small build sides; too high broadcasts large tables and causes memory
  pressure.

Each knob therefore has a convex response with a query-dependent optimum,
exactly the structure the Centroid Learning algorithm assumes locally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .cluster import ExecutorLayout, GIB
from .plan import Operator, OpType, PhysicalPlan

__all__ = ["CostParameters", "CostBreakdown", "CostModel"]


@dataclass(frozen=True)
class CostParameters:
    """Physical constants of the simulated cluster software stack."""

    scan_throughput_mb_s: float = 250.0       # per core, columnar scan
    shuffle_throughput_mb_s: float = 80.0     # per core, write+read combined
    network_throughput_mb_s: float = 900.0    # broadcast distribution
    cpu_rows_per_s: float = 4.0e6             # per core, narrow transforms
    task_overhead_s: float = 0.03             # JVM task launch + commit
    scheduling_overhead_s: float = 0.0005     # driver-side, per task
    skew_coefficient: float = 0.3             # straggler severity at P=reference
    skew_reference_partitions: float = 200.0
    spill_coefficient: float = 1.6            # slowdown per x of memory overflow
    executor_memory_fraction: float = 0.6     # usable fraction of heap
    broadcast_memory_fraction: float = 0.3    # safe broadcast share of memory
    offheap_shuffle_discount: float = 0.85    # off-heap reduces GC-bound shuffles
    fixed_query_overhead_s: float = 1.0       # planning + session setup


# Categorical-knob effects (see repro.core.categorical for the tuning side).
# Compression trades CPU for shuffle I/O: zstd compresses harder (faster
# effective shuffle for large exchanges, slight CPU tax), snappy is cheap but
# lighter than lz4's balance.
_CODEC_SHUFFLE_FACTOR = {"lz4": 1.0, "snappy": 0.94, "zstd": 1.18}
_CODEC_CPU_TAX = {"lz4": 1.0, "snappy": 0.98, "zstd": 1.06}
# Kryo serializes rows ~25% faster than Java serialization.
_SERIALIZER_CPU_FACTOR = {"java": 1.0, "kryo": 1.25}


@dataclass
class CostBreakdown:
    """Estimated cost of one query execution (noiseless)."""

    total_seconds: float
    per_operator: Dict[int, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)


class CostModel:
    """Maps (plan, config, layout) to a deterministic execution time."""

    def __init__(self, params: Optional[CostParameters] = None):
        self.params = params or CostParameters()

    # -- primitive cost kernels ---------------------------------------------------

    def _wave_time(self, n_tasks: float, per_task_s: float, total_cores: int) -> float:
        """Tasks execute in waves of ``total_cores``; time = waves × task time."""
        waves = math.ceil(max(n_tasks, 1.0) / max(total_cores, 1))
        return waves * per_task_s

    def _scan_cost(
        self, op: Operator, config: Mapping[str, float], layout: ExecutorLayout
    ) -> Tuple[float, Dict[str, float]]:
        bytes_total = op.bytes_in
        max_part = float(config.get("spark.sql.files.maxPartitionBytes", 128 * 1024 * 1024))
        n_parts = max(1.0, math.ceil(bytes_total / max(max_part, 1.0)))
        per_task_bytes = bytes_total / n_parts
        per_task_s = (
            per_task_bytes / (self.params.scan_throughput_mb_s * 1e6)
            + self.params.task_overhead_s
        )
        time = self._wave_time(n_parts, per_task_s, layout.total_cores)
        time += n_parts * self.params.scheduling_overhead_s
        return time, {"scan_tasks": n_parts, "scan_bytes": bytes_total}

    def _shuffle_cost(
        self, rows: float, row_bytes: float, config: Mapping[str, float],
        layout: ExecutorLayout,
    ) -> Tuple[float, Dict[str, float]]:
        data_bytes = rows * row_bytes
        partitions = max(1.0, float(config.get("spark.sql.shuffle.partitions", 200)))
        throughput = self.params.shuffle_throughput_mb_s * 1e6
        if layout.offheap_gb_per_executor > 0:
            throughput /= self.params.offheap_shuffle_discount  # faster with off-heap
        codec = str(config.get("spark.io.compression.codec", "lz4"))
        throughput *= _CODEC_SHUFFLE_FACTOR.get(codec, 1.0)
        throughput /= _CODEC_CPU_TAX.get(codec, 1.0)

        # Map side: write all data once, fully parallel.
        write_s = data_bytes / (throughput * layout.total_cores)

        # Reduce side: the slowest task governs each wave.  Skewed keys make
        # the hottest partition larger; more partitions dilute the skew.
        per_task_bytes = data_bytes / partitions
        straggler = 1.0 + self.params.skew_coefficient * math.sqrt(
            self.params.skew_reference_partitions / partitions
        )
        hot_task_bytes = per_task_bytes * straggler

        # Memory spill: reducers that exceed their memory share hit disk.
        mem_budget = (
            layout.memory_gb_per_core * GIB * self.params.executor_memory_fraction
        )
        spill = 0.0
        if hot_task_bytes > mem_budget:
            overflow = hot_task_bytes / mem_budget - 1.0
            spill = min(self.params.spill_coefficient * overflow, 8.0)
        per_task_s = (hot_task_bytes / throughput) * (1.0 + spill) + self.params.task_overhead_s
        read_s = self._wave_time(partitions, per_task_s, layout.total_cores)
        sched_s = partitions * self.params.scheduling_overhead_s
        total = write_s + read_s + sched_s
        return total, {
            "shuffle_bytes": data_bytes,
            "shuffle_partitions": partitions,
            "spilled": 1.0 if spill > 0 else 0.0,
        }

    def _cpu_cost(
        self, rows: float, layout: ExecutorLayout, factor: float = 1.0,
        config: Optional[Mapping[str, float]] = None,
    ) -> float:
        rate = self.params.cpu_rows_per_s
        if config is not None:
            serializer = str(config.get("spark.serializer", "java"))
            rate *= _SERIALIZER_CPU_FACTOR.get(serializer, 1.0)
        return factor * rows / (rate * max(layout.total_cores, 1))

    def _join_cost(
        self, op: Operator, plan: PhysicalPlan, config: Mapping[str, float],
        layout: ExecutorLayout,
    ) -> Tuple[float, Dict[str, float]]:
        children = [plan.operator(c) for c in op.children]
        if len(children) >= 2:
            sides = sorted(children, key=lambda c: c.bytes_out)
            build, probe = sides[0], sides[-1]
            build_bytes, probe_rows = build.bytes_out, probe.est_rows_out
        else:
            # Self-join / degenerate single-input join: split the input.
            build_bytes = op.bytes_in * 0.2
            probe_rows = op.est_rows_in * 0.8

        threshold = float(
            config.get("spark.sql.autoBroadcastJoinThreshold", 10 * 1024 * 1024)
        )
        metrics: Dict[str, float] = {}
        if build_bytes <= threshold:
            # Broadcast hash join: ship the build side to every executor.
            broadcast_s = (
                build_bytes * layout.executors
                / (self.params.network_throughput_mb_s * 1e6)
            )
            hash_build_s = self._cpu_cost(build_bytes / max(op.row_bytes, 1.0), layout, 2.0, config)
            probe_s = self._cpu_cost(probe_rows, layout, 1.5, config)
            time = broadcast_s + hash_build_s + probe_s
            # Memory pressure when a large build side is broadcast anyway.
            mem_budget = (
                layout.memory_gb_per_executor * GIB
                * self.params.broadcast_memory_fraction
            )
            if build_bytes > mem_budget:
                pressure = build_bytes / mem_budget
                time *= 1.0 + min(pressure * pressure, 25.0)
                metrics["broadcast_memory_pressure"] = pressure
            metrics["broadcast_joins"] = 1.0
        else:
            # Sort-merge join: shuffle both sides on the join key, then merge.
            shuffle_s, shuffle_m = self._shuffle_cost(
                op.est_rows_in, op.row_bytes, config, layout
            )
            n = max(op.est_rows_in, 2.0)
            sort_s = self._cpu_cost(n * math.log2(n) / 20.0, layout, 1.0, config)
            merge_s = self._cpu_cost(op.est_rows_in, layout, 1.2, config)
            time = shuffle_s + sort_s + merge_s
            metrics.update(shuffle_m)
            metrics["sort_merge_joins"] = 1.0
        return time, metrics

    # -- plan-level estimate ---------------------------------------------------------

    def estimate(
        self,
        plan: PhysicalPlan,
        config: Mapping[str, float],
        layout: Optional[ExecutorLayout] = None,
    ) -> CostBreakdown:
        """Noiseless execution-time estimate for ``plan`` under ``config``."""
        layout = layout or ExecutorLayout.from_config(config)
        per_op: Dict[int, float] = {}
        metrics: Dict[str, float] = {"tasks": 0.0}
        for op in plan.operators:
            if op.op_type == OpType.TABLE_SCAN:
                cost, m = self._scan_cost(op, config, layout)
                metrics["tasks"] += m.get("scan_tasks", 0.0)
            elif op.op_type == OpType.EXCHANGE:
                cost, m = self._shuffle_cost(op.est_rows_in, op.row_bytes, config, layout)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            elif op.op_type == OpType.JOIN:
                cost, m = self._join_cost(op, plan, config, layout)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            elif op.op_type == OpType.HASH_AGGREGATE:
                shuffle_s, m = self._shuffle_cost(
                    op.est_rows_in * 0.5, op.row_bytes, config, layout
                )
                cost = shuffle_s + self._cpu_cost(op.est_rows_in, layout, 1.3, config)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            elif op.op_type in (OpType.SORT, OpType.WINDOW):
                shuffle_s, m = self._shuffle_cost(op.est_rows_in, op.row_bytes, config, layout)
                n = max(op.est_rows_in, 2.0)
                factor = 1.5 if op.op_type == OpType.WINDOW else 1.0
                cost = shuffle_s + self._cpu_cost(n * math.log2(n) / 25.0, layout, factor, config)
                metrics["tasks"] += m.get("shuffle_partitions", 0.0)
            else:  # Filter, Project, Union, Limit — narrow transforms
                cost = self._cpu_cost(op.est_rows_in, layout, 0.5, config)
                m = {}
            per_op[op.op_id] = cost
            for key, value in m.items():
                if key not in ("scan_tasks", "shuffle_partitions"):
                    metrics[key] = metrics.get(key, 0.0) + value

        total = sum(per_op.values()) + self.params.fixed_query_overhead_s
        metrics["input_bytes"] = plan.total_input_bytes
        metrics["input_rows"] = plan.total_leaf_cardinality
        return CostBreakdown(total_seconds=total, per_operator=per_op, metrics=metrics)
