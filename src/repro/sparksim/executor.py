"""The Spark simulator: runs plans under configurations with injected noise.

``SparkSimulator`` is the substrate replacing live Fabric clusters (see
DESIGN.md substitutions).  It composes the analytic :class:`CostModel` with
the paper's Eq.-8 :class:`NoiseModel` and produces event records like a real
cluster's listener would.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from .batch import ConfigColumns
from .cluster import ExecutorLayout, Pool, default_pool
from .cost_model import CostBreakdown, CostModel, CostParameters
from .events import QueryEndEvent
from .noise import NoiseModel, high_noise
from .plan import PhysicalPlan

__all__ = ["QueryRunResult", "SparkSimulator"]


@dataclass(frozen=True)
class QueryRunResult:
    """Outcome of one simulated query execution."""

    elapsed_seconds: float     # noisy, what production observes
    true_seconds: float        # noiseless, for optimality-gap analysis
    data_size: float           # input rows (the p_i of Algorithm 1)
    config: Dict[str, float]
    metrics: Dict[str, float] = field(default_factory=dict)
    plan_signature: str = ""


class SparkSimulator:
    """Executes physical plans under a configuration, with noise.

    Args:
        pool: the Spark pool (node flavor + size) to run on.
        noise: observational noise model; defaults to the paper's high-noise
            production regime.
        cost_params: physical constants of the cost model.
        seed: RNG seed — two simulators with the same seed replay identical
            noise sequences.
    """

    def __init__(
        self,
        pool: Optional[Pool] = None,
        noise: Optional[NoiseModel] = None,
        cost_params: Optional[CostParameters] = None,
        seed: Optional[int] = None,
    ):
        self.pool = pool or default_pool()
        self.noise = noise if noise is not None else high_noise()
        self.cost_model = CostModel(cost_params)
        self._rng = np.random.default_rng(seed)
        self.run_count = 0
        # plan -> {data_scale: scaled copy}; weak keys so retired plans and
        # their scaled copies are collectable.
        self._scaled_cache: "weakref.WeakKeyDictionary[PhysicalPlan, Dict[float, PhysicalPlan]]" = (
            weakref.WeakKeyDictionary()
        )

    def true_time(
        self, plan: PhysicalPlan, config: Mapping[str, float],
        data_scale: float = 1.0, overlay=None,
    ) -> float:
        """Noiseless execution time — the quantity tuning tries to minimize."""
        return self._estimate(plan, config, data_scale, overlay).total_seconds

    def true_time_batch(
        self,
        plan: PhysicalPlan,
        configs,
        *,
        space=None,
        data_scale: float = 1.0,
        data_scales: Optional[np.ndarray] = None,
        overlay=None,
    ) -> np.ndarray:
        """Noiseless execution times for N configurations at once.

        ``configs`` may be config dicts, an ``(N, dim)`` internal-vector
        array (then ``space`` is required), or a prebuilt
        :class:`~repro.sparksim.batch.ConfigColumns`.  Element *i* is
        bit-identical to ``true_time(plan, configs[i], data_scale)`` — or,
        with per-config ``data_scales`` (an ``(N,)`` array, the lock-step
        engine's path), to ``true_time(plan, configs[i], data_scales[i])``.
        ``overlay`` applies stage-scoped knob overrides to every row (see
        ``repro.sparksim.overlay``).
        """
        if data_scales is not None:
            if data_scale != 1.0:
                raise ValueError("pass data_scale or data_scales, not both")
            return self.cost_model.estimate_batch(
                plan, configs, space=space, pool=self.pool,
                data_scales=data_scales, overlay=overlay,
            )
        scaled = self._scaled_plan(plan, data_scale)
        return self.cost_model.estimate_batch(
            scaled, configs, space=space, pool=self.pool, overlay=overlay
        )

    def observe_true(self, true_seconds: float) -> float:
        """Turn one precomputed noiseless time into the observed time.

        Applies exactly the per-run tail of :meth:`run` — one
        :meth:`NoiseModel.apply` draw from this simulator's RNG stream plus
        the ``run_count`` bump — without re-estimating the cost.  A caller
        that computes true times in bulk (``true_time_batch``) and then
        feeds them through ``observe_true`` in run order sees a noise
        stream bit-identical to sequential :meth:`run` calls; the lock-step
        session engine relies on this to keep per-session observations
        reproducible.
        """
        observed = self.noise.apply(true_seconds, self._rng)
        self.run_count += 1
        return observed

    def _scaled_plan(self, plan: PhysicalPlan, data_scale: float) -> PhysicalPlan:
        """Memoized ``plan.scaled(data_scale)`` (identity-keyed, weak refs)."""
        if data_scale == 1.0:
            return plan
        per_scale = self._scaled_cache.get(plan)
        if per_scale is None:
            per_scale = {}
            self._scaled_cache[plan] = per_scale
        scaled = per_scale.get(data_scale)
        if scaled is None:
            scaled = plan.scaled(data_scale)
            per_scale[data_scale] = scaled
        return scaled

    def _estimate(
        self, plan: PhysicalPlan, config: Mapping[str, float], data_scale: float,
        overlay=None,
    ) -> CostBreakdown:
        scaled = self._scaled_plan(plan, data_scale)
        layout = ExecutorLayout.from_config(config, self.pool)
        return self.cost_model.estimate(scaled, config, layout, overlay)

    def run(
        self,
        plan: PhysicalPlan,
        config: Mapping[str, float],
        data_scale: float = 1.0,
        overlay=None,
    ) -> QueryRunResult:
        """Execute ``plan`` once and return the (noisy) observed result.

        ``overlay`` applies stage-scoped knob overrides (see
        ``repro.sparksim.overlay``); ``None`` is the whole-app path.
        """
        breakdown = self._estimate(plan, config, data_scale, overlay)
        observed = self.noise.apply(breakdown.total_seconds, self._rng)
        self.run_count += 1
        return QueryRunResult(
            elapsed_seconds=observed,
            true_seconds=breakdown.total_seconds,
            data_size=max(plan.total_leaf_cardinality * data_scale, 1.0),
            config=dict(config),
            metrics=dict(breakdown.metrics),
            plan_signature=plan.signature(),
        )

    def run_batch(
        self,
        plan: PhysicalPlan,
        configs,
        *,
        space=None,
        data_scale: float = 1.0,
        overlay=None,
    ) -> List[QueryRunResult]:
        """Execute ``plan`` under N configurations, one noise draw per config.

        Cost estimation is vectorized; noise is applied per result *in batch
        order from the simulator's single RNG stream*, so the returned
        ``elapsed_seconds`` sequence is bit-identical to N sequential
        :meth:`run` calls on an identically-seeded simulator (the property
        tests pin this).  ``run_count`` advances by N.
        """
        cols = ConfigColumns.coerce(configs, space)
        scaled = self._scaled_plan(plan, data_scale)
        batch = self.cost_model.estimate_batch(
            scaled, cols, pool=self.pool, overlay=overlay, breakdown=True
        )
        data_size = max(plan.total_leaf_cardinality * data_scale, 1.0)
        signature = plan.signature()
        results: List[QueryRunResult] = []
        for i in range(cols.n):
            true_seconds = float(batch.total_seconds[i])
            # NoiseModel.apply draws a variable number of RNG variates per
            # call, so a per-element loop (not apply_many) is what keeps the
            # noise stream aligned with sequential run() calls.
            observed = float(self.noise.apply(true_seconds, self._rng))
            self.run_count += 1
            results.append(
                QueryRunResult(
                    elapsed_seconds=observed,
                    true_seconds=true_seconds,
                    data_size=data_size,
                    config=cols.dict_at(i),
                    metrics=batch.breakdown_at(i).metrics,
                    plan_signature=signature,
                )
            )
        return results

    def run_to_event(
        self,
        plan: PhysicalPlan,
        config: Mapping[str, float],
        *,
        app_id: str,
        artifact_id: str,
        user_id: str,
        iteration: int,
        data_scale: float = 1.0,
        embedding=None,
        region: str = "default",
    ) -> QueryEndEvent:
        """Execute and package the result as a listener event (Sec. 5)."""
        result = self.run(plan, config, data_scale)
        return QueryEndEvent(
            app_id=app_id,
            artifact_id=artifact_id,
            query_signature=result.plan_signature,
            user_id=user_id,
            iteration=iteration,
            config={k: float(v) for k, v in result.config.items()},
            data_size=result.data_size,
            duration_seconds=result.elapsed_seconds,
            embedding=list(np.asarray(embedding, dtype=float)) if embedding is not None else [],
            metrics={k: float(v) for k, v in result.metrics.items()},
            region=region,
        )
