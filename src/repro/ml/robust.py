"""Robust regression: Theil–Sen estimator.

The guardrail regresses execution time on (iteration, input size) with OLS,
which a single Eq.-8 spike can tilt.  The Theil–Sen estimator — the median
of pairwise slopes per feature, with a median-based intercept — has a 29%
breakdown point and suits exactly this kind of spike-contaminated trend
detection.  Features are handled one at a time (backfitting), which is
adequate for the guardrail's two weakly-correlated features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import check_X, check_X_y

__all__ = ["TheilSenRegressor"]


def _pairwise_slopes(x: np.ndarray, r: np.ndarray) -> Optional[float]:
    """Median slope over all point pairs with distinct x (None if none)."""
    dx = x[:, None] - x[None, :]
    dr = r[:, None] - r[None, :]
    mask = np.triu(np.abs(dx) > 1e-12, k=1)
    if not mask.any():
        return None
    return float(np.median(dr[mask] / dx[mask]))


class TheilSenRegressor:
    """Per-feature median-of-slopes regression with backfitting.

    Args:
        n_iterations: backfitting passes over the features (1 is usually
            enough for near-orthogonal features like (iteration, size)).
    """

    def __init__(self, n_iterations: int = 2):
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.n_iterations = n_iterations
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TheilSenRegressor":
        X, y = check_X_y(X, y)
        n, d = X.shape
        if n < 2:
            raise ValueError("need at least 2 samples")
        coef = np.zeros(d)
        for _ in range(self.n_iterations):
            for j in range(d):
                partial = y - X @ coef + X[:, j] * coef[j]
                slope = _pairwise_slopes(X[:, j], partial)
                coef[j] = 0.0 if slope is None else slope
        self.coef_ = coef
        self.intercept_ = float(np.median(y - X @ coef))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("TheilSenRegressor is not fitted")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_
