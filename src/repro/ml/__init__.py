"""From-scratch ML substrate (no scikit-learn available in this environment).

Provides the regression models, kernels, acquisition functions, and
model-selection utilities that Rockhopper's surrogate models and baselines
are built on.
"""

from .acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    LowerConfidenceBound,
    MeanMinimizer,
    ProbabilityOfImprovement,
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from .base import ProbabilisticRegressor, Regressor
from .boosting import GradientBoostingRegressor
from .forest import RandomForestRegressor
from .gp import GaussianProcessRegressor
from .kernels import Kernel, Matern52Kernel, RBFKernel
from .linear import LinearRegression, PolynomialFeatures, RidgeRegression
from .metrics import (
    mae,
    mape,
    permutation_importance,
    quantile_band,
    r2_score,
    rmse,
    spearman_rho,
)
from .model_selection import KFold, cross_val_score, train_test_split
from .robust import TheilSenRegressor
from .scaler import MinMaxScaler, Pipeline, StandardScaler
from .serialize import dumps_model, load_model, loads_model, save_model
from .svr import SVR
from .tree import DecisionTreeRegressor

__all__ = [
    "AcquisitionFunction",
    "DecisionTreeRegressor",
    "ExpectedImprovement",
    "GaussianProcessRegressor",
    "GradientBoostingRegressor",
    "KFold",
    "Kernel",
    "LinearRegression",
    "LowerConfidenceBound",
    "Matern52Kernel",
    "MeanMinimizer",
    "MinMaxScaler",
    "Pipeline",
    "PolynomialFeatures",
    "ProbabilisticRegressor",
    "ProbabilityOfImprovement",
    "RBFKernel",
    "RandomForestRegressor",
    "Regressor",
    "RidgeRegression",
    "SVR",
    "StandardScaler",
    "TheilSenRegressor",
    "cross_val_score",
    "dumps_model",
    "expected_improvement",
    "load_model",
    "loads_model",
    "lower_confidence_bound",
    "mae",
    "mape",
    "probability_of_improvement",
    "permutation_importance",
    "quantile_band",
    "r2_score",
    "rmse",
    "save_model",
    "spearman_rho",
    "train_test_split",
]
