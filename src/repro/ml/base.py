"""Base interfaces for the from-scratch ML substrate.

The environment provides no scikit-learn, so ``repro.ml`` implements the
estimators Rockhopper relies on (GP, SVR, forests, linear models) directly on
top of numpy/scipy, with a deliberately sklearn-like ``fit``/``predict``
surface so the rest of the codebase reads familiarly.
"""

from __future__ import annotations

from typing import Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["Regressor", "ProbabilisticRegressor", "check_X_y", "check_X"]


@runtime_checkable
class Regressor(Protocol):
    """Anything with ``fit(X, y)`` and ``predict(X)``."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


@runtime_checkable
class ProbabilisticRegressor(Regressor, Protocol):
    """A regressor that also reports predictive uncertainty."""

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]: ...


def check_X(X: np.ndarray) -> np.ndarray:
    """Validate and coerce a 2-D feature matrix."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training pair."""
    X = check_X(X)
    y = np.asarray(y, dtype=float).ravel()
    if len(y) != len(X):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)} entries")
    if len(y) == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    return X, y
