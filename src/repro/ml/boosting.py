"""Gradient-boosted regression trees (squared loss)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import check_X, check_X_y
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Classic least-squares gradient boosting with shrinkage + subsampling.

    Used as an alternative baseline-model learner in the offline phase; the
    Fabric deployment trains with "Scikit-learn, NimbusML" (Sec. 3.1), for
    which boosted trees are the workhorse tabular learner.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        max_features: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._trees: List[DecisionTreeRegressor] = []
        self._init_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X, y = check_X_y(X, y)
        n = len(X)
        self._init_ = float(y.mean())
        residual = y - self._init_
        self._trees = []
        for _ in range(self.n_estimators):
            if self.subsample < 1.0:
                m = max(2 * self.min_samples_leaf, int(self.subsample * n))
                idx = self._rng.choice(n, size=m, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(self._rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], residual[idx])
            update = tree.predict(X)
            residual -= self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("GradientBoostingRegressor is not fitted")
        X = check_X(X)
        out = np.full(len(X), self._init_)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X: np.ndarray):
        """Yield predictions after each boosting stage (for early-stop tests)."""
        if not self._trees:
            raise RuntimeError("GradientBoostingRegressor is not fitted")
        X = check_X(X)
        out = np.full(len(X), self._init_)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(X)
            yield out.copy()
