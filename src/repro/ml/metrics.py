"""Regression metrics used by model validation and the experiment harness."""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

__all__ = [
    "rmse",
    "mae",
    "r2_score",
    "mape",
    "spearman_rho",
    "quantile_band",
    "permutation_importance",
]


def _pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def rmse(y_true, y_pred) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mae(y_true, y_pred) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def mape(y_true, y_pred) -> float:
    y_true, y_pred = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), 1e-12)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def spearman_rho(y_true, y_pred) -> float:
    """Rank correlation — the property that matters for candidate *selection*."""
    y_true, y_pred = _pair(y_true, y_pred)
    if len(y_true) < 2:
        return 0.0
    r1 = rankdata(y_true)
    r2 = rankdata(y_pred)
    r1 = r1 - r1.mean()
    r2 = r2 - r2.mean()
    denom = np.sqrt(np.sum(r1 * r1) * np.sum(r2 * r2))
    if denom == 0.0:
        return 0.0
    return float(np.sum(r1 * r2) / denom)


def permutation_importance(model, X, y, *, n_repeats: int = 5, rng=None):
    """Model-side feature importance: RMSE increase under column shuffles.

    The surrogate-free mirror of :func:`repro.core.importance.rank_knobs` —
    where that ranks knobs by perturbing the *cost surface*, this ranks a
    fitted model's features by how much predictive skill each one carries.
    Column ``j``'s score is the mean over ``n_repeats`` shuffles of
    ``rmse(y, model.predict(X with column j permuted)) - rmse(y,
    model.predict(X))``; a feature the model never uses scores ~0.

    Args:
        model: fitted regressor with ``predict(X) -> (n,)``.
        X: ``(n, d)`` feature matrix.
        y: ``(n,)`` targets.
        n_repeats: shuffles per column (scores average over them).
        rng: ``np.random.Generator`` (default: fresh seed-0 generator, so
            repeated calls are deterministic).

    Returns:
        ``(d,)`` array of mean RMSE increases, one per feature column.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValueError(f"length mismatch: {len(X)} rows vs {len(y)} targets")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = rng or np.random.default_rng(0)
    baseline = rmse(y, model.predict(X))
    scores = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        shuffled = X.copy()
        for _ in range(n_repeats):
            shuffled[:, j] = X[rng.permutation(len(X)), j]
            scores[j] += rmse(y, model.predict(shuffled)) - baseline
    return scores / n_repeats


def quantile_band(samples: np.ndarray, lower: float = 5.0, upper: float = 95.0):
    """Median and (p-lower, p-upper) band along axis 0 — the paper's plots
    report the median with a 5th–95th percentile shaded region."""
    samples = np.asarray(samples, dtype=float)
    med = np.percentile(samples, 50.0, axis=0)
    lo = np.percentile(samples, lower, axis=0)
    hi = np.percentile(samples, upper, axis=0)
    return med, lo, hi
