"""Batched (struct-of-arrays) twins of the scalar model-fitting paths.

The lock-step session engine (:mod:`repro.experiments.lockstep`) runs K
independent tuning sessions one *step* at a time, which requires fitting K
window models and K guardrail trend lines per step.  Doing that with K
Python-level scalar fits would erase the batching win, so this module
re-implements the exact arithmetic of the scalar paths over a leading batch
axis:

* :func:`fit_ridge_pipeline` / :class:`BatchedRidgePipeline` — the default
  ``StandardScaler → PolynomialFeatures → RidgeRegression`` window model
  (:mod:`repro.ml.scaler`, :mod:`repro.ml.linear`), fitted for K sessions at
  once.
* :func:`ols_predict` — a deterministic ordinary-least-squares predictor
  (standardized normal equations) shared by the scalar
  :class:`repro.core.guardrail.Guardrail` and its lock-step batch twin.
* :func:`batched_gp_posterior` — shared-kernel block solves: posterior
  means/stds for B outcome vectors that share one training-input matrix and
  one kernel, via a single Cholesky factorization.

**Bit-identity contract.**  Every batched operation here is implemented in a
form whose per-slice results are bitwise identical to the scalar NumPy
calls they replace: ``mean``/``std`` reductions along the sample axis,
stacked ``swapaxes(X, 1, 2) @ X`` Gram products, stacked
``np.linalg.solve``, and matmul-shaped dot products
``(m[:, None, :] @ coef[..., None])[:, 0, 0]``.  (Notably,
``np.einsum("kf,kf->k", ...)`` is *not* bitwise equal to per-slice dots and
is deliberately avoided.)  ``tests/ml/test_batched.py`` pins the contract
per primitive; :func:`repro.verify.diff.diff_lockstep_sequential` pins it
end to end.

The GP helper is the exception: block triangular solves reassociate
floating-point sums, so its contract is *numerical* (small atol against
per-session refits), not bitwise.  That is why the lock-step engine's
bit-identical fast path covers Centroid Learning sessions, while BO paths
get batched posteriors with a tolerance-based oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_solve

__all__ = [
    "BatchedRidgePipeline",
    "batched_gp_posterior",
    "fit_ridge_pipeline",
    "ols_predict",
    "polynomial_features_batch",
]


def polynomial_features_batch(X: np.ndarray, degree: int = 2,
                              interaction_only: bool = False) -> np.ndarray:
    """Degree-≤2 polynomial expansion over the trailing axis.

    Matches :class:`repro.ml.linear.PolynomialFeatures` column order exactly
    (original columns first, then ``x_i · x_j`` for ``j >= i``), applied to
    arrays with any number of leading batch axes.
    """
    if degree not in (1, 2):
        raise ValueError(f"degree must be 1 or 2, got {degree}")
    if degree == 1:
        return X
    cols = [X]
    d = X.shape[-1]
    for i in range(d):
        start = i + 1 if interaction_only else i
        for j in range(start, d):
            cols.append(X[..., i : i + 1] * X[..., j : j + 1])
    return np.concatenate(cols, axis=-1)


@dataclass
class BatchedRidgePipeline:
    """K fitted ``scale → poly → ridge`` window models in SoA form.

    Attributes:
        mean: per-session feature means, shape ``(K, f)``.
        scale: per-session feature scales (zeros replaced by 1), ``(K, f)``.
        coef: per-session ridge coefficients over expanded features,
            ``(K, F)``.
        intercept: per-session intercepts, ``(K,)``.
        degree / interaction_only: the polynomial expansion used at fit
            time (replayed at predict time).
    """

    mean: np.ndarray
    scale: np.ndarray
    coef: np.ndarray
    intercept: np.ndarray
    degree: int = 2
    interaction_only: bool = False

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predict at ``queries`` of shape ``(K, m, f)`` → ``(K, m)``."""
        qs = (queries - self.mean[:, None, :]) / self.scale[:, None, :]
        expanded = polynomial_features_batch(qs, self.degree, self.interaction_only)
        return (expanded @ self.coef[..., None])[..., 0] + self.intercept[:, None]

    def scatter_into(self, other: "BatchedRidgePipeline", idx: np.ndarray) -> None:
        """Write this model's K rows into ``other`` at positions ``idx``."""
        other.mean[idx] = self.mean
        other.scale[idx] = self.scale
        other.coef[idx] = self.coef
        other.intercept[idx] = self.intercept


def fit_ridge_pipeline(X: np.ndarray, y: np.ndarray, alphas: np.ndarray,
                       degree: int = 2,
                       interaction_only: bool = False) -> BatchedRidgePipeline:
    """Fit K ridge-pipeline window models at once.

    Args:
        X: design matrices, shape ``(K, n, f)`` — per-session window rows.
        y: targets, shape ``(K, n)``.
        alphas: per-session ridge regularization strengths, shape ``(K,)``.

    Returns a :class:`BatchedRidgePipeline` whose slice ``k`` is bitwise
    identical to ``Pipeline([StandardScaler(), PolynomialFeatures(degree),
    RidgeRegression(alphas[k])]).fit(X[k], y[k])``.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    alphas = np.asarray(alphas, dtype=float)
    # StandardScaler.fit / transform.
    mean = X.mean(axis=1)
    scale = X.std(axis=1)
    scale = np.where(scale == 0.0, 1.0, scale)
    xs = (X - mean[:, None, :]) / scale[:, None, :]
    # PolynomialFeatures.
    expanded = polynomial_features_batch(xs, degree, interaction_only)
    # RidgeRegression.fit (centered normal equations).
    n_features = expanded.shape[-1]
    x_mean = expanded.mean(axis=1)
    y_mean = y.mean(axis=1)
    xc = expanded - x_mean[:, None, :]
    yc = y - y_mean[:, None]
    gram = np.swapaxes(xc, 1, 2) @ xc + alphas[:, None, None] * np.eye(n_features)
    rhs = np.swapaxes(xc, 1, 2) @ yc[..., None]
    coef = np.linalg.solve(gram, rhs)[..., 0]
    intercept = y_mean - (x_mean[:, None, :] @ coef[..., None])[:, 0, 0]
    return BatchedRidgePipeline(
        mean=mean, scale=scale, coef=coef, intercept=intercept,
        degree=degree, interaction_only=interaction_only,
    )


def ols_predict(X: np.ndarray, y: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Deterministic OLS-with-intercept predictions via standardized normal
    equations.

    Accepts 2-D inputs (``X (n, f)``, ``y (n,)``, ``queries (q, f)`` →
    ``(q,)``) or stacked 3-D inputs with a leading batch axis.  Both shapes
    run through the *same* batched code path, so a scalar call is bitwise
    identical to the matching slice of a batched call — this is the solver
    shared by :class:`repro.core.guardrail.Guardrail` and the lock-step
    guardrail arrays.

    Degenerate (constant) feature columns get a zero coefficient: their
    centered values vanish from the Gram matrix, which is padded with an
    identity entry on those diagonals to stay non-singular.  Predictions at
    queries sharing the constant value are unaffected.  A tiny ridge term
    (1e-9 relative to the Gram diagonal) keeps exactly collinear columns —
    e.g. a data size that is an affine function of the iteration number —
    solvable; as the ridge weight vanishes the solution converges to the
    minimum-norm least-squares answer ``lstsq`` would return.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    queries = np.asarray(queries, dtype=float)
    scalar = X.ndim == 2
    if scalar:
        X, y, queries = X[None], y[None], queries[None]
    mean = X.mean(axis=1)
    std = X.std(axis=1)
    degenerate = std == 0.0
    std = np.where(degenerate, 1.0, std)
    xs = (X - mean[:, None, :]) / std[:, None, :]
    y_mean = y.mean(axis=1)
    yc = y - y_mean[:, None]
    n_features = X.shape[-1]
    gram = np.swapaxes(xs, 1, 2) @ xs
    # Standardized columns give Gram diagonals ~= n, so this ridge weight is
    # ~1e-9 relative — far below observation noise, large enough to solve
    # exactly collinear designs.
    ridge = 1e-9 * X.shape[1]
    gram = gram + np.eye(n_features) * (degenerate.astype(float) + ridge)[:, None, :]
    rhs = np.swapaxes(xs, 1, 2) @ yc[..., None]
    coef = np.linalg.solve(gram, rhs)[..., 0]
    qs = (queries - mean[:, None, :]) / std[:, None, :]
    out = (qs @ coef[..., None])[..., 0] + y_mean[:, None]
    return out[0] if scalar else out


def batched_gp_posterior(template, X: np.ndarray, Y: np.ndarray,
                         X_star: np.ndarray):
    """Posterior means/stds for B targets sharing one kernel and input set.

    When B sessions observe the *same* candidate configurations (a shared
    workload family) but different outcomes, their GP posteriors share the
    training-kernel Cholesky factor.  This computes all B posteriors with
    one factorization and block triangular solves instead of B independent
    fits.

    Args:
        template: a :class:`repro.ml.gp.GaussianProcessRegressor` supplying
            the (frozen) kernel hyperparameters, noise variance, and
            ``normalize_y`` policy.  It is not mutated.
        X: shared training inputs, shape ``(n, f)``.
        Y: per-session raw targets, shape ``(B, n)``.
        X_star: query points, shape ``(m, f)``.

    Returns:
        ``(means, stds)`` of shape ``(B, m)`` each.  Agrees with B
        independent ``fit(X, Y[b]).predict_with_std(X_star)`` calls (with
        hyperparameter optimization disabled) to numerical tolerance — block
        solves reassociate sums, so this contract is atol-based, not
        bitwise.
    """
    from .gp import _JITTER  # local import: keep the gp module optional here

    X = np.asarray(X, dtype=float)
    Y = np.asarray(Y, dtype=float)
    X_star = np.asarray(X_star, dtype=float)
    if Y.ndim != 2 or Y.shape[1] != len(X):
        raise ValueError(
            f"Y must have shape (B, {len(X)}), got {Y.shape}"
        )
    if template.normalize_y:
        y_mean = Y.mean(axis=1)
        y_std = Y.std(axis=1)
        y_std = np.where(y_std == 0.0, 1.0, y_std)
    else:
        y_mean = np.zeros(len(Y))
        y_std = np.ones(len(Y))
    yn = (Y - y_mean[:, None]) / y_std[:, None]

    kernel = template.kernel
    K = kernel(X, X)
    K[np.diag_indices_from(K)] += template.noise + _JITTER
    L = np.linalg.cholesky(K)
    chol = (L, True)
    # Block solve: all B alpha vectors from one factorization.
    alphas = cho_solve(chol, yn.T)                      # (n, B)
    K_star = kernel(X_star, X)                          # (m, n)
    means_n = K_star @ alphas                           # (m, B)
    v = cho_solve(chol, K_star.T)                       # (n, m)
    var_n = kernel.diag(X_star) - np.sum(K_star * v.T, axis=1)
    np.maximum(var_n, 1e-12, out=var_n)
    means = means_n.T * y_std[:, None] + y_mean[:, None]
    stds = np.sqrt(var_n)[None, :] * y_std[:, None]
    return means, stds
