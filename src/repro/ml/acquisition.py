"""Acquisition functions for model-guided search.

The paper's candidate-selection step ("Various acquisition functions, such as
Expected Improvement (EI), can be used as selection criteria", Sec. 4.3)
maximizes an acquisition score over a candidate set.  All scores here are
*maximized*; performance (execution time) is *minimized*, so improvement is
measured below the incumbent best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "LowerConfidenceBound",
    "MeanMinimizer",
]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """EI for minimization: ``E[max(best − f − ξ, 0)]``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    gap = best - mean - xi
    z = gap / std
    return gap * norm.cdf(z) + std * norm.pdf(z)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """PI for minimization."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return norm.cdf((best - mean - xi) / std)


def lower_confidence_bound(
    mean: np.ndarray, std: np.ndarray, kappa: float = 2.0
) -> np.ndarray:
    """Negated LCB so that *maximizing* the score explores low means.

    ``score = −(mean − κ·std)``.
    """
    return -(np.asarray(mean, dtype=float) - kappa * np.asarray(std, dtype=float))


@dataclass
class AcquisitionFunction:
    """Callable scoring interface: higher score = more attractive candidate."""

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        raise NotImplementedError


@dataclass
class ExpectedImprovement(AcquisitionFunction):
    xi: float = 0.0

    def __call__(self, mean, std, best):
        return expected_improvement(mean, std, best, xi=self.xi)


@dataclass
class ProbabilityOfImprovement(AcquisitionFunction):
    xi: float = 0.0

    def __call__(self, mean, std, best):
        return probability_of_improvement(mean, std, best, xi=self.xi)


@dataclass
class LowerConfidenceBound(AcquisitionFunction):
    kappa: float = 2.0

    def __call__(self, mean, std, best):
        return lower_confidence_bound(mean, std, kappa=self.kappa)


@dataclass
class MeanMinimizer(AcquisitionFunction):
    """Pure exploitation: score = −predicted mean.

    This is the "configuration with the highest predicted performance"
    selection mode mentioned in Sec. 4.1 for the deployed system, which runs
    conservatively with little explicit exploration.
    """

    def __call__(self, mean, std, best):
        return -np.asarray(mean, dtype=float)
