"""Gaussian process regression with optional marginal-likelihood tuning.

This is the surrogate behind the vanilla / contextual Bayesian Optimization
baselines the paper compares Centroid Learning against (Sec. 6), equivalent
in role to the GP inside the ``bayesian-optimization`` package the authors
cite [4].

Long tuning runs observe one point per iteration, so the surrogate supports
two fit paths:

* :meth:`fit` — the full O(n³) Cholesky factorization (also re-optimizes
  hyperparameters when enabled);
* :meth:`update` — an O(n²) rank-1 extension of the existing Cholesky
  factor for a single appended observation, keeping kernel hyperparameters
  and target normalization frozen.  It falls back to a full refit when the
  frozen normalization has drifted too far from the data or the extension
  is numerically unsafe (see ``docs/performance.md``).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular
from scipy.optimize import minimize

from .. import telemetry
from .base import check_X, check_X_y
from .kernels import Kernel, Matern52Kernel

__all__ = ["GaussianProcessRegressor"]

_JITTER = 1e-10


class GaussianProcessRegressor:
    """GP regression with a Gaussian noise term.

    Args:
        kernel: covariance kernel; defaults to Matérn 5/2 with unit scales.
        noise: initial observation-noise variance.
        normalize_y: standardize targets before fitting (recommended for
            execution times, which vary over orders of magnitude).
        optimize_hypers: maximize the log marginal likelihood over the kernel
            hyperparameters and the noise variance with L-BFGS-B restarts.
        n_restarts: extra random restarts for the hyperparameter search.
        drift_tolerance: how far the running target mean/std may drift from
            the normalization constants frozen at the last full :meth:`fit`
            before :meth:`update` falls back to a full refit.
        seed: RNG seed for the restarts.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-2,
        normalize_y: bool = True,
        optimize_hypers: bool = True,
        n_restarts: int = 2,
        drift_tolerance: float = 0.25,
        seed: Optional[int] = None,
    ):
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        if noise <= 0:
            raise ValueError("noise must be positive")
        if drift_tolerance <= 0:
            raise ValueError("drift_tolerance must be positive")
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self.optimize_hypers = optimize_hypers
        self.n_restarts = n_restarts
        self.drift_tolerance = float(drift_tolerance)
        self._rng = np.random.default_rng(seed)
        self._X: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0
        # Instrumentation for benchmarks / regression guards.
        self.n_full_fits = 0
        self.n_incremental_updates = 0
        self.n_update_fallbacks = 0

    # -- marginal likelihood ----------------------------------------------------

    def _neg_log_marginal_likelihood(
        self, theta: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> float:
        kernel = self.kernel.clone()
        kernel.set_theta(theta[:-1])
        noise = float(np.exp(theta[-1]))
        K = kernel(X, X)
        K[np.diag_indices_from(K)] += noise + _JITTER
        try:
            chol = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            return 1e25
        alpha = cho_solve(chol, y)
        log_det = 2.0 * np.sum(np.log(np.diag(chol[0])))
        n = len(y)
        lml = -0.5 * float(y @ alpha) - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)
        return -lml

    def _optimize_theta(self, X: np.ndarray, y: np.ndarray) -> None:
        # Warm start from the current hyperparameters; trial evaluations run
        # on kernel clones (inside the NLL), and only a theta that strictly
        # improves on the incumbent is committed — if every restart fails or
        # lands worse, the kernel and noise stay exactly as they were.
        theta0 = np.concatenate([self.kernel.get_theta(), [np.log(self.noise)]])
        bounds = [(-6.0, 6.0)] * len(theta0)
        starts = [theta0]
        for _ in range(self.n_restarts):
            starts.append(self._rng.uniform(-3.0, 3.0, size=len(theta0)))
        incumbent_val = self._neg_log_marginal_likelihood(theta0, X, y)
        best_val, best_theta = incumbent_val, None
        for start in starts:
            res = minimize(
                self._neg_log_marginal_likelihood,
                start,
                args=(X, y),
                method="L-BFGS-B",
                bounds=bounds,
            )
            if np.isfinite(res.fun) and res.fun < best_val:
                best_val, best_theta = float(res.fun), res.x
        if best_theta is not None:
            self.kernel.set_theta(best_theta[:-1])
            self.noise = float(np.exp(best_theta[-1]))

    # -- fit / predict -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        started = time.perf_counter() if telemetry.enabled() else None
        X, y = check_X_y(X, y)
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        yn = (y - self._y_mean) / self._y_std
        # Expand isotropic length scales to per-dimension (ARD) before tuning.
        if self.kernel.length_scale.size == 1 and X.shape[1] > 1:
            self.kernel.length_scale = np.full(
                X.shape[1], float(self.kernel.length_scale[0])
            )
        if self.optimize_hypers and len(X) >= 3:
            self._optimize_theta(X, yn)
        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise + _JITTER
        L, _ = cho_factor(K, lower=True)
        # Keep a clean lower triangle: cho_factor leaves garbage in the
        # unused triangle, and update() extends the factor row by row.
        self._chol = (np.tril(L), True)
        self._alpha = cho_solve(self._chol, yn)
        self._X = X
        self._y_raw = np.asarray(y, dtype=float).copy()
        self.n_full_fits += 1
        telemetry.counter("gp.fits", path="full").inc()
        if started is not None:
            telemetry.histogram("gp.fit_seconds").observe(
                time.perf_counter() - started
            )
        return self

    # -- incremental observation ------------------------------------------------

    @property
    def n_observations(self) -> int:
        """Training-set size of the current fit (0 when unfitted)."""
        return 0 if self._X is None else len(self._X)

    def _normalization_drifted(self, y_all: np.ndarray) -> bool:
        if not self.normalize_y:
            return False
        tol = self.drift_tolerance
        mean, std = float(y_all.mean()), float(y_all.std()) or 1.0
        scale = max(self._y_std, 1e-12)
        if abs(mean - self._y_mean) > tol * scale:
            return True
        ratio = std / scale
        return not (1.0 / (1.0 + tol) <= ratio <= 1.0 + tol)

    def _refit_full(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Full refit *without* hyperparameter re-optimization (the update
        contract: theta only moves on the caller's refit cadence)."""
        saved = self.optimize_hypers
        self.optimize_hypers = False
        try:
            return self.fit(X, y)
        finally:
            self.optimize_hypers = saved

    def _training_targets(self) -> np.ndarray:
        if self._y_raw is None:
            # Restored models (ml.serialize) carry alpha but not y; recover
            # y = (K + σ²I) α in normalized space, then undo normalization.
            L = self._chol[0]
            yn = L @ (L.T @ self._alpha)
            self._y_raw = yn * self._y_std + self._y_mean
        return self._y_raw

    def update(self, x: np.ndarray, y: float) -> "GaussianProcessRegressor":
        """Absorb one observation ``(x, y)`` in O(n²) via a rank-1 Cholesky
        append.

        Kernel hyperparameters, the noise variance, and the target
        normalization stay frozen at their last-:meth:`fit` values.  Falls
        back to a (non-hyperopt) full refit when the frozen normalization
        has drifted beyond ``drift_tolerance`` or the Schur complement of
        the appended row is not safely positive.
        """
        if self._X is None or self._alpha is None:
            raise RuntimeError("GaussianProcessRegressor is not fitted")
        x = check_X(x)
        if x.shape[0] != 1:
            ys = np.asarray(y, dtype=float).ravel()
            if len(ys) != x.shape[0]:
                raise ValueError(
                    f"got {x.shape[0]} rows but {len(ys)} targets"
                )
            for row, yi in zip(x, ys):
                self.update(row.reshape(1, -1), float(yi))
            return self
        if x.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"x has {x.shape[1]} features, expected {self._X.shape[1]}"
            )
        started = time.perf_counter() if telemetry.enabled() else None
        y = float(y)
        X_all = np.vstack([self._X, x])
        y_all = np.append(self._training_targets(), y)

        if self._normalization_drifted(y_all):
            self.n_update_fallbacks += 1
            telemetry.counter("gp.updates", path="fallback", reason="drift").inc()
            return self._refit_full(X_all, y_all)

        k = self.kernel(self._X, x).ravel()
        k_ss = float(self.kernel(x, x)[0, 0]) + self.noise + _JITTER
        L = self._chol[0]
        w = solve_triangular(L, k, lower=True)
        d2 = k_ss - float(w @ w)
        if not np.isfinite(d2) or d2 <= _JITTER:
            self.n_update_fallbacks += 1
            telemetry.counter("gp.updates", path="fallback", reason="schur").inc()
            return self._refit_full(X_all, y_all)

        n = len(L)
        L_new = np.zeros((n + 1, n + 1))
        L_new[:n, :n] = L
        L_new[n, :n] = w
        L_new[n, n] = np.sqrt(d2)
        self._chol = (L_new, True)
        self._X = X_all
        self._y_raw = y_all
        yn = (y_all - self._y_mean) / self._y_std
        self._alpha = cho_solve(self._chol, yn)
        self.n_incremental_updates += 1
        telemetry.counter("gp.updates", path="incremental").inc()
        if started is not None:
            telemetry.histogram("gp.update_seconds").observe(
                time.perf_counter() - started
            )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Posterior mean only — skips the O(n²·m) variance ``cho_solve``."""
        if self._X is None or self._alpha is None:
            raise RuntimeError("GaussianProcessRegressor is not fitted")
        started = time.perf_counter() if telemetry.enabled() else None
        X = check_X(X)
        mean_n = self.kernel(X, self._X) @ self._alpha
        out = mean_n * self._y_std + self._y_mean
        if started is not None:
            telemetry.histogram("gp.predict_seconds").observe(
                time.perf_counter() - started
            )
        return out

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._X is None or self._alpha is None:
            raise RuntimeError("GaussianProcessRegressor is not fitted")
        X = check_X(X)
        K_star = self.kernel(X, self._X)
        mean_n = K_star @ self._alpha
        v = cho_solve(self._chol, K_star.T)
        var_n = self.kernel.diag(X) - np.sum(K_star * v.T, axis=1)
        np.maximum(var_n, 1e-12, out=var_n)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std

    def sample_posterior(
        self, X: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw joint posterior samples at ``X`` — shape ``(n_samples, len(X))``."""
        if self._X is None:
            raise RuntimeError("GaussianProcessRegressor is not fitted")
        X = check_X(X)
        K_star = self.kernel(X, self._X)
        mean_n = K_star @ self._alpha
        v = cho_solve(self._chol, K_star.T)
        cov = self.kernel(X, X) - K_star @ v
        cov[np.diag_indices_from(cov)] += 1e-10
        samples_n = rng.multivariate_normal(mean_n, cov, size=n_samples)
        return samples_n * self._y_std + self._y_mean
