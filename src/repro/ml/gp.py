"""Gaussian process regression with optional marginal-likelihood tuning.

This is the surrogate behind the vanilla / contextual Bayesian Optimization
baselines the paper compares Centroid Learning against (Sec. 6), equivalent
in role to the GP inside the ``bayesian-optimization`` package the authors
cite [4].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.optimize import minimize

from .base import check_X, check_X_y
from .kernels import Kernel, Matern52Kernel

__all__ = ["GaussianProcessRegressor"]

_JITTER = 1e-10


class GaussianProcessRegressor:
    """GP regression with a Gaussian noise term.

    Args:
        kernel: covariance kernel; defaults to Matérn 5/2 with unit scales.
        noise: initial observation-noise variance.
        normalize_y: standardize targets before fitting (recommended for
            execution times, which vary over orders of magnitude).
        optimize_hypers: maximize the log marginal likelihood over the kernel
            hyperparameters and the noise variance with L-BFGS-B restarts.
        n_restarts: extra random restarts for the hyperparameter search.
        seed: RNG seed for the restarts.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-2,
        normalize_y: bool = True,
        optimize_hypers: bool = True,
        n_restarts: int = 2,
        seed: Optional[int] = None,
    ):
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self.optimize_hypers = optimize_hypers
        self.n_restarts = n_restarts
        self._rng = np.random.default_rng(seed)
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- marginal likelihood ----------------------------------------------------

    def _neg_log_marginal_likelihood(
        self, theta: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> float:
        kernel = self.kernel.clone()
        kernel.set_theta(theta[:-1])
        noise = float(np.exp(theta[-1]))
        K = kernel(X, X)
        K[np.diag_indices_from(K)] += noise + _JITTER
        try:
            chol = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            return 1e25
        alpha = cho_solve(chol, y)
        log_det = 2.0 * np.sum(np.log(np.diag(chol[0])))
        n = len(y)
        lml = -0.5 * float(y @ alpha) - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)
        return -lml

    def _optimize_theta(self, X: np.ndarray, y: np.ndarray) -> None:
        theta0 = np.concatenate([self.kernel.get_theta(), [np.log(self.noise)]])
        bounds = [(-6.0, 6.0)] * len(theta0)
        starts = [theta0]
        for _ in range(self.n_restarts):
            starts.append(self._rng.uniform(-3.0, 3.0, size=len(theta0)))
        best_val, best_theta = np.inf, theta0
        for start in starts:
            res = minimize(
                self._neg_log_marginal_likelihood,
                start,
                args=(X, y),
                method="L-BFGS-B",
                bounds=bounds,
            )
            if res.fun < best_val:
                best_val, best_theta = float(res.fun), res.x
        self.kernel.set_theta(best_theta[:-1])
        self.noise = float(np.exp(best_theta[-1]))

    # -- fit / predict -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X, y = check_X_y(X, y)
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        yn = (y - self._y_mean) / self._y_std
        # Expand isotropic length scales to per-dimension (ARD) before tuning.
        if self.kernel.length_scale.size == 1 and X.shape[1] > 1:
            self.kernel.length_scale = np.full(
                X.shape[1], float(self.kernel.length_scale[0])
            )
        if self.optimize_hypers and len(X) >= 3:
            self._optimize_theta(X, yn)
        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise + _JITTER
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._X = X
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        mean, _ = self.predict_with_std(X)
        return mean

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._X is None or self._alpha is None:
            raise RuntimeError("GaussianProcessRegressor is not fitted")
        X = check_X(X)
        K_star = self.kernel(X, self._X)
        mean_n = K_star @ self._alpha
        v = cho_solve(self._chol, K_star.T)
        var_n = self.kernel.diag(X) - np.sum(K_star * v.T, axis=1)
        np.maximum(var_n, 1e-12, out=var_n)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std

    def sample_posterior(
        self, X: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw joint posterior samples at ``X`` — shape ``(n_samples, len(X))``."""
        if self._X is None:
            raise RuntimeError("GaussianProcessRegressor is not fitted")
        X = check_X(X)
        K_star = self.kernel(X, self._X)
        mean_n = K_star @ self._alpha
        v = cho_solve(self._chol, K_star.T)
        cov = self.kernel(X, X) - K_star @ v
        cov[np.diag_indices_from(cov)] += 1e-10
        samples_n = rng.multivariate_normal(mean_n, cov, size=n_samples)
        return samples_n * self._y_std + self._y_mean
