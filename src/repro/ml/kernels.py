"""Covariance kernels for Gaussian process regression."""

from __future__ import annotations


import numpy as np

__all__ = ["Kernel", "RBFKernel", "Matern52Kernel", "cdist_sq"]


def cdist_sq(A: np.ndarray, B: np.ndarray, length_scale: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distance after per-dimension scaling."""
    A = np.asarray(A, dtype=float) / length_scale
    B = np.asarray(B, dtype=float) / length_scale
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


class Kernel:
    """Base kernel with an amplitude and per-dimension length scales."""

    def __init__(self, length_scale=1.0, variance: float = 1.0):
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=float))
        if np.any(self.length_scale <= 0):
            raise ValueError("length scales must be positive")
        if variance <= 0:
            raise ValueError("variance must be positive")
        self.variance = float(variance)

    def _broadcast_ls(self, dim: int) -> np.ndarray:
        if self.length_scale.size == 1:
            return np.full(dim, float(self.length_scale[0]))
        if self.length_scale.size != dim:
            raise ValueError(
                f"length_scale has {self.length_scale.size} entries "
                f"but inputs have {dim} dimensions"
            )
        return self.length_scale

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diag(self, A: np.ndarray) -> np.ndarray:
        return np.full(len(A), self.variance)

    # -- hyperparameter vector (log-space) for marginal-likelihood opt ---------

    def get_theta(self) -> np.ndarray:
        return np.log(np.concatenate([[self.variance], self.length_scale]))

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        self.variance = float(np.exp(theta[0]))
        self.length_scale = np.exp(theta[1:])

    def clone(self) -> "Kernel":
        return type(self)(self.length_scale.copy(), self.variance)


class RBFKernel(Kernel):
    """Squared-exponential kernel ``σ² exp(−½ d²)``."""

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        ls = self._broadcast_ls(A.shape[1])
        return self.variance * np.exp(-0.5 * cdist_sq(A, B, ls))


class Matern52Kernel(Kernel):
    """Matérn ν=5/2 kernel — a common default in BO packages."""

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        ls = self._broadcast_ls(A.shape[1])
        d = np.sqrt(cdist_sq(A, B, ls))
        sqrt5_d = np.sqrt(5.0) * d
        return self.variance * (1.0 + sqrt5_d + (5.0 / 3.0) * d * d) * np.exp(-sqrt5_d)
