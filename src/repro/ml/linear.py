"""Linear models: ordinary least squares and ridge regression.

The Centroid Learning update (Sec. 4.3) fits "a linear surface ... to
approximate the small region explored" to obtain a noise-robust gradient
sign; these are the models backing that step and the guardrail regression.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import check_X, check_X_y

__all__ = ["LinearRegression", "RidgeRegression", "PolynomialFeatures"]


class LinearRegression:
    """Ordinary least squares via ``numpy.linalg.lstsq`` (rank-robust)."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            A = np.column_stack([np.ones(len(X)), X])
        else:
            A = X
        beta, *_ = np.linalg.lstsq(A, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(beta[0])
            self.coef_ = beta[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = beta
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearRegression is not fitted")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized least squares (closed form, intercept unpenalized)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        d = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression is not fitted")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_


class PolynomialFeatures:
    """Degree-2 polynomial expansion (optionally interactions only).

    Used by the offline baseline model to add "interactions and
    permutations to the feature set" (Sec. 3.1).
    """

    def __init__(self, degree: int = 2, interaction_only: bool = False):
        if degree not in (1, 2):
            raise ValueError("only degree 1 or 2 is supported")
        self.degree = degree
        self.interaction_only = interaction_only

    def fit(self, X: np.ndarray) -> "PolynomialFeatures":
        check_X(X)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X)
        if self.degree == 1:
            return X.copy()
        n, d = X.shape
        cols = [X]
        for i in range(d):
            start = i + 1 if self.interaction_only else i
            for j in range(start, d):
                cols.append((X[:, i] * X[:, j]).reshape(n, 1))
        return np.hstack(cols)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
