"""Feature scalers and a minimal pipeline."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import Regressor, check_X

__all__ = ["StandardScaler", "MinMaxScaler", "Pipeline"]


class StandardScaler:
    """Zero-mean / unit-variance scaling with degenerate-column protection."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant columns get scale 1 so they map to exactly 0 (no div by 0).
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = check_X(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = check_X(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into [0, 1] per column."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_X(X)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        X = check_X(X)
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        X = check_X(X)
        return X * self.range_ + self.min_


class Pipeline:
    """A scaler(s) + final regressor chain with the Regressor interface.

    Only the final step needs ``fit(X, y)``; earlier steps are transformers
    with ``fit_transform``/``transform``.
    """

    def __init__(self, steps: Sequence[Tuple[str, object]]):
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        self.steps: List[Tuple[str, object]] = list(steps)

    @property
    def final(self) -> Regressor:
        return self.steps[-1][1]  # type: ignore[return-value]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Pipeline":
        Xt = np.asarray(X, dtype=float)
        for _, step in self.steps[:-1]:
            Xt = step.fit_transform(Xt)  # type: ignore[union-attr]
        self.final.fit(Xt, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        Xt = np.asarray(X, dtype=float)
        for _, step in self.steps[:-1]:
            Xt = step.transform(Xt)  # type: ignore[union-attr]
        return Xt

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.final.predict(self._transform(X))

    def predict_with_std(self, X: np.ndarray):
        final = self.final
        if not hasattr(final, "predict_with_std"):
            raise AttributeError("final pipeline step has no predict_with_std")
        return final.predict_with_std(self._transform(X))  # type: ignore[union-attr]
