"""ε-insensitive support vector regression.

Figure 10 of the paper replaces the pseudo-surrogate with "a support vector
machine regression model trained on noisy data".  We solve the standard SVR
dual.  The bias term is absorbed into the kernel by adding a constant offset
(``k(x, x') + 1``), which removes the equality constraint and leaves a pure
box-constrained QP that L-BFGS-B handles directly:

    maximize  −½ (α−α*)ᵀ K̃ (α−α*) − ε Σ(α+α*) + Σ y (α−α*)
    s.t.      0 ≤ α, α* ≤ C

with ``K̃ = K + 1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize

from .base import check_X, check_X_y
from .kernels import Kernel, RBFKernel

__all__ = ["SVR"]


class SVR:
    """Kernel ε-SVR with bias absorbed into the kernel.

    Args:
        kernel: covariance kernel; defaults to an RBF with unit length scale.
        C: box constraint (regularization strength inverse).
        epsilon: width of the ε-insensitive tube.
        max_iter: L-BFGS-B iteration cap for the dual solve.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        C: float = 10.0,
        epsilon: float = 0.1,
        max_iter: int = 500,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.max_iter = max_iter
        self._X: Optional[np.ndarray] = None
        self._beta: Optional[np.ndarray] = None  # α − α*
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        X, y = check_X_y(X, y)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        n = len(X)
        K = self.kernel(X, X) + 1.0  # +1 absorbs the bias term
        K[np.diag_indices_from(K)] += 1e-8

        def objective(z: np.ndarray):
            a = z[:n]        # α
            a_star = z[n:]   # α*
            beta = a - a_star
            Kb = K @ beta
            obj = 0.5 * beta @ Kb + self.epsilon * z.sum() - yn @ beta
            grad = np.concatenate([Kb + self.epsilon - yn, -Kb + self.epsilon + yn])
            return obj, grad

        z0 = np.zeros(2 * n)
        bounds = [(0.0, self.C)] * (2 * n)
        res = minimize(
            objective,
            z0,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.max_iter},
        )
        self._beta = res.x[:n] - res.x[n:]
        self._X = X
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._beta is None:
            raise RuntimeError("SVR is not fitted")
        X = check_X(X)
        K_star = self.kernel(X, self._X) + 1.0
        return (K_star @ self._beta) * self._y_std + self._y_mean

    @property
    def support_fraction(self) -> float:
        """Fraction of training points with non-zero dual weight."""
        if self._beta is None:
            raise RuntimeError("SVR is not fitted")
        return float(np.mean(np.abs(self._beta) > 1e-8))
