"""Random forest regression (bagged CART trees)."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import check_X, check_X_y
from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    The ensemble spread across trees doubles as a (crude) uncertainty
    estimate via :meth:`predict_with_std`, which lets the forest serve as a
    baseline-model surrogate with an acquisition function.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 2,
        max_features: Optional[str] = "sqrt",
        seed: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._trees: List[DecisionTreeRegressor] = []

    def _resolve_max_features(self, d: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features == "third":
            return max(1, d // 3)
        if isinstance(self.max_features, int):
            return min(d, self.max_features)
        raise ValueError(f"unknown max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        n, d = X.shape
        max_features = self._resolve_max_features(d)
        self._trees = []
        for _ in range(self.n_estimators):
            idx = self._rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(self._rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def _all_tree_predictions(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("RandomForestRegressor is not fitted")
        X = check_X(X)
        return np.array([tree.predict(X) for tree in self._trees])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._all_tree_predictions(X).mean(axis=0)

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        preds = self._all_tree_predictions(X)
        return preds.mean(axis=0), preds.std(axis=0) + 1e-12
