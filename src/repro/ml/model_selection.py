"""Train/test splitting and cross-validation helpers."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from .base import Regressor, check_X_y
from .metrics import rmse

__all__ = ["train_test_split", "KFold", "cross_val_score"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train and test partitions."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    X, y = check_X_y(X, y)
    rng = rng or np.random.default_rng()
    n = len(X)
    n_test = max(1, int(round(test_fraction * n)))
    if n_test >= n:
        raise ValueError("test_fraction leaves no training data")
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold index generator with optional shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            test_idx = folds[k]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield train_idx, test_idx


def cross_val_score(
    model_factory: Callable[[], Regressor],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    metric: Callable[[np.ndarray, np.ndarray], float] = rmse,
    seed: Optional[int] = None,
) -> List[float]:
    """Fit a fresh model per fold and return per-fold metric values."""
    X, y = check_X_y(X, y)
    scores = []
    for train_idx, test_idx in KFold(n_splits, seed=seed).split(len(X)):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(metric(y[test_idx], model.predict(X[test_idx])))
    return scores
