"""Model serialization (JSON) — the repo's stand-in for ONNX export.

The production system trains models in Python, converts them to ONNX, and
loads them in Scala (Sec. 3.1).  The property that matters for the
backend/client split is a faithful round-trip of a trained model through an
opaque byte payload; this module provides that with a JSON codec covering
the estimators used as surrogates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from .boosting import GradientBoostingRegressor
from .forest import RandomForestRegressor
from .gp import GaussianProcessRegressor
from .kernels import Matern52Kernel, RBFKernel
from .linear import LinearRegression, RidgeRegression
from .svr import SVR
from .tree import DecisionTreeRegressor, _Node

__all__ = [
    "dumps_model",
    "loads_model",
    "save_model",
    "load_model",
    "dumps_index",
    "loads_index",
    "index_to_payload",
    "index_from_payload",
]

_KERNELS = {"RBFKernel": RBFKernel, "Matern52Kernel": Matern52Kernel}


def _arr(x) -> list:
    return np.asarray(x, dtype=float).tolist()


def _node_to_dict(node: _Node) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "prediction": float(node.prediction),
        "feature": int(node.feature),
        "threshold": float(node.threshold),
    }
    if not node.is_leaf:
        out["left"] = _node_to_dict(node.left)
        out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(d: Dict[str, Any]) -> _Node:
    node = _Node(prediction=d["prediction"], feature=d["feature"], threshold=d["threshold"])
    if not node.is_leaf:
        node.left = _node_from_dict(d["left"])
        node.right = _node_from_dict(d["right"])
    return node


def _kernel_payload(kernel) -> Dict[str, Any]:
    return {
        "type": type(kernel).__name__,
        "length_scale": _arr(kernel.length_scale),
        "variance": kernel.variance,
    }


def _kernel_restore(payload: Dict[str, Any]):
    cls = _KERNELS[payload["type"]]
    return cls(np.array(payload["length_scale"]), payload["variance"])


def dumps_model(model) -> str:
    """Serialize a fitted model to a JSON string."""
    if isinstance(model, (LinearRegression, RidgeRegression)):
        if model.coef_ is None:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "type": type(model).__name__,
            "coef": _arr(model.coef_),
            "intercept": model.intercept_,
            "fit_intercept": model.fit_intercept,
        }
        if isinstance(model, RidgeRegression):
            payload["alpha"] = model.alpha
    elif isinstance(model, DecisionTreeRegressor):
        if model._root is None:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "type": "DecisionTreeRegressor",
            "root": _node_to_dict(model._root),
            "n_features": model.n_features_,
        }
    elif isinstance(model, RandomForestRegressor):
        if not model._trees:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "type": "RandomForestRegressor",
            "trees": [
                {"root": _node_to_dict(t._root), "n_features": t.n_features_}
                for t in model._trees
            ],
        }
    elif isinstance(model, GradientBoostingRegressor):
        if not model._trees:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "type": "GradientBoostingRegressor",
            "init": model._init_,
            "learning_rate": model.learning_rate,
            "trees": [
                {"root": _node_to_dict(t._root), "n_features": t.n_features_}
                for t in model._trees
            ],
        }
    elif isinstance(model, SVR):
        if model._X is None:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "type": "SVR",
            "kernel": _kernel_payload(model.kernel),
            "C": model.C,
            "epsilon": model.epsilon,
            "X": [_arr(row) for row in model._X],
            "beta": _arr(model._beta),
            "y_mean": model._y_mean,
            "y_std": model._y_std,
        }
    elif isinstance(model, GaussianProcessRegressor):
        if model._X is None:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "type": "GaussianProcessRegressor",
            "kernel": _kernel_payload(model.kernel),
            "noise": model.noise,
            "X": [_arr(row) for row in model._X],
            "y_mean": model._y_mean,
            "y_std": model._y_std,
            "alpha": _arr(model._alpha),
        }
    else:
        raise TypeError(f"unsupported model type: {type(model).__name__}")
    return json.dumps(payload)


def loads_model(data: str):
    """Restore a model serialized by :func:`dumps_model`."""
    payload = json.loads(data)
    kind = payload["type"]
    if kind in ("LinearRegression", "RidgeRegression"):
        if kind == "LinearRegression":
            model = LinearRegression(fit_intercept=payload["fit_intercept"])
        else:
            model = RidgeRegression(
                alpha=payload["alpha"], fit_intercept=payload["fit_intercept"]
            )
        model.coef_ = np.array(payload["coef"])
        model.intercept_ = payload["intercept"]
        return model
    if kind == "DecisionTreeRegressor":
        model = DecisionTreeRegressor()
        model._root = _node_from_dict(payload["root"])
        model.n_features_ = payload["n_features"]
        return model
    if kind == "RandomForestRegressor":
        model = RandomForestRegressor(n_estimators=len(payload["trees"]))
        model._trees = []
        for td in payload["trees"]:
            tree = DecisionTreeRegressor()
            tree._root = _node_from_dict(td["root"])
            tree.n_features_ = td["n_features"]
            model._trees.append(tree)
        return model
    if kind == "GradientBoostingRegressor":
        model = GradientBoostingRegressor(
            n_estimators=len(payload["trees"]),
            learning_rate=payload["learning_rate"],
        )
        model._init_ = payload["init"]
        model._trees = []
        for td in payload["trees"]:
            tree = DecisionTreeRegressor()
            tree._root = _node_from_dict(td["root"])
            tree.n_features_ = td["n_features"]
            model._trees.append(tree)
        return model
    if kind == "SVR":
        model = SVR(
            kernel=_kernel_restore(payload["kernel"]),
            C=payload["C"],
            epsilon=payload["epsilon"],
        )
        model._X = np.array(payload["X"])
        model._beta = np.array(payload["beta"])
        model._y_mean = payload["y_mean"]
        model._y_std = payload["y_std"]
        return model
    if kind == "GaussianProcessRegressor":
        from scipy.linalg import cho_factor

        model = GaussianProcessRegressor(
            kernel=_kernel_restore(payload["kernel"]),
            noise=payload["noise"],
            optimize_hypers=False,
        )
        model._X = np.array(payload["X"])
        model._y_mean = payload["y_mean"]
        model._y_std = payload["y_std"]
        model._alpha = np.array(payload["alpha"])
        K = model.kernel(model._X, model._X)
        K[np.diag_indices_from(K)] += model.noise + 1e-10
        # Clean lower triangle so the restored model supports update()'s
        # rank-1 Cholesky extension (cho_factor leaves garbage above it).
        L, _ = cho_factor(K, lower=True)
        model._chol = (np.tril(L), True)
        return model
    raise TypeError(f"unsupported serialized model type: {kind}")


def index_to_payload(index) -> Dict[str, Any]:
    """Serialize an ANN index to a JSON-safe payload dict.

    JSON floats round-trip ``float64`` exactly (shortest-repr encoding), so
    a reloaded index answers every query with bit-identical ids *and*
    distances — the save/load byte-identity the retrieval tests pin.
    """
    from ..retrieval.index import FlatIndex, IVFIndex

    if not isinstance(index, (FlatIndex, IVFIndex)):
        raise TypeError(f"unsupported index type: {type(index).__name__}")
    return index.to_payload()


def index_from_payload(payload: Dict[str, Any]):
    """Restore an ANN index from :func:`index_to_payload` output."""
    from ..retrieval.index import FlatIndex, IVFIndex

    kind = payload.get("type")
    if kind == "FlatIndex":
        return FlatIndex.from_payload(payload)
    if kind == "IVFIndex":
        return IVFIndex.from_payload(payload)
    raise TypeError(f"unsupported serialized index type: {kind!r}")


def dumps_index(index) -> str:
    """Serialize a :mod:`repro.retrieval` index to a JSON string."""
    return json.dumps(index_to_payload(index))


def loads_index(data: str):
    """Restore an index serialized by :func:`dumps_index`."""
    return index_from_payload(json.loads(data))


def save_model(model, path: Union[str, Path]) -> Path:
    """Serialize ``model`` to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_model(model))
    return path


def load_model(path: Union[str, Path]):
    return loads_model(Path(path).read_text())
