"""CART regression trees (variance-reduction splits), numpy-vectorized."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import check_X, check_X_y

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    prediction: float
    feature: int = -1            # -1 marks a leaf
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_split(X, y, feature_indices, min_samples_leaf):
    """Return (feature, threshold, gain) of the best variance-reducing split.

    Fully vectorized: per feature, prefix sums give every split's SSE in one
    pass with no Python-level loop over rows.
    """
    n = len(y)
    parent_sse = float(np.sum((y - y.mean()) ** 2))
    best = (-1, 0.0, 0.0)
    if n < 2 * min_samples_leaf:
        return best
    for j in feature_indices:
        order = np.argsort(X[:, j], kind="mergesort")
        xs = X[order, j]
        ys = y[order]
        csum = np.cumsum(ys)
        csum_sq = np.cumsum(ys * ys)
        total, total_sq = csum[-1], csum_sq[-1]
        # Candidate split puts rows [0, i) left and [i, n) right.
        i = np.arange(1, n)
        left_sum, left_sq = csum[:-1], csum_sq[:-1]
        right_sum, right_sq = total - left_sum, total_sq - left_sq
        sse = (left_sq - left_sum * left_sum / i) + (
            right_sq - right_sum * right_sum / (n - i)
        )
        valid = (xs[1:] != xs[:-1]) & (i >= min_samples_leaf) & (n - i >= min_samples_leaf)
        if not valid.any():
            continue
        sse = np.where(valid, sse, np.inf)
        k = int(np.argmin(sse))
        gain = parent_sse - float(sse[k])
        if gain > best[2]:
            best = (int(j), float(0.5 * (xs[k + 1] + xs[k])), gain)
    return best


class DecisionTreeRegressor:
    """A regression tree with depth / leaf-size / feature-subsampling controls.

    Args:
        max_depth: maximum tree depth (``None`` = unbounded).
        min_samples_leaf: minimum samples per leaf.
        min_samples_split: minimum samples to attempt a split.
        max_features: per-split feature subsample count (``None`` = all) —
            used by the random forest.
        seed: RNG seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_Node] = None
        self.n_features_: int = 0

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node
        d = X.shape[1]
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        else:
            features = np.arange(d)
        feature, threshold, gain = _best_split(X, y, features, self.min_samples_leaf)
        if feature < 0 or gain <= 1e-12:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTreeRegressor is not fitted")
        X = check_X(X)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("DecisionTreeRegressor is not fitted")
        return walk(self._root)
