#!/usr/bin/env python
"""Stdlib line-coverage reporter for ``src/repro``.

The container has no ``coverage``/``pytest-cov``, so this tool implements the
minimum viable substitute: a ``sys.settrace`` tracer that records executed
line numbers for files under ``src/repro``, runs the tier-1 pytest suite (or
whatever pytest args are passed on the command line), and prints a per-file
``covered / executable / %`` table.  Executable-line denominators come from
compiling each source file and walking ``code.co_lines()`` recursively, so
the numbers line up with what CPython can actually attribute to a line.

Usage::

    make coverage                           # tier-1 suite, default args
    PYTHONPATH=src python tools/line_coverage.py -m verify   # custom args

CI gating: ``--fail-under PCT`` exits non-zero when coverage drops below
``PCT`` percent, and ``--select PREFIX`` (repeatable, repo-relative)
restricts that floor to an aggregate over matching source files — e.g.
``--select src/repro/verify --select src/repro/experiments/lockstep.py``
guards the verification layer and the lock-step engine specifically.  All
other arguments pass through to pytest.

The tracer is installed for the main thread and (via ``threading.settrace``)
any threads pytest spawns; forked worker *processes* (the parallel
experiment engine's process pools) are intentionally not traced — the table
measures what the test process itself executes.

Exit status is pytest's exit status, so the target can gate CI.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGET_PREFIX = os.path.join(REPO_ROOT, "src", "repro") + os.sep

_executed: dict = defaultdict(set)


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(TARGET_PREFIX):
        return None  # don't trace into this frame at all
    if event == "line":
        _executed[filename].add(frame.f_lineno)
    return _tracer


def _executable_lines(path: str) -> set:
    """All line numbers CPython attributes bytecode to, for *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines: set = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def _iter_source_files():
    root = TARGET_PREFIX.rstrip(os.sep)
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _report(select=()) -> float:
    """Print the per-file table; return the gated aggregate percentage.

    With ``select`` prefixes the returned (and separately printed)
    aggregate covers only matching files; otherwise it is the grand total.
    """
    rows = []
    total_covered = 0
    total_lines = 0
    sel_covered = 0
    sel_lines = 0
    for path in _iter_source_files():
        executable = _executable_lines(path)
        covered = _executed.get(path, set()) & executable
        total_covered += len(covered)
        total_lines += len(executable)
        rel = os.path.relpath(path, REPO_ROOT)
        if any(rel.startswith(prefix) for prefix in select):
            sel_covered += len(covered)
            sel_lines += len(executable)
        pct = 100.0 * len(covered) / len(executable) if executable else 100.0
        rows.append((rel, len(covered), len(executable), pct))

    name_width = max(len(r[0]) for r in rows) if rows else 4
    print()
    print(f"{'file'.ljust(name_width)}  covered  executable      %")
    print("-" * (name_width + 30))
    for name, covered, executable, pct in rows:
        print(f"{name.ljust(name_width)}  {covered:7d}  {executable:10d}  {pct:5.1f}")
    print("-" * (name_width + 30))
    total_pct = 100.0 * total_covered / total_lines if total_lines else 100.0
    print(f"{'TOTAL'.ljust(name_width)}  {total_covered:7d}  {total_lines:10d}  {total_pct:5.1f}")
    if not select:
        return total_pct
    sel_pct = 100.0 * sel_covered / sel_lines if sel_lines else 100.0
    label = f"SELECTED ({', '.join(select)})"
    print(f"{label.ljust(name_width)}  {sel_covered:7d}  {sel_lines:10d}  {sel_pct:5.1f}")
    return sel_pct


def main(argv) -> int:
    import argparse

    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("--fail-under", type=float, default=None)
    parser.add_argument("--select", action="append", default=[])
    opts, pytest_args = parser.parse_known_args(list(argv))

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    import pytest  # imported late so the tracer doesn't slow module import

    pytest_args = pytest_args or ["-x", "-q", "--tb=no"]

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    gated_pct = _report(select=tuple(opts.select))
    if int(rc) == 0 and opts.fail_under is not None and gated_pct < opts.fail_under:
        print(
            f"\nFAIL: coverage {gated_pct:.1f}% is below the "
            f"--fail-under floor of {opts.fail_under:.1f}%"
        )
        return 2
    return int(rc)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
